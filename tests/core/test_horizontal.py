"""Unit tests for repro.core.horizontal (Definition 3 and SymbolicSeries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BinaryAlphabet,
    LookupTable,
    Symbol,
    SymbolicSeries,
    TimeSeries,
    horizontal_segment,
)
from repro.errors import SegmentationError


@pytest.fixture()
def table8():
    separators = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0]
    return LookupTable(BinaryAlphabet(8), separators)


@pytest.fixture()
def symbolic(simple_series, table8):
    return horizontal_segment(simple_series, table8)


class TestHorizontalSegment:
    def test_symbols_match_definition3(self, simple_series, table8):
        result = horizontal_segment(simple_series, table8)
        expected_indices = [0, 1, 1, 2, 2, 3, 3, 4, 4, 5]
        assert result.indices.tolist() == expected_indices

    def test_preserves_timestamps_and_name(self, simple_series, table8):
        result = horizontal_segment(simple_series, table8)
        assert np.array_equal(result.timestamps, simple_series.timestamps)
        assert result.name == simple_series.name

    def test_length_matches_input(self, house1_series, table8):
        result = horizontal_segment(house1_series, table8)
        assert len(result) == len(house1_series)


class TestSymbolicSeries:
    def test_construction_validates_lengths(self, table8):
        with pytest.raises(SegmentationError):
            SymbolicSeries([0.0, 1.0], [Symbol("000")], table8)

    def test_construction_validates_depth(self, table8):
        with pytest.raises(SegmentationError):
            SymbolicSeries([0.0], [Symbol("00")], table8)

    def test_construction_validates_time_order(self, table8):
        with pytest.raises(SegmentationError):
            SymbolicSeries([1.0, 0.0], [Symbol("000"), Symbol("001")], table8)

    def test_words_and_to_string(self, symbolic):
        assert symbolic.words[0] == "000"
        assert symbolic.to_string().split(" ") == symbolic.words

    def test_indexing_and_slicing(self, symbolic):
        timestamp, symbol = symbolic[0]
        assert timestamp == 0.0
        assert symbol.word == "000"
        sliced = symbolic[2:5]
        assert isinstance(sliced, SymbolicSeries)
        assert len(sliced) == 3

    def test_size_in_bits(self, symbolic):
        assert symbolic.size_in_bits() == len(symbolic) * 3

    def test_decode_produces_in_range_values(self, symbolic, table8, simple_series):
        decoded = symbolic.decode()
        assert len(decoded) == len(symbolic)
        # Decoded values re-encode to the same symbols (idempotence).
        re_encoded = horizontal_segment(decoded, table8)
        assert re_encoded.words == symbolic.words

    def test_between_and_split_days(self, table8):
        values = np.linspace(0, 750, 48)
        series = TimeSeries.regular(values, interval=3600.0)
        encoded = horizontal_segment(series, table8)
        days = encoded.split_days()
        assert len(days) == 2
        assert len(days[0]) == 24
        window = encoded.between(0.0, 7200.0)
        assert len(window) == 2

    def test_symbol_counts_and_entropy(self, table8):
        values = [50.0] * 8  # everything in the first bucket
        series = TimeSeries.regular(values)
        encoded = horizontal_segment(series, table8)
        counts = encoded.symbol_counts()
        assert counts["000"] == 8
        assert sum(counts.values()) == 8
        assert encoded.entropy() == 0.0

    def test_entropy_maximal_for_uniform_symbols(self, table8):
        # One value per bucket -> maximal entropy log2(8) = 3 bits.
        values = [50.0, 150.0, 250.0, 350.0, 450.0, 550.0, 650.0, 750.0]
        encoded = horizontal_segment(TimeSeries.regular(values), table8)
        assert encoded.entropy() == pytest.approx(3.0)

    def test_equality(self, simple_series, table8):
        a = horizontal_segment(simple_series, table8)
        b = horizontal_segment(simple_series, table8)
        assert a == b
        assert a != b[:-1]


class TestDemotion:
    def test_demote_truncates_words(self, symbolic):
        coarse = symbolic.demote(4)
        assert coarse.alphabet.size == 4
        assert all(
            fine.word.startswith(coarse_sym.word)
            for fine, coarse_sym in zip(symbolic.symbols, coarse.symbols)
        )

    def test_demote_keeps_every_other_separator(self, symbolic, table8):
        coarse = symbolic.demote(4)
        assert coarse.table.separators == [200.0, 400.0, 600.0]

    def test_demote_to_larger_alphabet_rejected(self, symbolic):
        with pytest.raises(SegmentationError):
            symbolic.demote(16)
