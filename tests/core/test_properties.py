"""Property-based tests (hypothesis) for the core invariants.

These check the structural guarantees the paper's construction relies on:
Definition 3 is a total, order-preserving, idempotent mapping; vertical
segmentation preserves the mean for exact windows; demotion is consistent
with the prefix partial order; compression ratios are always >= 1 for
aggregating configurations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    BinaryAlphabet,
    CompressionModel,
    LookupTable,
    Symbol,
    SymbolicEncoder,
    TimeSeries,
    segment_by_count,
)
from repro.baselines import paa

# Strategies -----------------------------------------------------------------

power_values = st.floats(
    min_value=0.0,
    max_value=10_000.0,
    allow_nan=False,
    allow_infinity=False,
    # Subnormal floats create value ranges narrower than machine precision,
    # which no quantisation scheme can round-trip; real meters never produce
    # them.
    allow_subnormal=False,
)
value_lists = st.lists(power_values, min_size=4, max_size=200)
alphabet_sizes = st.sampled_from([2, 4, 8, 16])
methods = st.sampled_from(["uniform", "median", "distinctmedian"])


def _binary_words(max_depth: int = 6):
    return st.integers(min_value=1, max_value=max_depth).flatmap(
        lambda depth: st.integers(min_value=0, max_value=(1 << depth) - 1).map(
            lambda index: format(index, f"0{depth}b")
        )
    )


# Horizontal segmentation ------------------------------------------------------


class TestLookupTableProperties:
    @given(values=value_lists, k=alphabet_sizes, method=methods)
    @settings(max_examples=60, deadline=None)
    def test_encoding_is_total_and_in_range(self, values, k, method):
        assume(len(set(values)) >= 2)
        table = LookupTable.fit(np.asarray(values), k, method=method)
        indices = table.indices_for_values(values)
        assert indices.min() >= 0
        assert indices.max() < k

    @given(values=value_lists, k=alphabet_sizes, method=methods)
    @settings(max_examples=60, deadline=None)
    def test_encoding_is_monotone_in_the_value(self, values, k, method):
        assume(len(set(values)) >= 2)
        table = LookupTable.fit(np.asarray(values), k, method=method)
        ordered = np.sort(np.asarray(values))
        indices = table.indices_for_values(ordered)
        assert np.all(np.diff(indices) >= 0)

    @given(values=value_lists, k=alphabet_sizes, method=methods)
    @settings(max_examples=60, deadline=None)
    def test_decode_then_encode_is_idempotent(self, values, k, method):
        assume(len(set(values)) >= 2)
        table = LookupTable.fit(np.asarray(values), k, method=method)
        indices = table.indices_for_values(values)
        decoded = [table.reconstruction_values[int(i)] for i in indices]
        again = table.indices_for_values(decoded)
        assert np.array_equal(indices, again)

    @given(values=value_lists, k=alphabet_sizes)
    @settings(max_examples=40, deadline=None)
    def test_serialisation_round_trip(self, values, k):
        assume(len(set(values)) >= 2)
        table = LookupTable.fit(np.asarray(values), k, method="median")
        assert LookupTable.from_json(table.to_json()) == table


class TestSymbolProperties:
    @given(word=_binary_words())
    @settings(max_examples=100, deadline=None)
    def test_demote_is_prefix(self, word):
        symbol = Symbol(word)
        for depth in range(1, symbol.depth + 1):
            coarse = symbol.demote(depth)
            assert coarse.contains(symbol)
            assert word.startswith(coarse.word)

    @given(word=_binary_words(4), extra=st.integers(min_value=0, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_promote_then_demote_is_identity(self, word, extra):
        symbol = Symbol(word)
        promoted = symbol.promote(symbol.depth + extra)
        assert promoted.demote(symbol.depth) == symbol

    @given(a=_binary_words(), b=_binary_words())
    @settings(max_examples=100, deadline=None)
    def test_containment_is_antisymmetric_up_to_equality(self, a, b):
        sa, sb = Symbol(a), Symbol(b)
        if sa.contains(sb) and sb.contains(sa):
            assert sa == sb


class TestVerticalProperties:
    @given(values=value_lists, n=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_count_segmentation_length(self, values, n):
        series = TimeSeries.regular(values)
        segmented = segment_by_count(series, n)
        assert len(segmented) == len(values) // n if n > 1 else len(values)

    @given(values=value_lists, n=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_average_segmentation_preserves_total_mean_of_full_windows(self, values, n):
        series = TimeSeries.regular(values)
        segmented = segment_by_count(series, n)
        assume(len(segmented) > 0)
        full = np.asarray(values[: (len(values) // n) * n]) if n > 1 else np.asarray(values)
        assert segmented.values.mean() == pytest.approx(full.mean(), rel=1e-9)

    @given(values=value_lists, n=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_aggregated_values_bounded_by_input_range(self, values, n):
        series = TimeSeries.regular(values)
        segmented = segment_by_count(series, n)
        assume(len(segmented) > 0)
        assert segmented.values.min() >= min(values) - 1e-9
        assert segmented.values.max() <= max(values) + 1e-9


class TestEncoderProperties:
    @given(values=value_lists, k=alphabet_sizes, method=methods)
    @settings(max_examples=40, deadline=None)
    def test_demoted_encoding_consistent_with_prefix_order(self, values, k, method):
        assume(len(set(values)) >= k)
        encoder = SymbolicEncoder(alphabet_size=k, method=method)
        encoded = encoder.fit_encode(TimeSeries.regular(values))
        if k == 2:
            return
        coarse = encoded.demote(k // 2)
        for fine_symbol, coarse_symbol in zip(encoded.symbols, coarse.symbols):
            assert coarse_symbol.contains(fine_symbol)

    @given(
        values=st.lists(power_values, min_size=32, max_size=200, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruction_error_non_increasing_in_alphabet_size(self, values):
        series = TimeSeries.regular(values)
        errors = []
        for k in (2, 4, 8, 16):
            encoder = SymbolicEncoder(alphabet_size=k, method="median")
            encoder.fit(series)
            errors.append(encoder.reconstruction_error(series))
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-9


class TestPAAProperties:
    @given(values=value_lists, segments=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_paa_output_length_and_bounds(self, values, segments):
        result = paa(np.asarray(values), segments)
        assert len(result) == min(segments, len(values))
        assert result.min() >= min(values) - 1e-6
        assert result.max() <= max(values) + 1e-6

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_paa_single_segment_is_global_mean(self, values):
        result = paa(np.asarray(values), 1)
        assert result[0] == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)


class TestCompressionProperties:
    @given(
        k=alphabet_sizes,
        window=st.sampled_from([60.0, 300.0, 900.0, 3600.0]),
        interval=st.sampled_from([1.0, 10.0, 30.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_ratio_at_least_one_when_aggregating(self, k, window, interval):
        assume(window >= interval)
        model = CompressionModel(sampling_interval=interval)
        report = model.report(k, window)
        assert report.ratio >= 1.0
