"""Unit tests for repro.core.lookup."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinaryAlphabet, LookupTable, Symbol, TimeSeries
from repro.errors import LookupTableError


@pytest.fixture()
def table4():
    """Four symbols with separators at 100/200/300 W."""
    return LookupTable(BinaryAlphabet(4), [100.0, 200.0, 300.0])


class TestConstruction:
    def test_wrong_separator_count_rejected(self):
        with pytest.raises(LookupTableError):
            LookupTable(BinaryAlphabet(4), [100.0])

    def test_unsorted_separators_rejected(self):
        with pytest.raises(LookupTableError):
            LookupTable(BinaryAlphabet(4), [300.0, 200.0, 100.0])

    def test_wrong_reconstruction_count_rejected(self):
        with pytest.raises(LookupTableError):
            LookupTable(BinaryAlphabet(4), [1.0, 2.0, 3.0], [1.0])

    def test_default_reconstruction_values_are_range_centres(self, table4):
        assert table4.reconstruction_values == [50.0, 150.0, 250.0, 350.0]

    def test_fit_median_on_series(self, simple_series):
        table = LookupTable.fit(simple_series, 4, method="median")
        assert table.size == 4
        assert len(table.separators) == 3

    def test_fit_rejects_unknown_reconstruction(self, simple_series):
        with pytest.raises(LookupTableError):
            LookupTable.fit(simple_series, 4, reconstruction="mode")


class TestEncoding:
    def test_definition3_boundary_cases(self, table4):
        # (i) v <= beta_1 -> a_1 ; boundary values belong to the lower symbol.
        assert table4.symbol_for_value(50.0).word == "00"
        assert table4.symbol_for_value(100.0).word == "00"
        # (iii) beta_{j-1} < v <= beta_j
        assert table4.symbol_for_value(100.1).word == "01"
        assert table4.symbol_for_value(200.0).word == "01"
        # (ii) v > beta_{k-1} -> a_k
        assert table4.symbol_for_value(300.1).word == "11"
        assert table4.symbol_for_value(10_000.0).word == "11"

    def test_vectorised_encoding_matches_scalar(self, table4, rng):
        values = rng.uniform(0, 500, size=200)
        indices = table4.indices_for_values(values)
        scalar = [table4.index_for_value(float(v)) for v in values]
        assert indices.tolist() == scalar

    def test_nan_rejected(self, table4):
        with pytest.raises(LookupTableError):
            table4.index_for_value(float("nan"))
        with pytest.raises(LookupTableError):
            table4.indices_for_values([1.0, float("nan")])

    def test_range_of(self, table4):
        low, high = table4.range_of(Symbol("00"))
        assert low == -np.inf and high == 100.0
        low, high = table4.range_of(Symbol("11"))
        assert low == 300.0 and high == np.inf


class TestDecoding:
    def test_round_trip_value_within_range(self, table4, rng):
        values = rng.uniform(0, 400, size=100)
        symbols = table4.symbols_for_values(values)
        decoded = table4.values_for_symbols(symbols)
        # Decoded values must land in the same bucket as the original.
        assert np.array_equal(
            table4.indices_for_values(decoded), table4.indices_for_values(values)
        )

    def test_mean_reconstruction_uses_bucket_means(self):
        values = np.array([10.0, 20.0, 150.0, 170.0, 250.0, 350.0, 450.0])
        table = LookupTable(BinaryAlphabet(4), [100.0, 200.0, 300.0])
        table = table.with_mean_reconstruction(values)
        assert table.reconstruction_values[0] == pytest.approx(15.0)
        assert table.reconstruction_values[1] == pytest.approx(160.0)
        assert table.reconstruction_values[2] == pytest.approx(250.0)
        assert table.reconstruction_values[3] == pytest.approx(400.0)

    def test_decode_foreign_resolution_symbols(self, table4):
        coarse = Symbol("0")
        fine = Symbol("001")
        assert table4.value_for_symbol(coarse) == table4.reconstruction_values[0]
        assert table4.value_for_symbol(fine) == table4.reconstruction_values[0]

    def test_index_gathers_reject_out_of_range(self, table4):
        # Negative indices must not wrap to the highest symbol.
        with pytest.raises(LookupTableError):
            table4.values_for_indices([-1, 0])
        with pytest.raises(LookupTableError):
            table4.values_for_indices([0, 4])
        with pytest.raises(LookupTableError):
            table4.symbols_for_indices([-1])
        assert table4.values_for_indices([0, 3]).tolist() == [
            table4.reconstruction_values[0], table4.reconstruction_values[3],
        ]


class TestSerialisation:
    def test_dict_round_trip(self, table4):
        rebuilt = LookupTable.from_dict(table4.to_dict())
        assert rebuilt == table4

    def test_json_round_trip(self, table4):
        rebuilt = LookupTable.from_json(table4.to_json())
        assert rebuilt == table4

    def test_from_dict_missing_field(self):
        with pytest.raises(LookupTableError):
            LookupTable.from_dict({"separators": [1.0]})

    def test_size_in_bits_scales_with_alphabet(self):
        small = LookupTable(BinaryAlphabet(4), [1.0, 2.0, 3.0])
        large = LookupTable(BinaryAlphabet(16), list(range(1, 16)))
        assert large.size_in_bits() > small.size_in_bits()

    def test_equality(self, table4):
        same = LookupTable(BinaryAlphabet(4), [100.0, 200.0, 300.0])
        different = LookupTable(BinaryAlphabet(4), [100.0, 200.0, 301.0])
        assert table4 == same
        assert table4 != different


class TestBreakpoints:
    """The public separator-vector accessor the query kernels consume."""

    def test_breakpoints_equal_separators(self, table4):
        beta = table4.breakpoints()
        assert isinstance(beta, np.ndarray)
        assert beta.dtype == np.float64
        np.testing.assert_array_equal(beta, np.asarray(table4.separators))

    def test_breakpoints_are_read_only(self, table4):
        with pytest.raises(ValueError):
            table4.breakpoints()[0] = -1.0

    @pytest.mark.parametrize("alphabet_size", [2, 4, 8, 16, 32])
    def test_from_breakpoints_pins_sax_table(self, alphabet_size):
        """A table built from SAX breakpoints exposes them unchanged."""
        from repro.baselines.sax import gaussian_breakpoints

        beta = gaussian_breakpoints(alphabet_size)
        table = LookupTable.from_breakpoints(beta)
        assert table.size == alphabet_size
        np.testing.assert_allclose(table.breakpoints(), beta, rtol=0, atol=0)

    @pytest.mark.parametrize("alphabet_size", [4, 8, 16])
    def test_from_breakpoints_reconstruction_inside_ranges(self, alphabet_size):
        """Every reconstruction value lies inside its symbol's range —
        the premise that makes MINDIST a valid lower bound (negative SAX
        breakpoints break the default power-data centres, so
        ``from_breakpoints`` derives true interval centres instead)."""
        from repro.baselines.sax import gaussian_breakpoints

        beta = np.asarray(gaussian_breakpoints(alphabet_size))
        table = LookupTable.from_breakpoints(beta)
        recon = table.reconstruction_array
        lows = np.concatenate([[-np.inf], beta])
        highs = np.concatenate([beta, [np.inf]])
        assert np.all(recon >= lows) and np.all(recon <= highs)

    def test_from_breakpoints_round_trips_encoding(self):
        table = LookupTable.from_breakpoints([-0.67, 0.0, 0.67])
        np.testing.assert_array_equal(
            table.indices_for_values([-1.0, -0.5, 0.5, 1.0]), [0, 1, 2, 3]
        )

    def test_from_breakpoints_rejects_empty(self):
        with pytest.raises(LookupTableError):
            LookupTable.from_breakpoints([])
