"""Unit tests for repro.core.alphabet."""

from __future__ import annotations

import pytest

from repro.core import BinaryAlphabet, Symbol, is_power_of_two
from repro.core.alphabet import index_for_symbol, symbol_for_index
from repro.errors import AlphabetError


class TestHelpers:
    @pytest.mark.parametrize("n,expected", [(1, True), (2, True), (16, True),
                                            (0, False), (3, False), (-4, False)])
    def test_is_power_of_two(self, n, expected):
        assert is_power_of_two(n) is expected

    def test_symbol_for_index_round_trip(self):
        for depth in (1, 2, 3, 4):
            for index in range(1 << depth):
                word = symbol_for_index(index, depth)
                assert len(word) == depth
                assert index_for_symbol(word) == index

    def test_symbol_for_index_rejects_out_of_range(self):
        with pytest.raises(AlphabetError):
            symbol_for_index(4, 2)
        with pytest.raises(AlphabetError):
            symbol_for_index(0, 0)

    def test_index_for_symbol_rejects_non_binary(self):
        with pytest.raises(AlphabetError):
            index_for_symbol("102")
        with pytest.raises(AlphabetError):
            index_for_symbol("")


class TestSymbol:
    def test_basic_properties(self):
        symbol = Symbol("101")
        assert symbol.depth == 3
        assert symbol.index == 5
        assert symbol.cardinality == 8
        assert str(symbol) == "101"

    def test_invalid_word_rejected(self):
        with pytest.raises(AlphabetError):
            Symbol("abc")
        with pytest.raises(AlphabetError):
            Symbol("")

    def test_containment_matches_paper_example(self):
        # The paper: '0' equals (covers) '01', '00', '00101'...
        coarse = Symbol("0")
        assert coarse.contains(Symbol("01"))
        assert coarse.contains(Symbol("00"))
        assert coarse.contains(Symbol("00101"))
        assert not coarse.contains(Symbol("10"))

    def test_comparable_is_symmetric(self):
        assert Symbol("0").comparable(Symbol("01"))
        assert Symbol("01").comparable(Symbol("0"))
        assert not Symbol("01").comparable(Symbol("10"))

    def test_promote_and_demote(self):
        symbol = Symbol("10")
        assert symbol.promote(4).word == "1000"
        assert symbol.promote(4, low=False).word == "1011"
        assert symbol.promote(2).word == "10"
        assert Symbol("1011").demote(2).word == "10"

    def test_promote_demote_reject_wrong_direction(self):
        with pytest.raises(AlphabetError):
            Symbol("10").demote(3)
        with pytest.raises(AlphabetError):
            Symbol("10").promote(1)
        with pytest.raises(AlphabetError):
            Symbol("10").demote(0)


class TestBinaryAlphabet:
    def test_sizes_and_depths(self):
        for size, depth in [(2, 1), (4, 2), (8, 3), (16, 4)]:
            alphabet = BinaryAlphabet(size)
            assert len(alphabet) == size
            assert alphabet.depth == depth
            assert alphabet.bits_per_symbol == depth

    def test_non_power_of_two_rejected(self):
        for bad in (0, 1, 3, 6, 12):
            with pytest.raises(AlphabetError):
                BinaryAlphabet(bad)

    def test_from_depth(self):
        assert BinaryAlphabet.from_depth(3).size == 8
        with pytest.raises(AlphabetError):
            BinaryAlphabet.from_depth(0)

    def test_words_are_sorted_by_range(self):
        alphabet = BinaryAlphabet(8)
        assert alphabet.words == ["000", "001", "010", "011", "100", "101", "110", "111"]

    def test_symbol_and_index_round_trip(self):
        alphabet = BinaryAlphabet(16)
        for i in range(16):
            assert alphabet.index(alphabet.symbol(i)) == i

    def test_symbol_out_of_range(self):
        with pytest.raises(AlphabetError):
            BinaryAlphabet(4).symbol(4)

    def test_contains_by_symbol_and_string(self):
        alphabet = BinaryAlphabet(4)
        assert Symbol("01") in alphabet
        assert "01" in alphabet
        assert Symbol("011") not in alphabet
        assert 3 not in alphabet

    def test_equality_is_by_size(self):
        assert BinaryAlphabet(8) == BinaryAlphabet(8)
        assert BinaryAlphabet(8) != BinaryAlphabet(4)

    def test_convert_between_resolutions(self):
        fine = BinaryAlphabet(16)
        coarse = BinaryAlphabet(4)
        symbol = fine.symbol(13)  # '1101'
        demoted = fine.convert(symbol, coarse)
        assert demoted.word == "11"
        promoted = coarse.convert(demoted, fine)
        assert promoted.word == "1100"

    def test_convert_rejects_foreign_symbol(self):
        with pytest.raises(AlphabetError):
            BinaryAlphabet(4).convert(Symbol("101"), BinaryAlphabet(8))

    def test_coarser_finer_guards(self):
        alphabet = BinaryAlphabet(8)
        assert alphabet.coarser(4).size == 4
        assert alphabet.finer(16).size == 16
        with pytest.raises(AlphabetError):
            alphabet.coarser(16)
        with pytest.raises(AlphabetError):
            alphabet.finer(4)
