"""Unit tests for repro.core.vertical (Definition 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    TimeSeries,
    VerticalSegmenter,
    get_aggregator,
    segment_by_count,
    segment_by_duration,
)
from repro.errors import SegmentationError


class TestAggregators:
    def test_named_aggregators(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert get_aggregator("average")(data) == 2.5
        assert get_aggregator("sum")(data) == 10.0
        assert get_aggregator("max")(data) == 4.0
        assert get_aggregator("min")(data) == 1.0
        assert get_aggregator("median")(data) == 2.5

    def test_aliases_and_callables(self):
        data = np.array([2.0, 4.0])
        assert get_aggregator("mean")(data) == 3.0
        assert get_aggregator(lambda a: 42.0)(data) == 42.0

    def test_unknown_aggregator(self):
        with pytest.raises(SegmentationError):
            get_aggregator("mode")


class TestSegmentByCount:
    def test_definition2_average(self, simple_series):
        # VA(S, 2): averages of consecutive pairs, timestamp of the last sample.
        segmented = segment_by_count(simple_series, 2)
        assert segmented.values.tolist() == [125.0, 225.0, 325.0, 425.0, 525.0]
        assert segmented.timestamps.tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_partial_window_dropped_by_default(self, simple_series):
        segmented = segment_by_count(simple_series, 3)
        assert len(segmented) == 3

    def test_partial_window_kept_when_requested(self, simple_series):
        segmented = segment_by_count(simple_series, 3, keep_partial=True)
        assert len(segmented) == 4
        assert segmented.values[-1] == pytest.approx(550.0)

    def test_n_equal_one_is_identity(self, simple_series):
        assert segment_by_count(simple_series, 1) == simple_series

    def test_invalid_window(self, simple_series):
        with pytest.raises(SegmentationError):
            segment_by_count(simple_series, 0)

    def test_empty_series(self):
        assert len(segment_by_count(TimeSeries.empty(), 5)) == 0

    def test_other_aggregators(self, simple_series):
        maxes = segment_by_count(simple_series, 5, aggregator="max")
        assert maxes.values.tolist() == [300.0, 550.0]


class TestSegmentByDuration:
    def test_quarter_hour_windows(self):
        values = np.arange(3600.0)
        series = TimeSeries.regular(values, interval=1.0)
        segmented = segment_by_duration(series, 900.0)
        assert len(segmented) == 4
        assert segmented.values[0] == pytest.approx(np.mean(np.arange(900.0)))
        assert segmented.timestamps.tolist() == [0.0, 900.0, 1800.0, 2700.0]

    def test_gap_produces_missing_window(self):
        timestamps = np.concatenate([np.arange(0, 900.0), np.arange(1800.0, 2700.0)])
        series = TimeSeries(timestamps, np.ones(1800))
        segmented = segment_by_duration(series, 900.0)
        # Window [900, 1800) is empty and therefore absent.
        assert segmented.timestamps.tolist() == [0.0, 1800.0]

    def test_min_samples_filter(self):
        timestamps = [0.0, 1.0, 900.0]
        series = TimeSeries(timestamps, [1.0, 3.0, 10.0])
        segmented = segment_by_duration(series, 900.0, min_samples=2)
        assert segmented.values.tolist() == [2.0]

    def test_invalid_parameters(self, simple_series):
        with pytest.raises(SegmentationError):
            segment_by_duration(simple_series, 0.0)
        with pytest.raises(SegmentationError):
            segment_by_duration(simple_series, 10.0, min_samples=0)

    def test_irregular_sampling_supported(self):
        timestamps = [0.0, 100.0, 450.0, 900.0, 1300.0]
        series = TimeSeries(timestamps, [1.0, 2.0, 3.0, 4.0, 5.0])
        segmented = segment_by_duration(series, 900.0)
        assert segmented.values.tolist() == [2.0, 4.5]


class TestVerticalSegmenter:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(SegmentationError):
            VerticalSegmenter()
        with pytest.raises(SegmentationError):
            VerticalSegmenter(count=5, seconds=60.0)

    def test_count_mode(self, simple_series):
        segmenter = VerticalSegmenter(count=2)
        assert segmenter(simple_series) == segment_by_count(simple_series, 2)
        assert segmenter.window_count == 2
        assert segmenter.window_seconds == 0.0

    def test_duration_mode(self, simple_series):
        segmenter = VerticalSegmenter(seconds=5.0)
        assert segmenter(simple_series) == segment_by_duration(simple_series, 5.0)
        assert "5" in repr(segmenter)
