"""Unit tests for repro.core.timeseries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SECONDS_PER_DAY, TimePoint, TimeSeries
from repro.errors import TimeSeriesError


class TestConstruction:
    def test_regular_builds_expected_timestamps(self):
        series = TimeSeries.regular([1.0, 2.0, 3.0], start=10.0, interval=5.0)
        assert series.timestamps.tolist() == [10.0, 15.0, 20.0]
        assert series.values.tolist() == [1.0, 2.0, 3.0]

    def test_from_points_round_trips(self):
        points = [TimePoint(0.0, 1.0), TimePoint(1.0, 2.0)]
        series = TimeSeries.from_points(points)
        assert list(series) == points

    def test_empty_series(self):
        series = TimeSeries.empty("nothing")
        assert len(series) == 0
        assert series.name == "nothing"
        assert series.duration == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([0.0, 1.0], [1.0])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([2.0, 1.0], [1.0, 2.0])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([[0.0], [1.0]], [[1.0], [2.0]])

    def test_equal_timestamps_allowed(self):
        series = TimeSeries([1.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert len(series) == 3

    def test_values_are_read_only(self, simple_series):
        with pytest.raises(ValueError):
            simple_series.values[0] = 99.0


class TestAccessors:
    def test_indexing_returns_timepoint(self, simple_series):
        point = simple_series[2]
        assert point == TimePoint(2.0, 200.0)

    def test_slicing_returns_series(self, simple_series):
        sliced = simple_series[2:5]
        assert isinstance(sliced, TimeSeries)
        assert len(sliced) == 3
        assert sliced.values.tolist() == [200.0, 250.0, 300.0]

    def test_duration_and_sampling_interval(self, simple_series):
        assert simple_series.duration == 9.0
        assert simple_series.sampling_interval == 1.0

    def test_is_regular(self, simple_series):
        assert simple_series.is_regular()
        irregular = TimeSeries([0.0, 1.0, 5.0], [1.0, 2.0, 3.0])
        assert not irregular.is_regular()

    def test_summary_statistics(self, simple_series):
        assert simple_series.mean() == pytest.approx(325.0)
        assert simple_series.median() == pytest.approx(325.0)
        assert simple_series.minimum() == 100.0
        assert simple_series.maximum() == 550.0

    def test_repr_contains_name_and_length(self):
        series = TimeSeries.regular([1.0], name="abc")
        assert "abc" in repr(series)
        assert "1" in repr(series)


class TestTransformations:
    def test_add_requires_identical_timestamps(self, simple_series):
        other = TimeSeries.regular([1.0] * 10, interval=1.0)
        total = simple_series.add(other)
        assert total.values.tolist() == [v + 1.0 for v in simple_series.values]
        shifted = other.shift_time(0.5)
        with pytest.raises(TimeSeriesError):
            simple_series.add(shifted)

    def test_between_half_open_interval(self, simple_series):
        window = simple_series.between(2.0, 5.0)
        assert window.timestamps.tolist() == [2.0, 3.0, 4.0]

    def test_between_rejects_reversed_bounds(self, simple_series):
        with pytest.raises(TimeSeriesError):
            simple_series.between(5.0, 2.0)

    def test_head_and_tail(self, simple_series):
        assert simple_series.head(3).values.tolist() == [100.0, 150.0, 200.0]
        assert simple_series.tail(2).values.tolist() == [500.0, 550.0]
        assert len(simple_series.tail(0)) == 0

    def test_concat_enforces_time_order(self, simple_series):
        later = simple_series.shift_time(100.0)
        combined = simple_series.concat(later)
        assert len(combined) == 20
        with pytest.raises(TimeSeriesError):
            later.concat(simple_series)

    def test_map_values(self, simple_series):
        doubled = simple_series.map_values(lambda v: v * 2)
        assert doubled.values.tolist() == [v * 2 for v in simple_series.values]

    def test_with_name(self, simple_series):
        renamed = simple_series.with_name("other")
        assert renamed.name == "other"
        assert renamed == simple_series.with_name("other")


class TestDaySplitting:
    def test_split_days_counts(self):
        values = np.arange(3 * 24, dtype=float)
        series = TimeSeries.regular(values, interval=3600.0)
        days = series.split_days()
        assert len(days) == 3
        assert all(len(day) == 24 for day in days)

    def test_split_days_skips_empty_days(self):
        timestamps = [0.0, 1.0, 2 * SECONDS_PER_DAY + 5.0]
        series = TimeSeries(timestamps, [1.0, 2.0, 3.0])
        days = series.split_days()
        assert len(days) == 2

    def test_coverage_full_and_partial(self):
        series = TimeSeries.regular(np.ones(100), interval=1.0)
        assert series.coverage() == pytest.approx(1.0, abs=0.02)
        holey = TimeSeries(np.concatenate([np.arange(50.0), np.arange(80.0, 130.0)]),
                           np.ones(100))
        assert holey.coverage(expected_interval=1.0) < 1.0


class TestGaps:
    def test_gaps_detected(self):
        timestamps = [0.0, 1.0, 2.0, 10.0, 11.0]
        series = TimeSeries(timestamps, [1.0] * 5)
        gaps = series.gaps(min_gap=2.0)
        assert gaps == [(2.0, 10.0)]

    def test_no_gaps_in_regular_series(self, simple_series):
        assert simple_series.gaps() == []

    def test_drop_missing_removes_nan(self):
        series = TimeSeries([0.0, 1.0, 2.0], [1.0, np.nan, 3.0])
        cleaned = series.drop_missing()
        assert cleaned.values.tolist() == [1.0, 3.0]

    def test_total_energy(self):
        # Constant 3600 W for one hour is exactly 3600 Wh... / 3600 s -> 3600 Wh.
        series = TimeSeries.regular([3600.0] * 3601, interval=1.0)
        assert series.total_energy_wh() == pytest.approx(3600.0, rel=1e-6)
