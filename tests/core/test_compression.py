"""Unit tests for repro.core.compression (Section 2.3)."""

from __future__ import annotations

import math

import pytest

from repro.core import BinaryAlphabet, CompressionModel, LookupTable
from repro.errors import SegmentationError


class TestPaperExample:
    def test_raw_size_matches_680kb_per_day(self):
        model = CompressionModel(sampling_interval=1.0, value_bits=64)
        raw_kb = model.raw_bits_per_day() / 8.0 / 1024.0
        assert raw_kb == pytest.approx(675.0, rel=0.01)  # "around 680 kB"

    def test_symbolic_size_matches_384_bits(self):
        model = CompressionModel(sampling_interval=1.0, value_bits=64)
        assert model.symbolic_bits_per_day(16, 900.0) == pytest.approx(384.0)

    def test_three_orders_of_magnitude(self):
        report = CompressionModel.paper_example()
        assert report.orders_of_magnitude >= 3.0
        assert report.ratio == pytest.approx(14400.0, rel=0.01)


class TestModel:
    def test_invalid_parameters(self):
        with pytest.raises(SegmentationError):
            CompressionModel(sampling_interval=0.0)
        with pytest.raises(SegmentationError):
            CompressionModel(value_bits=0)
        with pytest.raises(SegmentationError):
            CompressionModel().symbolic_bits_per_day(1, 900.0)

    def test_ratio_improves_with_larger_windows(self):
        model = CompressionModel()
        small = model.report(16, 60.0)
        large = model.report(16, 3600.0)
        assert large.ratio > small.ratio

    def test_ratio_worsens_with_larger_alphabets(self):
        model = CompressionModel()
        few = model.report(2, 900.0)
        many = model.report(16, 900.0)
        assert few.ratio > many.ratio

    def test_table_overhead_amortised(self):
        model = CompressionModel()
        report = model.report(16, 900.0, amortisation_days=30.0)
        assert report.ratio_with_table < report.ratio
        long_report = model.report(16, 900.0, amortisation_days=365.0)
        assert long_report.ratio_with_table > report.ratio_with_table

    def test_explicit_table_cost_used(self):
        table = LookupTable(BinaryAlphabet(4), [1.0, 2.0, 3.0])
        model = CompressionModel()
        report = model.report(4, 900.0, table=table)
        assert report.table_bits == table.size_in_bits(64)

    def test_zero_aggregation_defaults_to_sampling_interval(self):
        model = CompressionModel(sampling_interval=2.0)
        bits = model.symbolic_bits_per_day(4, 0.0)
        assert bits == pytest.approx((86400 / 2.0) * 2)
