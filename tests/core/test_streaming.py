"""Unit tests for repro.core.streaming (OnlineEncoder, RunningStatistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OnlineEncoder, RunningStatistics, SymbolicEncoder, TimeSeries
from repro.errors import SegmentationError


class TestRunningStatistics:
    def test_mean_median_distinct_median(self):
        stats = RunningStatistics()
        stats.update_many([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.distinct_median == pytest.approx(3.0)

    def test_distinct_median_ignores_repeats(self):
        stats = RunningStatistics()
        stats.update_many([60.0] * 100 + [100.0, 200.0, 300.0])
        # Plain median is dominated by the repeated 60s.
        assert stats.median == pytest.approx(60.0)
        # Distinct median sees {60, 100, 200, 300}.
        assert stats.distinct_median > 60.0

    def test_nan_values_ignored(self):
        stats = RunningStatistics()
        stats.update(float("nan"))
        stats.update(5.0)
        assert stats.count == 1

    def test_empty_statistics_are_zero(self):
        stats = RunningStatistics()
        assert stats.mean == 0.0
        assert stats.median == 0.0
        assert stats.distinct_median == 0.0
        assert stats.maximum == 0.0

    def test_reservoir_bounded_memory(self):
        stats = RunningStatistics(max_samples=100, seed=3)
        stats.update_many(np.arange(10_000, dtype=float))
        assert len(stats.values()) == 100
        assert stats.count == 10_000
        # The reservoir median should approximate the true median (~5000).
        assert abs(stats.median - 5000.0) < 1500.0

    def test_invalid_max_samples(self):
        with pytest.raises(SegmentationError):
            RunningStatistics(max_samples=0)
        with pytest.raises(SegmentationError):
            RunningStatistics(max_distinct=0)

    def test_maximum_survives_reservoir_eviction(self):
        # The peak arrives first; by the time 10k more values have streamed
        # through a 50-slot reservoir it has almost surely been evicted.
        stats = RunningStatistics(max_samples=50, seed=5)
        stats.update(9999.0)
        stats.update_many(np.linspace(0.0, 100.0, 10_000))
        assert 9999.0 not in stats.values()  # the reservoir lost the peak
        assert stats.maximum == 9999.0       # the running maximum did not

    def test_learning_values_contains_true_maximum(self):
        stats = RunningStatistics(max_samples=50, seed=5)
        stats.update(9999.0)
        stats.update_many(np.linspace(0.0, 100.0, 10_000))
        learning = stats.learning_values()
        assert learning.max() == 9999.0
        # Under capacity nothing is appended: learning == raw snapshot.
        small = RunningStatistics(max_samples=100)
        small.update_many([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(small.learning_values(), small.values())

    def test_distinct_values_bounded_memory(self):
        stats = RunningStatistics(max_distinct=64)
        stats.update_many(np.arange(50_000, dtype=float))
        assert stats.distinct_count == 64
        # The bottom-k hash sketch is a uniform sample of the distinct
        # values, so its median approximates the true distinct median.
        assert abs(stats.distinct_median - 25_000.0) < 10_000.0

    def test_distinct_sketch_exact_under_cap(self):
        stats = RunningStatistics(max_distinct=64)
        stats.update_many([60.0] * 100 + [100.0, 200.0, 300.0])
        assert stats.distinct_count == 4
        assert stats.distinct_median == pytest.approx(np.median([60, 100, 200, 300]))

    def test_update_vs_update_many_parity_past_caps(self):
        values = np.concatenate([
            np.arange(3000, dtype=float),          # all distinct
            np.arange(500, dtype=float),           # repeats
            np.linspace(-50.0, 4000.0, 1500),
        ])
        one = RunningStatistics(max_samples=256, seed=9, max_distinct=128)
        many = RunningStatistics(max_samples=256, seed=9, max_distinct=128)
        for v in values:
            one.update(float(v))
        for chunk in np.array_split(values, 7):
            many.update_many(chunk)
        assert one.count == many.count
        assert one.mean == many.mean
        assert one.maximum == many.maximum
        assert one._distinct_members == many._distinct_members
        np.testing.assert_array_equal(one.values(), many.values())

    def test_snapshot_keys(self):
        stats = RunningStatistics()
        stats.update(1.0)
        snapshot = stats.snapshot()
        assert set(snapshot) == {"count", "mean", "median", "distinctmedian"}


class TestOnlineEncoder:
    def _hourly_sine(self, hours: int, interval: float = 60.0) -> TimeSeries:
        n = int(hours * 3600 / interval)
        t = np.arange(n) * interval
        values = 300.0 + 200.0 * np.sin(2 * np.pi * t / 86400.0) + 50.0
        return TimeSeries(t, np.clip(values, 1.0, None))

    def test_bootstrap_then_emission(self):
        series = self._hourly_sine(hours=30)
        encoder = OnlineEncoder(
            alphabet_size=4,
            window_seconds=3600.0,
            bootstrap_seconds=6 * 3600.0,
        )
        emitted = encoder.push_series(series)
        emitted += encoder.flush()
        assert encoder.is_bootstrapped
        assert encoder.table is not None
        # Roughly one symbol per hour of data.
        assert 26 <= len(emitted) <= 30
        assert encoder.table_updates[0].reason == "bootstrap"

    def test_no_emission_during_bootstrap(self):
        series = self._hourly_sine(hours=2)
        encoder = OnlineEncoder(window_seconds=900.0, bootstrap_seconds=4 * 3600.0)
        emitted = encoder.push_series(series)
        assert emitted == []
        assert not encoder.is_bootstrapped
        with pytest.raises(SegmentationError):
            encoder.to_symbolic_series()

    def test_matches_batch_encoder_on_stable_data(self):
        series = self._hourly_sine(hours=48)
        window = 3600.0
        bootstrap = 24 * 3600.0
        online = OnlineEncoder(
            alphabet_size=8, method="median", window_seconds=window,
            bootstrap_seconds=bootstrap,
        )
        online.push_series(series)
        online.flush()
        symbolic = online.to_symbolic_series()
        assert len(symbolic) >= 46
        # The online separators come from the bootstrap prefix only; a batch
        # encoder fitted on that same prefix and applied to the whole stream
        # must produce identical symbols for the covered windows.
        start = float(series.timestamps[0])
        prefix = series.between(start, start + bootstrap)
        batch = SymbolicEncoder(
            alphabet_size=8, method="median", aggregation_seconds=window
        )
        batch.fit(prefix)
        batch_symbols = batch.encode(series)
        online_by_time = dict(zip(symbolic.timestamps, symbolic.words))
        matches = [
            online_by_time[t] == w
            for t, w in zip(batch_symbols.timestamps, batch_symbols.words)
            if t in online_by_time
        ]
        assert matches and sum(matches) / len(matches) > 0.9

    def test_gap_skips_windows_without_emitting(self):
        # One hour of data, a 3-hour gap, then another hour.
        part1 = TimeSeries.regular(np.full(60, 100.0), start=0.0, interval=60.0)
        part2 = TimeSeries.regular(np.full(60, 500.0), start=4 * 3600.0, interval=60.0)
        series = part1.concat(part2)
        encoder = OnlineEncoder(
            alphabet_size=4, window_seconds=1800.0, bootstrap_seconds=1800.0
        )
        encoder.push_series(series)
        encoder.flush()
        timestamps = [w.timestamp for w in encoder.emitted]
        # No windows should be emitted for the empty [3600, 14400) stretch.
        assert all(t < 3600.0 or t >= 4 * 3600.0 for t in timestamps)

    def test_drift_triggers_table_rebuild(self):
        low = TimeSeries.regular(np.full(240, 100.0), interval=60.0)
        high = TimeSeries.regular(
            np.full(2000, 1000.0), start=240 * 60.0, interval=60.0
        )
        series = low.concat(high)
        encoder = OnlineEncoder(
            alphabet_size=4,
            window_seconds=900.0,
            bootstrap_seconds=3600.0,
            drift_threshold=0.5,
        )
        encoder.push_series(series)
        reasons = [update.reason for update in encoder.table_updates]
        assert reasons[0] == "bootstrap"
        assert any(reason.startswith("drift") for reason in reasons[1:])

    def test_invalid_parameters(self):
        with pytest.raises(SegmentationError):
            OnlineEncoder(window_seconds=0.0)
        with pytest.raises(SegmentationError):
            OnlineEncoder(bootstrap_seconds=0.0)

    def _drift_series(self) -> TimeSeries:
        # A low bootstrap regime followed by a sharp level shift, with some
        # in-regime variation so quantiles are non-degenerate.
        low = TimeSeries.regular(
            np.full(240, 100.0) + np.arange(240) % 7, interval=60.0
        )
        high = TimeSeries.regular(
            np.full(2000, 1000.0) + np.arange(2000) % 13,
            start=240 * 60.0, interval=60.0,
        )
        return low.concat(high)

    @pytest.mark.parametrize("method", ["median", "distinctmedian", "uniform"])
    def test_drift_rebuild_matches_fresh_fit(self, method):
        # Regression: the rebuilt table must equal what a fresh fit on the
        # same aggregated history produces.  Before the fix the rebuild
        # learned from the *raw* reservoir while the bootstrap fit learned
        # from *window-aggregated* values, so the two disagreed.
        from repro.core.separators import get_method
        from repro.core.vertical import segment_by_duration

        window = 900.0
        series = self._drift_series()
        encoder = OnlineEncoder(
            alphabet_size=4, method=method, window_seconds=window,
            bootstrap_seconds=3600.0, drift_threshold=0.5,
        )
        origin = float(series.timestamps[0])
        for t, v in zip(series.timestamps, series.values):
            encoder.push(float(t), float(v))
            drift_updates = [
                u for u in encoder.table_updates if u.reason.startswith("drift")
            ]
            if drift_updates:
                break
        assert drift_updates, "the level shift must trigger a rebuild"
        update = drift_updates[0]
        # Windows closed by the rebuild instant: everything strictly before
        # the window containing the triggering sample.
        closed_end = origin + np.floor((update.timestamp - origin) / window) * window
        aggregated = segment_by_duration(
            series.between(origin, float(closed_end)), window, "average"
        )
        expected = get_method(method).separators(aggregated.values, 4)
        assert update.table.separators == expected

    def test_push_chunk_parity_with_drift_monitoring(self):
        series = self._drift_series()
        kwargs = dict(
            alphabet_size=4, method="median", window_seconds=900.0,
            bootstrap_seconds=3600.0, drift_threshold=0.5,
        )
        per_sample = OnlineEncoder(**kwargs)
        for t, v in zip(series.timestamps, series.values):
            per_sample.push(float(t), float(v))
        chunked = OnlineEncoder(**kwargs)
        for lo in range(0, len(series), 311):
            chunked.push_chunk(
                series.timestamps[lo:lo + 311], series.values[lo:lo + 311]
            )
        assert [(w.timestamp, w.symbol.word, w.aggregated_value)
                for w in per_sample.emitted] == \
               [(w.timestamp, w.symbol.word, w.aggregated_value)
                for w in chunked.emitted]
        assert [(u.timestamp, u.reason, u.table.separators)
                for u in per_sample.table_updates] == \
               [(u.timestamp, u.reason, u.table.separators)
                for u in chunked.table_updates]
