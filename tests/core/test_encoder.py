"""Unit tests for repro.core.encoder.SymbolicEncoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LookupTable, SymbolicEncoder, TimeSeries
from repro.errors import NotFittedError, SegmentationError


class TestFitEncodeDecode:
    def test_docstring_example(self):
        raw = TimeSeries.regular([100.0, 120.0, 400.0, 80.0], interval=1.0)
        encoder = SymbolicEncoder(alphabet_size=4, method="median")
        encoded = encoder.fit(raw).encode(raw)
        assert encoded.words == ["01", "10", "11", "00"]

    def test_unfitted_encoder_raises(self, simple_series):
        encoder = SymbolicEncoder(alphabet_size=4)
        assert not encoder.is_fitted
        with pytest.raises(NotFittedError):
            encoder.encode(simple_series)
        with pytest.raises(NotFittedError):
            encoder.table

    def test_fit_encode_convenience(self, simple_series):
        encoder = SymbolicEncoder(alphabet_size=8, method="uniform")
        encoded = encoder.fit_encode(simple_series)
        assert len(encoded) == len(simple_series)
        assert encoder.is_fitted

    def test_fit_on_plain_values(self):
        encoder = SymbolicEncoder(alphabet_size=4, method="median")
        encoder.fit(np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]))
        encoded = encoder.encode_values([1.5, 7.5])
        assert encoded.indices.tolist() == [0, 3]

    def test_decode_round_trip_buckets(self, house1_series):
        encoder = SymbolicEncoder(alphabet_size=16, method="median")
        encoded = encoder.fit_encode(house1_series)
        decoded = encoder.decode(encoded)
        re_encoded = encoder.table.indices_for_values(decoded.values)
        assert np.array_equal(re_encoded, encoded.indices)

    def test_reconstruction_error_decreases_with_alphabet_size(self, house1_series):
        errors = []
        for size in (2, 4, 8, 16):
            encoder = SymbolicEncoder(alphabet_size=size, method="median")
            encoder.fit(house1_series)
            errors.append(encoder.reconstruction_error(house1_series))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < errors[0]


class TestVerticalIntegration:
    def test_aggregation_reduces_length(self, house1_series):
        encoder = SymbolicEncoder(
            alphabet_size=8, method="median", aggregation_seconds=3600.0
        )
        encoded = encoder.fit_encode(house1_series)
        assert len(encoded) < len(house1_series)
        aggregated = encoder.aggregate(house1_series)
        assert len(encoded) == len(aggregated)

    def test_aggregation_by_count(self, simple_series):
        encoder = SymbolicEncoder(
            alphabet_size=4, method="uniform", aggregation_count=2
        )
        encoded = encoder.fit_encode(simple_series)
        assert len(encoded) == 5

    def test_both_aggregation_modes_rejected(self):
        with pytest.raises(SegmentationError):
            SymbolicEncoder(aggregation_seconds=900.0, aggregation_count=4)

    def test_separators_learned_on_aggregated_values(self):
        # Aggregation smooths a spiky signal, so the separator range must be
        # learned from the smoothed values, not the raw peaks.
        values = np.zeros(7200)
        values[::60] = 6000.0  # 1-minute spikes
        series = TimeSeries.regular(values, interval=1.0)
        encoder = SymbolicEncoder(
            alphabet_size=4, method="uniform", aggregation_seconds=3600.0
        )
        encoder.fit(series)
        assert max(encoder.table.separators) < 6000.0


class TestFromTable:
    def test_reattach_shipped_table(self, simple_series):
        encoder = SymbolicEncoder(alphabet_size=8, method="median")
        encoder.fit(simple_series)
        shipped = LookupTable.from_json(encoder.table.to_json())
        server_side = SymbolicEncoder.from_table(shipped)
        assert server_side.is_fitted
        assert server_side.encode(simple_series).words == encoder.encode(simple_series).words

    def test_repr_mentions_parameters(self):
        encoder = SymbolicEncoder(alphabet_size=16, method="uniform",
                                  aggregation_seconds=900.0)
        text = repr(encoder)
        assert "16" in text and "uniform" in text
