"""Unit tests for repro.core.separators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CustomSeparators,
    DistinctMedianSeparators,
    MedianSeparators,
    TimeSeries,
    UniformSeparators,
    available_methods,
    get_method,
)
from repro.errors import SegmentationError


class TestUniform:
    def test_equal_width_ranges(self):
        values = [0.0, 100.0, 200.0, 400.0]
        separators = UniformSeparators().separators(values, 4)
        assert separators == [100.0, 200.0, 300.0]

    def test_number_of_separators(self):
        values = np.linspace(0, 1000, 101)
        for k in (2, 4, 8, 16):
            assert len(UniformSeparators().separators(values, k)) == k - 1

    def test_all_zero_data_degenerates_gracefully(self):
        separators = UniformSeparators().separators([0.0, 0.0, 0.0], 4)
        assert separators == [0.0, 0.0, 0.0]

    def test_accepts_time_series(self, simple_series):
        separators = UniformSeparators().separators(simple_series, 2)
        assert separators == [pytest.approx(275.0)]


class TestMedian:
    def test_two_symbols_split_at_median(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        separators = MedianSeparators().separators(values, 2)
        assert len(separators) == 1
        assert 4.0 <= separators[0] <= 5.0

    def test_equal_frequency_buckets(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(5.0, 1.0, size=5000)
        separators = MedianSeparators().separators(values, 8)
        buckets = np.searchsorted(separators, values, side="left")
        counts = np.bincount(buckets, minlength=8)
        # Every symbol should get roughly 1/8 of the data.
        assert counts.min() > 0.8 * len(values) / 8
        assert counts.max() < 1.2 * len(values) / 8

    def test_separators_are_sorted(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(100.0, size=1000)
        separators = MedianSeparators().separators(values, 16)
        assert separators == sorted(separators)

    def test_repeated_value_bias(self):
        # 90% of readings are the standby value 60 W.
        values = np.concatenate([np.full(900, 60.0), np.linspace(100, 1000, 100)])
        separators = MedianSeparators().separators(values, 4)
        # With the plain median method most separators collapse onto 60 W.
        assert separators.count(60.0) >= 2


class TestDistinctMedian:
    def test_ignores_value_frequency(self):
        values = np.concatenate([np.full(900, 60.0), np.linspace(100, 1000, 100)])
        separators = DistinctMedianSeparators().separators(values, 4)
        # Separators spread over the distinct values instead of collapsing at 60.
        assert separators.count(60.0) == 0
        assert separators == sorted(separators)

    def test_equivalent_to_median_when_all_values_distinct(self):
        values = np.linspace(1.0, 1000.0, 640)
        med = MedianSeparators().separators(values, 8)
        dmed = DistinctMedianSeparators().separators(values, 8)
        assert med == pytest.approx(dmed)


class TestCustomAndRegistry:
    def test_custom_separators_pass_through(self):
        method = CustomSeparators([500.0])
        assert method.separators([1, 2, 3], 2) == [500.0]

    def test_custom_wrong_count_rejected(self):
        with pytest.raises(SegmentationError):
            CustomSeparators([1.0, 2.0]).separators([1, 2], 2)

    def test_custom_unsorted_rejected(self):
        with pytest.raises(SegmentationError):
            CustomSeparators([5.0, 1.0])

    def test_get_method_resolves_names_and_aliases(self):
        assert isinstance(get_method("median"), MedianSeparators)
        assert isinstance(get_method("UNIFORM"), UniformSeparators)
        assert isinstance(get_method("distinct_median"), DistinctMedianSeparators)
        assert isinstance(get_method("median_of_distinct_values"), DistinctMedianSeparators)

    def test_get_method_unknown_name(self):
        with pytest.raises(SegmentationError):
            get_method("not-a-method")

    def test_available_methods(self):
        assert set(available_methods()) == {"uniform", "median", "distinctmedian"}

    def test_empty_data_rejected(self):
        with pytest.raises(SegmentationError):
            MedianSeparators().separators([], 4)
        with pytest.raises(SegmentationError):
            MedianSeparators().separators([np.nan], 4)

    def test_k_below_two_rejected(self):
        with pytest.raises(SegmentationError):
            UniformSeparators().separators([1.0, 2.0], 1)
