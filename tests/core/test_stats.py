"""Unit tests for repro.core.stats (Figure 4 statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TimeSeries, accumulative_statistics, convergence_time
from repro.errors import SegmentationError


class TestAccumulativeStatistics:
    def test_number_of_steps(self):
        series = TimeSeries.regular(np.ones(7200), interval=1.0)  # 2 hours
        stats = accumulative_statistics(series, step_seconds=3600.0)
        assert len(stats) >= 2
        assert stats.times[0] == 3600.0

    def test_constant_series_statistics_are_constant(self):
        series = TimeSeries.regular(np.full(7200, 250.0), interval=1.0)
        stats = accumulative_statistics(series, step_seconds=1800.0)
        assert all(value == pytest.approx(250.0) for value in stats.mean)
        assert all(value == pytest.approx(250.0) for value in stats.median)
        assert all(value == pytest.approx(250.0) for value in stats.distinctmedian)

    def test_prefix_growth_reflects_trend(self):
        # Values keep increasing, so the accumulative mean keeps increasing.
        series = TimeSeries.regular(np.arange(7200, dtype=float), interval=1.0)
        stats = accumulative_statistics(series, step_seconds=1800.0)
        assert stats.mean == sorted(stats.mean)

    def test_empty_series(self):
        stats = accumulative_statistics(TimeSeries.empty())
        assert len(stats) == 0

    def test_invalid_step(self, simple_series):
        with pytest.raises(SegmentationError):
            accumulative_statistics(simple_series, step_seconds=0.0)

    def test_as_dict_columns(self, simple_series):
        stats = accumulative_statistics(simple_series, step_seconds=2.0)
        data = stats.as_dict()
        assert set(data) == {"time", "mean", "median", "distinctmedian"}
        assert len(data["time"]) == len(stats)


class TestConvergenceTime:
    def test_converged_series_reports_early_time(self):
        series = TimeSeries.regular(np.full(4 * 3600, 100.0), interval=1.0)
        stats = accumulative_statistics(series, step_seconds=3600.0)
        assert convergence_time(stats, "median") == 3600.0

    def test_trending_series_converges_late_or_never(self):
        series = TimeSeries.regular(
            np.linspace(1.0, 10_000.0, 6 * 3600), interval=1.0
        )
        stats = accumulative_statistics(series, step_seconds=3600.0)
        assert convergence_time(stats, "mean", tolerance=0.01) >= stats.times[-2]

    def test_unknown_statistic_rejected(self, simple_series):
        stats = accumulative_statistics(simple_series, step_seconds=2.0)
        with pytest.raises(SegmentationError):
            convergence_time(stats, "variance")

    def test_redd_like_house_converges_within_window(self, house1_series):
        stats = accumulative_statistics(house1_series, step_seconds=3600.0)
        converged_at = convergence_time(stats, "median", tolerance=0.15)
        assert converged_at < float("inf")
