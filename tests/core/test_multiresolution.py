"""Unit tests for repro.core.multiresolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SymbolicEncoder,
    Symbol,
    TimeSeries,
    align_resolutions,
    common_resolution,
    demote_series,
    series_distance,
    symbol_distance,
)
from repro.core.multiresolution import compatible
from repro.errors import SegmentationError


@pytest.fixture()
def encoded_pair(house1_series):
    fine = SymbolicEncoder(alphabet_size=16, method="median",
                           aggregation_seconds=3600.0).fit_encode(house1_series)
    coarse = SymbolicEncoder(alphabet_size=4, method="median",
                             aggregation_seconds=3600.0).fit_encode(house1_series)
    return fine, coarse


class TestSymbolDistance:
    def test_identical_symbols_distance_zero(self):
        assert symbol_distance(Symbol("1010"), Symbol("1010")) == 0.0

    def test_prefix_related_symbols_distance_zero(self):
        assert symbol_distance(Symbol("10"), Symbol("1011")) == 0.0
        assert compatible(Symbol("10"), Symbol("1011"))

    def test_distance_normalised_to_unit_interval(self):
        assert symbol_distance(Symbol("00"), Symbol("11")) == 1.0
        assert 0.0 < symbol_distance(Symbol("00"), Symbol("01")) < 1.0

    def test_distance_is_symmetric(self):
        a, b = Symbol("0101"), Symbol("11")
        assert symbol_distance(a, b) == symbol_distance(b, a)


class TestSeriesOperations:
    def test_common_resolution(self, encoded_pair):
        fine, coarse = encoded_pair
        assert common_resolution(fine, coarse) == 4
        with pytest.raises(SegmentationError):
            common_resolution()

    def test_align_resolutions_demotes_finer_series(self, encoded_pair):
        fine, coarse = encoded_pair
        aligned = align_resolutions(fine, coarse)
        assert all(series.alphabet.size == 4 for series in aligned)
        assert len(aligned[0]) == len(fine)

    def test_demote_series_wrapper(self, encoded_pair):
        fine, _ = encoded_pair
        assert demote_series(fine, 8).alphabet.size == 8

    def test_series_distance_zero_for_identical(self, encoded_pair):
        fine, _ = encoded_pair
        assert series_distance(fine, fine) == 0.0

    def test_series_distance_requires_equal_length(self, encoded_pair):
        fine, _ = encoded_pair
        with pytest.raises(SegmentationError):
            series_distance(fine, fine[:-1])

    def test_cross_resolution_distance_small_for_same_signal(self, encoded_pair):
        # The same underlying signal encoded at 16 and 4 symbols should be
        # close (distance well under random-pair expectation of ~0.33).
        fine, coarse = encoded_pair
        n = min(len(fine), len(coarse))
        assert series_distance(fine[:n], coarse[:n]) < 0.15
