"""Unit tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import _encode_fleet, build_parser, main
from repro.core import TimeSeries
from repro.datasets import House, MeterDataset


@pytest.fixture()
def fast_args():
    """Dataset arguments small enough for CLI tests to stay quick."""
    return ["--days", "5", "--interval", "300", "--seed", "3"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("generate", "encode", "classify", "forecast",
                        "compression", "export-arff"):
            extra = ["--out", "x"] if command in ("generate", "export-arff") else []
            args = parser.parse_args([command] + extra)
            assert callable(args.handler)


class TestCommands:
    def test_generate_then_reuse(self, tmp_path, capsys, fast_args):
        out = tmp_path / "redd"
        assert main(["generate", "--out", str(out)] + fast_args) == 0
        assert (out / "manifest.csv").exists()
        # Re-use the persisted dataset through --data.
        assert main(["encode", "--data", str(out), "--house", "1",
                     "--alphabet", "4"]) == 0
        output = capsys.readouterr().out
        assert "symbols" in output and "separators" in output

    def test_encode_prints_symbols(self, capsys, fast_args):
        assert main(["encode", "--house", "2", "--alphabet", "8",
                     "--method", "uniform"] + fast_args) == 0
        output = capsys.readouterr().out
        assert "symbol entropy" in output

    def test_classify_outputs_f_measure(self, capsys, fast_args):
        assert main(["classify", "--encoding", "median", "--alphabet", "4",
                     "--classifier", "naive_bayes", "--folds", "4"] + fast_args) == 0
        output = capsys.readouterr().out
        assert "f_measure" in output

    def test_compression_table(self, capsys):
        assert main(["compression", "--alphabet", "16", "--window", "900"]) == 0
        output = capsys.readouterr().out
        assert "ratio" in output

    def test_export_arff(self, tmp_path, capsys, fast_args):
        out = tmp_path / "vectors.arff"
        assert main(["export-arff", "--encoding", "median", "--alphabet", "4",
                     "--out", str(out)] + fast_args) == 0
        text = out.read_text()
        assert text.startswith("@relation")
        assert "@data" in text

    def test_error_paths_return_nonzero(self, capsys):
        # Reading a dataset directory that does not exist is a ReproError.
        assert main(["encode", "--data", "/nonexistent/path"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_encode_fleet_window_uses_median_interval(self, capsys):
        # Regression: the count-based window width came from the *first*
        # house's sampling interval, so one odd meter ordered first skewed
        # every window.  It must come from the fleet-wide median.
        def house(house_id: int, interval: float) -> House:
            n = int(4 * 3600 / interval)
            values = 100.0 + 10.0 * np.sin(np.arange(n))
            return House(
                house_id=house_id,
                mains=TimeSeries.regular(values, interval=interval),
            )

        # House 1 samples at 300 s; the rest of the fleet at 60 s.
        dataset = MeterDataset(
            "ragged", {1: house(1, 300.0), 2: house(2, 60.0), 3: house(3, 60.0)}
        )
        args = build_parser().parse_args(
            ["encode", "--all", "--alphabet", "4", "--window", "900"]
        )
        assert _encode_fleet(dataset, args) == 0
        output = capsys.readouterr().out
        # median(300, 60, 60) = 60 s -> 15 samples per 900 s window (the
        # buggy first-house interval would give 900 / 300 = 3 samples).
        assert "window 15 samples" in output
        assert "sampling intervals differ" in output

    def test_encode_store_and_store_info(self, tmp_path, capsys, fast_args):
        store = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "16", "--window", "900",
                     "--store", str(store)] + fast_args) == 0
        output = capsys.readouterr().out
        assert "wrote" in output and "payload bytes" in output
        assert "measured" in output and "analytic" in output
        assert store.exists()
        assert main(["store-info", str(store)]) == 0
        info = capsys.readouterr().out
        assert "layout:   dense (4 bits/symbol, alphabet 16)" in info
        assert "bits/meter-day" in info

    def test_encode_store_rle_layout(self, tmp_path, capsys, fast_args):
        store = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "8", "--rle",
                     "--store", str(store)] + fast_args) == 0
        assert main(["store-info", str(store)]) == 0
        assert "layout:   rle" in capsys.readouterr().out

    def test_classify_store_writes_then_reads(self, tmp_path, capsys, fast_args):
        base = ["classify", "--encoding", "median", "--alphabet", "4",
                "--classifier", "naive_bayes", "--folds", "4",
                "--store", str(tmp_path)] + fast_args
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "wrote" in first
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "read" in second
        # Identical result tables apart from the wrote/read line and timing.
        strip = lambda text: [
            line.rsplit(None, 2)[0] for line in text.strip().splitlines()[1:]
        ]
        assert strip(first) == strip(second)

    def test_compression_store_column(self, tmp_path, capsys, fast_args):
        store = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "16", "--window", "900",
                     "--store", str(store)] + fast_args) == 0
        capsys.readouterr()
        assert main(["compression", "--alphabet", "16", "--window", "900",
                     "--sampling", "300", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "measured_bits_per_day" in output and "check" in output

    def test_store_info_missing_file_errors(self, capsys):
        assert main(["store-info", "/nonexistent/fleet.rsym"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_store_info_reports_run_selectivity(self, tmp_path, capsys, fast_args):
        """Satellite: store-info predicts the pattern-pushdown benefit from
        per-column run counts — stored for RLE layouts, computed for dense."""
        store = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "8", "--rle",
                     "--store", str(store)] + fast_args) == 0
        capsys.readouterr()
        assert main(["store-info", str(store)]) == 0
        info = capsys.readouterr().out
        assert "runs:" in info and "(stored;" in info
        assert "selectivity:" in info and "mean run length" in info
        dense = tmp_path / "dense.rsym"
        assert main(["encode", "--all", "--alphabet", "8",
                     "--store", str(dense)] + fast_args) == 0
        capsys.readouterr()
        assert main(["store-info", str(dense)]) == 0
        assert "(computed;" in capsys.readouterr().out


class TestQueryCommands:
    @pytest.fixture()
    def store_path(self, tmp_path, capsys, fast_args):
        path = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "8", "--window", "900",
                     "--global-table", "--store", str(path),
                     "--query-index"] + fast_args) == 0
        out = capsys.readouterr().out
        assert "wrote query index" in out
        assert path.with_suffix(".rsymx").exists()
        return path

    def test_query_knn(self, store_path, capsys):
        assert main(["query", "knn", str(store_path),
                     "--query-id", "1", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "distance" in out
        assert "index-pruned" in out
        # The query column itself is excluded by default.
        assert main(["query", "knn", str(store_path), "--query-id", "1",
                     "--k", "1", "--include-self"]) == 0
        self_out = capsys.readouterr().out
        assert "1     1" in self_out  # rank 1 is the query meter itself

    def test_query_knn_requires_a_query(self, store_path, capsys):
        assert main(["query", "knn", str(store_path)]) == 1
        assert "query-id or --query-csv" in capsys.readouterr().err

    def test_query_knn_stats_prints_work_accounting(self, store_path, capsys):
        assert main(["query", "knn", str(store_path),
                     "--query-id", "1", "--k", "3", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "query stats:" in out
        assert "candidates:" in out
        assert "refined/query:" in out
        assert "decoded fraction:" in out
        assert "index used:         True" in out
        # Without the flag the accounting block stays off.
        assert main(["query", "knn", str(store_path),
                     "--query-id", "1", "--k", "3"]) == 0
        assert "query stats:" not in capsys.readouterr().out

    def test_query_knn_csv_batch_prints_every_query(self, store_path, tmp_path, capsys):
        # Regression: a multi-row --query-csv used to print only query 0.
        from repro.store import SymbolStore

        with SymbolStore.open(store_path) as store:
            decoded = store.decode(meters=[store.ids[0], store.ids[2]])
        csv = tmp_path / "queries.csv"
        csv.write_text("\n".join(",".join(map(str, row)) for row in decoded))
        assert main(["query", "knn", str(store_path),
                     "--query-csv", str(csv), "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        ranks = [line.split()[:2] for line in out.splitlines()
                 if line and line[0].isdigit()]
        assert ["0", "1"] in ranks and ["1", "1"] in ranks

    def test_query_knn_refuses_per_meter_tables(self, tmp_path, capsys, fast_args):
        """Bugfix satellite: mismatched per-meter tables refuse loudly."""
        path = tmp_path / "local.rsym"
        assert main(["encode", "--all", "--alphabet", "8", "--window", "900",
                     "--store", str(path)] + fast_args) == 0
        capsys.readouterr()
        assert main(["query", "knn", str(path), "--query-id", "1"]) == 1
        err = capsys.readouterr().err
        assert "distinct per-meter lookup" in err

    def test_query_match(self, store_path, capsys):
        assert main(["query", "match", str(store_path),
                     "--pattern", "a{2,}"]) == 0
        out = capsys.readouterr().out
        assert "pushdown: scanned" in out and "runs vs" in out

    def test_query_agg(self, store_path, capsys):
        assert main(["query", "agg", str(store_path), "--level", "4"]) == 0
        out = capsys.readouterr().out
        assert "peak_level" in out and "duty>=4" in out

    def test_query_index_builds_sidecar(self, tmp_path, capsys, fast_args):
        path = tmp_path / "fleet.rsym"
        assert main(["encode", "--all", "--alphabet", "8", "--window", "900",
                     "--global-table", "--store", str(path)] + fast_args) == 0
        capsys.readouterr()
        assert main(["query", "index", str(path)]) == 0
        assert "symbol histogram" in capsys.readouterr().out
        assert path.with_suffix(".rsymx").exists()

    def test_classify_workers_matches_serial(self, capsys, fast_args):
        base = ["classify", "--encoding", "median", "--alphabet", "4",
                "--classifier", "naive_bayes", "--folds", "4"] + fast_args
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical scores; only the timing column may differ.
        strip = lambda text: [
            line.rsplit(None, 2)[0] for line in text.strip().splitlines()
        ]
        assert strip(serial_out) == strip(parallel_out)


class TestMonitoringCommands:
    """Fleet monitoring verbs run end-to-end on a segmented store."""

    @pytest.fixture()
    def seg_dir(self, tmp_path):
        from repro.query import write_query_index
        from repro.store import write_segmented_fleet

        rng = np.random.default_rng(19)
        values = np.abs(rng.normal(2.0, 0.7, size=(10, 96 * 2)))
        values[9, 96:] = 9.0  # drifted meter
        directory = tmp_path / "fleet.rsyms"
        store = write_segmented_fleet(
            directory, values, alphabet_size=8, window=2,
            sampling_interval=900.0, segment_windows=24,
        )
        write_query_index(store)
        store.close()
        return directory

    def test_query_anomaly(self, seg_dir, capsys):
        assert main(["query", "anomaly", str(seg_dir), "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "score" in out
        assert "transition model" in out

    def test_query_anomaly_workers_match_serial(self, seg_dir, capsys):
        assert main(["query", "anomaly", str(seg_dir)]) == 0
        serial = capsys.readouterr().out
        assert main(["query", "anomaly", str(seg_dir), "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_query_drift(self, seg_dir, capsys):
        assert main(["query", "drift", str(seg_dir), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "tv_distance" in out
        assert "0 columns decoded" in out
        assert "fleet-mean" in out

    def test_query_drift_self_baseline(self, seg_dir, capsys):
        assert main(["query", "drift", str(seg_dir),
                     "--baseline", str(seg_dir)]) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "0 of 10 meters shifted" in out

    def test_query_agg_k_anon(self, seg_dir, capsys):
        assert main(["query", "agg", str(seg_dir), "--k-anon", "5",
                     "--noise", "2.0", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "k-anon >= 5" in out
        assert "Laplace(1/2)" in out
        assert "band profile:" in out

    def test_query_agg_k_anon_refuses_small_group(self, seg_dir, capsys):
        assert main(["query", "agg", str(seg_dir), "--k-anon", "50"]) == 1
        assert "refusing" in capsys.readouterr().err

    def test_query_agg_workers_match_serial(self, seg_dir, capsys):
        assert main(["query", "agg", str(seg_dir), "--level", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["query", "agg", str(seg_dir), "--level", "4",
                     "--workers", "3"]) == 0
        assert capsys.readouterr().out == serial
