"""Unit tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def fast_args():
    """Dataset arguments small enough for CLI tests to stay quick."""
    return ["--days", "5", "--interval", "300", "--seed", "3"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("generate", "encode", "classify", "forecast",
                        "compression", "export-arff"):
            extra = ["--out", "x"] if command in ("generate", "export-arff") else []
            args = parser.parse_args([command] + extra)
            assert callable(args.handler)


class TestCommands:
    def test_generate_then_reuse(self, tmp_path, capsys, fast_args):
        out = tmp_path / "redd"
        assert main(["generate", "--out", str(out)] + fast_args) == 0
        assert (out / "manifest.csv").exists()
        # Re-use the persisted dataset through --data.
        assert main(["encode", "--data", str(out), "--house", "1",
                     "--alphabet", "4"]) == 0
        output = capsys.readouterr().out
        assert "symbols" in output and "separators" in output

    def test_encode_prints_symbols(self, capsys, fast_args):
        assert main(["encode", "--house", "2", "--alphabet", "8",
                     "--method", "uniform"] + fast_args) == 0
        output = capsys.readouterr().out
        assert "symbol entropy" in output

    def test_classify_outputs_f_measure(self, capsys, fast_args):
        assert main(["classify", "--encoding", "median", "--alphabet", "4",
                     "--classifier", "naive_bayes", "--folds", "4"] + fast_args) == 0
        output = capsys.readouterr().out
        assert "f_measure" in output

    def test_compression_table(self, capsys):
        assert main(["compression", "--alphabet", "16", "--window", "900"]) == 0
        output = capsys.readouterr().out
        assert "ratio" in output

    def test_export_arff(self, tmp_path, capsys, fast_args):
        out = tmp_path / "vectors.arff"
        assert main(["export-arff", "--encoding", "median", "--alphabet", "4",
                     "--out", str(out)] + fast_args) == 0
        text = out.read_text()
        assert text.startswith("@relation")
        assert "@data" in text

    def test_error_paths_return_nonzero(self, capsys):
        # Reading a dataset directory that does not exist is a ReproError.
        assert main(["encode", "--data", "/nonexistent/path"]) == 1
        assert "error:" in capsys.readouterr().err
