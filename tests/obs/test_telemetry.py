"""ProcessTelemetry protocol: context shipping, worker capture, merge."""

from __future__ import annotations

import pickle

from repro.obs import (
    TraceContext,
    capture_telemetry,
    enable_tracing,
    merge_telemetry,
    recent_traces,
    registry,
    set_metrics_enabled,
    shard_trace_context,
    span,
    tracer,
)


def test_context_is_none_when_everything_is_off():
    previous = set_metrics_enabled(False)
    try:
        assert shard_trace_context() is None
    finally:
        set_metrics_enabled(previous)


def test_context_snapshots_the_open_span():
    enable_tracing()
    with span("plan.run") as plan_span:
        context = shard_trace_context()
    assert context.trace_id == plan_span.trace_id
    assert context.parent_span_id == plan_span.span_id
    assert context.trace_enabled and context.metrics_enabled
    pickle.dumps(context)  # must ship inside a worker task


def test_context_without_tracing_still_requests_metrics():
    context = shard_trace_context()
    assert context is not None
    assert not context.trace_enabled
    assert context.metrics_enabled
    assert context.trace_id is None


def test_capture_with_none_context_is_passthrough():
    with capture_telemetry(None, "plan.shard") as telemetry:
        registry().counter("ignored_total").inc()
    assert telemetry.spans == [] and telemetry.metrics is None


def test_capture_isolates_the_worker_delta():
    # The "inherited" totals a forked child starts with must cancel out.
    registry().counter("store.columns_decoded_total").inc(100)
    context = TraceContext(
        trace_id="t" * 8, parent_span_id="p" * 8,
        trace_enabled=True, metrics_enabled=True,
    )
    with capture_telemetry(context, "plan.shard", shard=1) as telemetry:
        registry().counter("store.columns_decoded_total").inc(5)
        with span("store.read"):
            pass
    assert telemetry.metrics["counters"] == {"store.columns_decoded_total": 5}
    (root,) = telemetry.spans
    assert root["name"] == "plan.shard"
    assert root["trace_id"] == "t" * 8
    assert root["parent_id"] == "p" * 8
    assert root["attributes"] == {"shard": 1}
    assert [c["name"] for c in root["children"]] == ["store.read"]
    # Worker-side capture never pollutes the worker's own ring buffer.
    assert recent_traces() == []


def test_capture_restores_disabled_tracer():
    assert not tracer().enabled
    context = TraceContext(None, None, trace_enabled=True, metrics_enabled=True)
    with capture_telemetry(context, "plan.shard"):
        assert tracer().enabled
    assert not tracer().enabled


def test_merge_grafts_spans_in_task_order_and_adds_deltas():
    enable_tracing()
    parts = []
    for shard in range(3):
        context = TraceContext(None, None, True, True)
        with capture_telemetry(context, "plan.shard", shard=shard) as telemetry:
            registry().counter("store.columns_decoded_total").inc(shard + 1)
        parts.append(telemetry)
    before = registry().counter_value("store.columns_decoded_total")

    with span("plan.run"):
        merge_telemetry([parts[0], None, parts[1], parts[2]])
    (trace,) = recent_traces(1)
    assert [c["name"] for c in trace["children"]] == ["plan.shard"] * 3
    assert [c["attributes"]["shard"] for c in trace["children"]] == [0, 1, 2]
    assert registry().counter_value("store.columns_decoded_total") == before + 6
