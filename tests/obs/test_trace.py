"""Tracer: span trees, parentage, ring buffer, sink, collector."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    Span,
    current_trace_id,
    enable_tracing,
    format_span_tree,
    new_trace_id,
    recent_traces,
    span,
    tracer,
    tracing_enabled,
)


def test_disabled_tracer_yields_noop_span():
    assert not tracing_enabled()
    with span("outer", k=1) as s:
        s.set_attribute("x", 2)  # must not raise
    assert recent_traces() == []


def test_span_nesting_builds_one_tree():
    enable_tracing()
    with span("root") as root:
        with span("child.a"):
            with span("leaf"):
                pass
        with span("child.b"):
            pass
    (trace,) = recent_traces(1)
    assert trace["name"] == "root"
    assert [c["name"] for c in trace["children"]] == ["child.a", "child.b"]
    assert trace["children"][0]["children"][0]["name"] == "leaf"
    # Every child shares the root's trace id and points at its parent.
    child = trace["children"][0]
    assert child["trace_id"] == trace["trace_id"]
    assert child["parent_id"] == trace["span_id"]
    assert root.end_ns >= root.start_ns


def test_span_records_attributes_and_durations():
    enable_tracing()
    with span("work", items=3) as s:
        s.set_attributes(kept=2)
    (trace,) = recent_traces(1)
    assert trace["attributes"] == {"items": 3, "kept": 2}
    assert trace["duration_ns"] >= 0
    child_free = Span.from_dict(trace)
    assert child_free.name == "work"
    assert child_free.attributes["items"] == 3


def test_exception_marks_status_and_still_finishes():
    enable_tracing()
    with pytest.raises(ValueError):
        with span("failing"):
            raise ValueError("boom")
    (trace,) = recent_traces(1)
    assert trace["status"] == "error:ValueError"


def test_explicit_trace_id_and_parent_for_cross_process_spans():
    enable_tracing()
    trace_id = new_trace_id()
    with tracer().span("plan.shard", _trace_id=trace_id, _parent_id="abc123"):
        assert current_trace_id() == trace_id
    (trace,) = recent_traces(1)
    assert trace["trace_id"] == trace_id
    assert trace["parent_id"] == "abc123"


def test_ambient_trace_id_binds_new_roots():
    enable_tracing()
    token = tracer().set_trace_id("feedbeef")
    try:
        with span("served"):
            pass
    finally:
        tracer().reset_trace_id(token)
    (trace,) = recent_traces(1)
    assert trace["trace_id"] == "feedbeef"


def test_ring_keeps_newest_first():
    enable_tracing()
    for index in range(5):
        with span(f"root-{index}"):
            pass
    names = [t["name"] for t in recent_traces(3)]
    assert names == ["root-4", "root-3", "root-2"]


def test_jsonl_sink_appends_one_tree_per_line(tmp_path):
    sink = tmp_path / "trace.jsonl"
    enable_tracing(sink=str(sink))
    with span("a"):
        with span("a.child"):
            pass
    with span("b"):
        pass
    lines = sink.read_text().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["name"] == "a"
    assert first["children"][0]["name"] == "a.child"


def test_collector_diverts_roots_from_ring_and_sink():
    enable_tracing()
    with tracer().collect() as roots:
        with span("captured"):
            pass
    assert [r.name for r in roots] == ["captured"]
    assert recent_traces() == []


def test_threads_get_independent_current_spans():
    enable_tracing()
    seen = {}

    def worker(name: str) -> None:
        with span(name):
            seen[name] = tracer().current_span().name

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen == {f"t{i}": f"t{i}" for i in range(4)}
    # Four independent roots, none nested under another.
    assert sorted(t["name"] for t in recent_traces(8)) == ["t0", "t1", "t2", "t3"]


def test_format_span_tree_is_indented_and_complete():
    enable_tracing()
    with span("root", op="knn"):
        with span("child"):
            pass
    (trace,) = recent_traces(1)
    rendered = format_span_tree(trace)
    lines = rendered.splitlines()
    assert lines[0].startswith("root")
    assert "op=knn" in lines[0]
    assert lines[1].startswith("  child")
