"""CLI surface: ``repro query ... --trace`` and ``repro obs tail``."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs import enable_tracing, span
from repro.query import write_query_index
from repro.store import write_fleet_store


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "fleet.rsym"
    rng = np.random.default_rng(9)
    store = write_fleet_store(
        path, rng.normal(size=(6, 96)).cumsum(axis=1), alphabet_size=8,
    )
    write_query_index(store)
    store.close()
    return path


class TestQueryTrace:
    def test_knn_trace_prints_tree_and_accounting(self, store_path, capsys):
        assert main([
            "query", "knn", str(store_path), "--query-id", "0", "--k", "3",
            "--stats", "--trace",
        ]) == 0
        captured = capsys.readouterr()
        assert "rank" in captured.out  # the normal result table is untouched
        assert "engine.knn" in captured.err
        assert "plan.run" in captured.err
        assert "work accounting:" in captured.err
        assert "columns_decoded=" in captured.err
        assert "metrics delta:" in captured.err
        assert "query.knn_queries_total = 1" in captured.err

    def test_trace_and_stats_report_identical_numbers(self, store_path, capsys):
        assert main([
            "query", "knn", str(store_path), "--query-id", "0", "--k", "3",
            "--stats", "--trace",
        ]) == 0
        captured = capsys.readouterr()
        stats = {}
        for line in captured.out.splitlines():
            if ":" in line and line.startswith("  "):
                key, _, value = line.strip().partition(":")
                stats[key.strip()] = value.strip()
        refined = int(stats["refined (total)"])
        assert f"query.candidates_refined_total = {refined}" in captured.err
        queries = int(stats["queries"])
        assert f"query.knn_queries_total = {queries}" in captured.err

    def test_match_and_agg_accept_trace(self, store_path, capsys):
        assert main([
            "query", "match", str(store_path), "--pattern", "a *", "--trace",
        ]) == 0
        assert "plan.run" in capsys.readouterr().err
        assert main([
            "query", "agg", str(store_path), "--level", "4", "--trace",
        ]) == 0
        assert "plan.run" in capsys.readouterr().err

    def test_without_flag_stderr_stays_clean(self, store_path, capsys):
        assert main([
            "query", "knn", str(store_path), "--query-id", "0", "--k", "3",
        ]) == 0
        assert capsys.readouterr().err == ""


class TestObsTail:
    def _sink(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        enable_tracing(sink=str(sink))
        for index in range(3):
            with span(f"root-{index}", op="knn"):
                with span("child"):
                    pass
        return sink

    def test_tail_prints_last_n(self, tmp_path, capsys):
        sink = self._sink(tmp_path)
        assert main(["obs", "tail", str(sink), "--n", "2"]) == 0
        output = capsys.readouterr().out
        assert "root-0" not in output
        assert "root-1" in output and "root-2" in output
        assert "  child" in output

    def test_tail_skips_garbage_lines(self, tmp_path, capsys):
        sink = self._sink(tmp_path)
        with sink.open("a") as handle:
            handle.write("not json\n")
        assert main(["obs", "tail", str(sink), "--n", "10"]) == 0
        captured = capsys.readouterr()
        assert "root-2" in captured.out
        assert "unparseable" in captured.err

    def test_tail_missing_file_errors(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) != 0
        assert "no trace sink" in capsys.readouterr().err

    def test_sink_lines_are_valid_json_trees(self, tmp_path):
        sink = self._sink(tmp_path)
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            tree = json.loads(line)
            assert tree["name"].startswith("root-")
            assert tree["children"][0]["name"] == "child"
