"""Obs-test fixtures: isolate the process-global registry and tracer."""

from __future__ import annotations

import pytest

from repro.obs import registry, tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset telemetry state around every test in this package.

    The registry and tracer are process-wide singletons; tests here mutate
    them freely, so each one starts from an empty, enabled registry and a
    disabled tracer with an empty ring.
    """
    reg = registry()
    trace = tracer()
    reg.reset()
    reg.enabled = True
    trace.disable()
    trace.clear()
    yield
    reg.reset()
    reg.enabled = True
    trace.disable()
    trace.clear()
