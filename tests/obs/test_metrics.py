"""MetricsRegistry: counters, histograms, snapshots, exposition formats."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    registry,
    set_metrics_enabled,
)


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("store.reads_total", "reads")
    c.inc()
    c.inc(4)
    assert reg.counter_value("store.reads_total") == 5
    assert reg.counter_value("store.never_touched_total") == 0


def test_counter_labels_are_distinct_series():
    reg = MetricsRegistry()
    reg.counter("plan.runs_total", op="knn").inc()
    reg.counter("plan.runs_total", op="agg").inc(2)
    assert reg.counter_value("plan.runs_total", op="knn") == 1
    assert reg.counter_value("plan.runs_total", op="agg") == 2


def test_instrument_identity_is_cached():
    reg = MetricsRegistry()
    assert reg.counter("a.b_total") is reg.counter("a.b_total")
    assert reg.counter("a.b_total", x="1") is not reg.counter("a.b_total", x="2")


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("serve.queue_depth")
    g.set(3.0)
    g.inc()
    g.dec(2.0)
    assert reg.snapshot()["gauges"]["serve.queue_depth"] == pytest.approx(2.0)


def test_histogram_quantiles_are_bucket_accurate():
    reg = MetricsRegistry()
    h = reg.histogram("q.seconds", buckets=(0.001, 0.01, 0.1, 1.0))
    for _ in range(99):
        h.observe(0.005)  # lands in the (0.001, 0.01] bucket
    h.observe(0.5)
    snap = reg.snapshot()["histograms"]["q.seconds"]
    assert snap["count"] == 100
    assert snap["sum"] == pytest.approx(99 * 0.005 + 0.5)
    # p50 interpolates inside the dominating bucket; p99+ reaches the tail.
    assert 0.001 <= h.quantile(0.50) <= 0.01
    assert 0.1 <= h.quantile(0.995) <= 1.0


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    reg.counter("a_total").inc()
    reg.histogram("h").observe(1.0)
    snap = reg.snapshot()
    assert reg.counter_value("a_total") == 0
    assert snap["histograms"]["h"]["count"] == 0


def test_snapshot_is_picklable_and_detached():
    reg = MetricsRegistry()
    reg.counter("a_total").inc()
    snap = pickle.loads(pickle.dumps(reg.snapshot()))
    reg.counter("a_total").inc(10)
    assert snap["counters"]["a_total"] == 1


def test_diff_then_merge_round_trips_worker_deltas():
    # Simulates the fork protocol: the child inherits the parent's totals,
    # does some work, and ships only the delta home.
    parent = MetricsRegistry()
    parent.counter("store.columns_decoded_total").inc(7)
    inherited = parent.snapshot()

    child = MetricsRegistry()
    child.merge_snapshot(inherited)  # "fork"
    child.counter("store.columns_decoded_total").inc(3)
    child.histogram("io.seconds", buckets=(0.1, 1.0)).observe(0.05)
    delta = diff_snapshots(child.snapshot(), inherited)

    assert delta["counters"]["store.columns_decoded_total"] == 3
    parent.merge_snapshot(delta)
    assert parent.counter_value("store.columns_decoded_total") == 10
    merged = parent.snapshot()["histograms"]["io.seconds"]
    assert merged["count"] == 1


def test_diff_drops_zero_deltas():
    reg = MetricsRegistry()
    reg.counter("untouched_total").inc(5)
    before = reg.snapshot()
    reg.counter("touched_total").inc()
    delta = diff_snapshots(reg.snapshot(), before)
    assert "untouched_total" not in delta["counters"]
    assert delta["counters"]["touched_total"] == 1


def test_to_json_exposes_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("serve.request_seconds", buckets=LATENCY_BUCKETS)
    for _ in range(10):
        h.observe(0.02)
    view = reg.to_json()
    data = view["histograms"]["serve.request_seconds"]
    assert data["count"] == 10
    assert data["p50"] > 0.0
    assert data["p50"] <= data["p95"] <= data["p99"]


def test_prometheus_exposition_shape():
    reg = MetricsRegistry()
    reg.counter("store.columns_decoded_total", "decoded columns").inc(4)
    reg.counter("plan.runs_total", op="knn").inc()
    reg.histogram("serve.request_seconds", buckets=(0.1, 1.0)).observe(0.05)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# TYPE store_columns_decoded_total counter" in lines
    assert "store_columns_decoded_total 4" in lines
    assert 'plan_runs_total{op="knn"} 1' in lines
    assert 'serve_request_seconds_bucket{le="0.1"} 1' in lines
    assert 'serve_request_seconds_bucket{le="+Inf"} 1' in lines
    assert "serve_request_seconds_count 1" in lines
    # Every sample line is "name{labels} value" with a float-parsable value.
    for line in lines:
        if line.startswith("#") or not line:
            continue
        float(line.rsplit(" ", 1)[1])


def test_set_metrics_enabled_toggles_process_registry():
    previous = set_metrics_enabled(False)
    try:
        registry().counter("while_disabled_total").inc()
        assert registry().counter_value("while_disabled_total") == 0
    finally:
        set_metrics_enabled(previous)
