"""End-to-end instrumentation: plans, workers, stores, engines.

The two invariants the tentpole promises:

1. Telemetry never changes results — kNN output is bit-identical with
   tracing+metrics on vs off, for workers 1, 2 and 4.
2. The registry is the single source of truth — the ``store.*`` counters a
   query increments equal the ``KNNStats`` work accounting exactly.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import StoreIntegrityWarning
from repro.obs import (
    enable_tracing,
    recent_traces,
    registry,
    set_metrics_enabled,
    span,
    tracer,
)
from repro.query import QueryConfig, QueryEngine, write_query_index
from repro.store import append_segment, faults, open_store, scrub_store, write_segmented_fleet

N_METERS = 10
N_SAMPLES = 256


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(17)
    return rng.normal(size=(N_METERS, N_SAMPLES)).cumsum(axis=1)


@pytest.fixture()
def seg_dir(tmp_path, fleet_values):
    path = tmp_path / "fleet.rsyms"
    store = write_segmented_fleet(
        path, fleet_values, alphabet_size=8, window=4, segment_windows=24,
    )
    write_query_index(store)
    store.close()
    return path


def _knn(seg_dir, workers, k=3, rows=4, fresh_registry=False):
    """Run one kNN batch; optionally isolate its registry delta.

    ``fresh_registry`` resets the registry right before the query, after the
    open and the query-decode — the fixture's index build and the store open
    decode columns too, and the accounting tests want this query's work only.
    Returns ``(result, source_stats)``.
    """
    with QueryEngine.open(seg_dir) as engine:
        queries = engine.store.decode(meters=list(range(rows)))
        if fresh_registry:
            registry().reset()
        config = QueryConfig(k=k, workers=workers)
        result = engine.knn(queries, config)
        return result, engine.source.stats


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_identical_with_telemetry_on_and_off(
        self, seg_dir, workers
    ):
        previous = set_metrics_enabled(False)
        try:
            baseline, _ = _knn(seg_dir, workers)
        finally:
            set_metrics_enabled(previous)
        enable_tracing()
        with span("test.root"):
            traced, _ = _knn(seg_dir, workers)
        assert np.array_equal(baseline.positions, traced.positions)
        assert np.array_equal(baseline.distances, traced.distances)
        assert baseline.ids == traced.ids

    def test_results_identical_across_worker_counts_while_traced(self, seg_dir):
        enable_tracing()
        results = [_knn(seg_dir, workers)[0] for workers in (1, 2, 4)]
        for other in results[1:]:
            assert np.array_equal(results[0].positions, other.positions)
            assert np.array_equal(results[0].distances, other.distances)


class TestWorkAccounting:
    def test_counters_equal_stats_serial(self, seg_dir):
        result, source_stats = _knn(seg_dir, workers=1, fresh_registry=True)
        reg = registry()
        stats = result.stats
        # query.* counters carry the exact KNNStats numbers --stats prints.
        assert reg.counter_value("query.knn_queries_total") == stats.n_queries
        assert reg.counter_value("query.candidates_refined_total") == stats.refined
        bounded = stats.n_queries * stats.n_candidates
        assert reg.counter_value("query.candidates_bounded_total") == bounded
        pruned = bounded - stats.refined
        assert reg.counter_value("query.candidates_pruned_total") == pruned
        # store.* counters carry the exact SourceStats read accounting.
        assert reg.counter_value("store.columns_decoded_total") \
            == source_stats.columns_decoded
        assert reg.counter_value("store.runs_read_total") == source_stats.runs_read
        assert source_stats.columns_decoded > 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_deltas_merge_home(self, seg_dir, workers):
        """Decodes happen in forked shards; the merged counter must equal
        the sum of what each shard reports in its own span — the metric
        delta and the span attributes travel home independently."""
        enable_tracing()
        with span("test.root"):
            result, _ = _knn(seg_dir, workers=workers, fresh_registry=True)
        (trace,) = recent_traces(1)
        shards = _find_spans(trace, "plan.shard")
        assert len(shards) == min(workers, 4)
        per_shard = [s["attributes"]["columns_decoded"] for s in shards]
        assert all(n > 0 for n in per_shard)
        reg = registry()
        assert reg.counter_value("store.columns_decoded_total") == sum(per_shard)
        assert reg.counter_value("query.knn_queries_total") == result.stats.n_queries

    def test_plan_histogram_and_run_counter(self, seg_dir):
        _knn(seg_dir, workers=1, fresh_registry=True)
        reg = registry()
        assert reg.counter_value("plan.runs_total", op="KNNOperator") == 1
        snap = reg.snapshot()["histograms"]
        key = "plan.run_seconds|op=KNNOperator"
        assert snap[key]["count"] == 1
        assert snap[key]["sum"] > 0.0


def _find_spans(node, name):
    found = [node] if node["name"] == name else []
    for child in node["children"]:
        found.extend(_find_spans(child, name))
    return found


class TestTraceTree:
    def test_sharded_plan_grafts_shard_spans(self, seg_dir):
        enable_tracing()
        with span("test.root"):
            _knn(seg_dir, workers=2, rows=4, fresh_registry=True)
        (trace,) = recent_traces(1)
        engine_span = trace["children"][0]
        assert engine_span["name"] == "engine.knn"
        (plan_span,) = [
            c for c in engine_span["children"] if c["name"] == "plan.run"
        ]
        shards = [c for c in plan_span["children"] if c["name"] == "plan.shard"]
        assert len(shards) == 2
        # Shards continue the same trace and point at the plan span, across
        # the process boundary.
        for shard_span in shards:
            assert shard_span["trace_id"] == trace["trace_id"]
            assert shard_span["parent_id"] == plan_span["span_id"]
        assert [s["attributes"]["shard"] for s in shards] == [0, 1]
        # The shards carry the decode accounting (the parent process only
        # merges); their sum equals the registry total.
        decoded = sum(s["attributes"]["columns_decoded"] for s in shards)
        assert decoded == registry().counter_value("store.columns_decoded_total")

    def test_span_durations_nest_sanely(self, seg_dir):
        enable_tracing()
        with span("test.root"):
            _knn(seg_dir, workers=1)
        (trace,) = recent_traces(1)
        assert _find_spans(trace, "engine.knn") and _find_spans(trace, "plan.run")

        def check(node):
            child_total = sum(c["duration_ns"] for c in node["children"])
            assert node["duration_ns"] >= 0
            assert child_total <= node["duration_ns"] * 1.02 + 1_000_000
            for child in node["children"]:
                check(child)

        check(trace)


class TestStoreCounters:
    def test_stale_index_counter_never_dedups(self, seg_dir):
        store = open_store(seg_dir)
        append_segment(
            seg_dir, store.matrix(window_range=(0, 8)),
            tables=store.shared_table,
        )
        store.close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StoreIntegrityWarning)
            for _ in range(2):  # the warning dedups; the counter must not
                QueryEngine.open(seg_dir).close()
        assert registry().counter_value("store.stale_index_total") == 2

    def test_quarantine_counter_on_corrupt_read(self, seg_dir):
        victim = sorted(seg_dir.glob("seg-*.rsym"))[0]
        faults.corrupt_tail(victim, 24)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StoreIntegrityWarning)
            with open_store(seg_dir) as store:
                store.matrix()
        assert registry().counter_value("store.quarantined_segments_total") >= 1

    def test_scrub_counters(self, seg_dir):
        report = scrub_store(seg_dir)
        reg = registry()
        assert reg.counter_value("store.scrub_runs_total") == 1
        flat = reg.snapshot()["counters"]
        assert flat.get("store.scrub_bytes_checked_total", 0) == report.bytes_checked
        assert report.bytes_checked > 0

    def test_segment_commit_counters(self, tmp_path, fleet_values):
        path = tmp_path / "commits.rsyms"
        store = write_segmented_fleet(
            path, fleet_values, alphabet_size=8, window=4, segment_windows=24,
        )
        store.close()
        reg = registry()
        commits = reg.counter_value("store.segment_commits_total")
        assert commits >= 2  # 256 samples / window 4 / 24-window segments
        windows = reg.counter_value("store.windows_committed_total")
        assert windows == (N_SAMPLES // 4 // 24) * 24 or windows == N_SAMPLES // 4
