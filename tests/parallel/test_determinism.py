"""Bit-parity of the parallel execution layer against the serial code paths.

Every grain of parallel work — grid cells, cross-validation folds, fleet
meter shards, forecast cells — must produce outputs *bit-identical* to the
serial run for every worker count.  The cross-validation checks replay the
PR 2 golden cases (generated from the pre-vectorization implementations)
through the fold-parallel path, so the whole chain serial-era code →
vectorized engine → multi-core engine is pinned to one set of numbers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from functools import partial

from repro.analytics.forecasting import forecast_dataset
from repro.datasets import generate_redd
from repro.experiments import ExperimentGrid
from repro.experiments.runner import GridRunner
from repro.ml import (
    DecisionTreeClassifier,
    NaiveBayesClassifier,
    RandomForestClassifier,
)
from repro.ml.crossval import cross_validate
from repro.pipeline import FleetEncoder

from ..ml._parity_cases import GOLDEN_DIR, classification_cases

WORKER_COUNTS = (1, 2, 4)

#: Picklable versions of the golden generator's CROSSVAL_BUILDERS (which are
#: lambdas): same classifiers, same hyperparameters, shippable to workers.
GOLDEN_CROSSVAL_FACTORIES = {
    "naive_bayes": NaiveBayesClassifier,
    "j48": DecisionTreeClassifier,
    "random_forest": partial(RandomForestClassifier, n_trees=8, random_state=1),
}


@pytest.fixture(scope="module")
def grid_dataset():
    """Small but real dataset with a descriptor (the parallel-grid source)."""
    return generate_redd(days=5, sampling_interval=300.0, seed=3)


@pytest.fixture(scope="module")
def serial_grid_results(grid_dataset):
    grid = ExperimentGrid.quick()
    return GridRunner(grid_dataset, n_folds=5, seed=0).run_grid(
        grid, ["naive_bayes", "j48"]
    )


def _assert_results_equal(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.config == b.config
        assert a.classifier == b.classifier
        assert a.f_measure == b.f_measure
        assert a.accuracy == b.accuracy
        assert a.n_instances == b.n_instances
        assert a.n_folds == b.n_folds


class TestGridParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_grid_cells_bit_identical(self, grid_dataset, serial_grid_results, workers):
        runner = GridRunner(grid_dataset, n_folds=5, seed=0, workers=workers)
        try:
            results = runner.run_grid(ExperimentGrid.quick(), ["naive_bayes", "j48"])
        finally:
            runner.close()
        _assert_results_equal(serial_grid_results, results)

    def test_grid_without_descriptor_falls_back_to_pickling(
        self, grid_dataset, serial_grid_results
    ):
        # Hand-built datasets have no descriptor; the parallel grid then
        # ships the dataset itself and must still match the serial run.
        stripped = grid_dataset.subset(grid_dataset.house_ids)
        stripped.descriptor = None
        runner = GridRunner(stripped, n_folds=5, seed=0, workers=2)
        try:
            results = runner.run_grid(ExperimentGrid.quick(), ["naive_bayes", "j48"])
        finally:
            runner.close()
        _assert_results_equal(serial_grid_results, results)


class TestCrossValidationParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("model_name", sorted(GOLDEN_CROSSVAL_FACTORIES.keys()))
    def test_folds_match_pr2_goldens(self, model_name, workers):
        # The golden numbers were generated from the pre-vectorization code;
        # the fold-parallel path must still reproduce them exactly.
        golden_path = GOLDEN_DIR / "crossval.json"
        golden = json.loads(golden_path.read_text())["day_vectors"]["models"][model_name]
        dataset = classification_cases()["day_vectors"]
        result = cross_validate(
            GOLDEN_CROSSVAL_FACTORIES[model_name], dataset, n_folds=10, seed=0,
            workers=workers,
        )
        assert result.f_measure == golden["f_measure"]
        assert result.accuracy == golden["accuracy"]
        assert result.fold_f_measures == golden["fold_f_measures"]


class TestFleetShardParity:
    @pytest.fixture(scope="class")
    def fleet(self):
        rng = np.random.default_rng(0)
        return np.abs(rng.normal(300.0, 120.0, size=(23, 960)))

    @pytest.mark.parametrize("shared", [True, False])
    @pytest.mark.parametrize("method", ["median", "uniform"])
    def test_fit_encode_bit_identical(self, fleet, shared, method):
        serial = FleetEncoder(
            alphabet_size=8, method=method, window=4, shared_table=shared
        )
        serial_indices = serial.fit_encode(fleet)
        for workers in (2, 4):
            parallel = FleetEncoder(
                alphabet_size=8, method=method, window=4, shared_table=shared
            )
            indices = parallel.fit_encode(fleet, workers=workers)
            np.testing.assert_array_equal(serial_indices, indices)
            assert [t.separators for t in parallel.tables] == [
                t.separators for t in serial.tables
            ]
            np.testing.assert_array_equal(
                serial.decode(serial_indices), parallel.decode(indices)
            )

    def test_more_workers_than_meters(self, fleet):
        small = fleet[:3]
        serial = FleetEncoder(alphabet_size=4, window=4).fit_encode(small)
        parallel = FleetEncoder(alphabet_size=4, window=4)
        np.testing.assert_array_equal(
            serial, parallel.fit_encode(small, workers=8)
        )

    def test_workers_zero_means_cpu_count(self, fleet):
        # Regression: workers=0 (the CLI's "one per CPU") used to reach
        # np.array_split as zero sections and crash.
        serial = FleetEncoder(alphabet_size=4, window=4).fit_encode(fleet)
        parallel = FleetEncoder(alphabet_size=4, window=4)
        np.testing.assert_array_equal(
            serial, parallel.fit_encode(fleet, workers=0)
        )


class TestForecastParity:
    def test_forecast_cells_bit_identical(self, gapless_redd):
        kwargs = dict(
            classifier="naive_bayes",
            methods=("raw", "median"),
            house_ids=[1, 2],
        )
        serial = forecast_dataset(gapless_redd, **kwargs)
        parallel = forecast_dataset(gapless_redd, workers=2, **kwargs)
        assert sorted(serial) == sorted(parallel)
        for house_id, by_method in serial.items():
            assert list(by_method) == list(parallel[house_id])
            for method, result in by_method.items():
                other = parallel[house_id][method]
                assert result.mae == other.mae
                assert result.rmse == other.rmse
                assert result.predictions == other.predictions
