"""Unit tests for the ParallelExecutor contract."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.parallel import ParallelExecutor, resolve_workers


def _square(x: int) -> int:
    return x * x


def _fail_on_seven(x: int) -> int:
    if x == 7:
        raise ValueError("task seven exploded")
    return x


class TestResolveWorkers:
    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_workers(-2)

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3


class TestParallelExecutor:
    def test_serial_mode_uses_no_pool(self):
        executor = ParallelExecutor(workers=1)
        assert executor.serial
        assert executor.map(_square, range(10)) == [x * x for x in range(10)]
        assert executor._pool is None  # never spun up a pool

    def test_results_in_task_order(self):
        tasks = list(range(23))
        with ParallelExecutor(workers=4) as executor:
            assert executor.map(_square, tasks) == [x * x for x in tasks]

    def test_chunked_results_in_task_order(self):
        tasks = list(range(17))
        with ParallelExecutor(workers=3) as executor:
            assert executor.map(_square, tasks, chunksize=5) == [
                x * x for x in tasks
            ]

    def test_single_task_stays_in_process(self):
        executor = ParallelExecutor(workers=4)
        assert executor.map(_square, [6]) == [36]
        assert executor._pool is None  # one task never pays pool startup
        executor.close()

    def test_worker_exception_propagates(self):
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(ValueError, match="task seven exploded"):
                executor.map(_fail_on_seven, range(12))

    def test_pool_reused_and_closed(self):
        executor = ParallelExecutor(workers=2)
        executor.map(_square, range(4))
        pool = executor._pool
        executor.map(_square, range(4))
        assert executor._pool is pool  # same pool across map calls
        executor.close()
        assert executor._pool is None
        executor.close()  # idempotent
