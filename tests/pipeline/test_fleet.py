"""Unit tests for the fleet-scale encoder (global vs per-meter tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LookupTable, SymbolicEncoder, TimeSeries
from repro.errors import LookupTableError, SegmentationError
from repro.pipeline import FleetEncoder, rle_decode


@pytest.fixture(scope="module")
def fleet_values():
    """20 meters x 960 samples with per-meter consumption levels."""
    rng = np.random.default_rng(21)
    levels = rng.uniform(50.0, 800.0, size=20)
    return rng.lognormal(np.log(levels)[:, None], 0.6, size=(20, 960))


class TestFleetEncoding:
    def test_shared_table_shape_and_range(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=8, window=4, shared_table=True)
        indices = fleet.fit_encode(fleet_values)
        assert indices.shape == (20, 240)
        assert indices.dtype == np.int64
        assert indices.min() >= 0 and indices.max() < 8
        assert fleet.shared is not None

    def test_per_meter_matches_per_series_encoder(self, fleet_values):
        """Fleet encoding row-by-row equals SymbolicEncoder on each meter."""
        fleet = FleetEncoder(
            alphabet_size=8, method="median", window=4, shared_table=False,
        )
        indices = fleet.fit_encode(fleet_values)
        for row, meter_values in zip(indices, fleet_values):
            encoder = SymbolicEncoder(
                alphabet_size=8, method="median", aggregation_count=4,
            )
            series = TimeSeries.regular(meter_values)
            encoded = encoder.fit(series).encode(series)
            np.testing.assert_array_equal(row, encoded.indices)

    def test_per_meter_matches_single_meter_pipeline(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=16, window=6, shared_table=False)
        indices = fleet.fit_encode(fleet_values)
        for meter in (0, 7, 19):
            piped = fleet.pipeline_for(meter).run_batch(fleet_values[meter])
            np.testing.assert_array_equal(indices[meter], piped)

    def test_shared_table_pools_all_meters(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=4, window=4, shared_table=True)
        fleet.fit(fleet_values)
        pooled = fleet.aggregate(fleet_values).ravel()
        expected = LookupTable.fit(pooled, 4, method="median")
        assert fleet.shared == expected

    def test_decode_roundtrip_shared_and_per_meter(self, fleet_values):
        for shared in (True, False):
            fleet = FleetEncoder(alphabet_size=8, window=4, shared_table=shared)
            indices = fleet.fit_encode(fleet_values)
            decoded = fleet.decode(indices)
            assert decoded.shape == indices.shape
            # Decoded values re-encode to the same symbols (idempotence).
            fleet2 = FleetEncoder.from_tables(
                fleet.shared if shared else fleet.tables, window=1,
            )
            np.testing.assert_array_equal(fleet2.encode(decoded), indices)

    def test_rle_runs_with_empty_rows(self):
        # Regression: rows with zero runs (legal via from_parts) used to
        # break row_lengths()/expand() through np.add.reduceat edge cases.
        from repro.pipeline import RLERuns

        runs = RLERuns.from_parts(
            values=np.array([5, 2]), run_lengths=np.array([3, 1]),
            offsets=np.array([0, 0, 2, 2]),
        )
        np.testing.assert_array_equal(runs.row_lengths(), [0, 4, 0])
        np.testing.assert_array_equal(runs.expand_row(0), [])
        np.testing.assert_array_equal(runs.expand_row(1), [5, 5, 5, 2])
        with pytest.raises(SegmentationError):
            runs.expand()  # ragged widths must fail loudly, not reshape-crash

    def test_rle_roundtrip(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=4, window=8, shared_table=True)
        fleet.fit(fleet_values)
        indices = fleet.encode(fleet_values)
        runs = fleet.encode_rle(fleet_values)
        # The flat container expands back to the whole index matrix...
        np.testing.assert_array_equal(runs.expand(), indices)
        # ...and its per-row pairs view still round-trips like the old list.
        for row_index, row in enumerate(indices):
            np.testing.assert_array_equal(rle_decode(runs.pairs(row_index)), row)

    def test_window_one_is_identity_aggregation(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=4, window=1, shared_table=True)
        np.testing.assert_array_equal(fleet.aggregate(fleet_values), fleet_values)


class TestFleetValidation:
    def test_requires_2d(self):
        fleet = FleetEncoder()
        with pytest.raises(SegmentationError):
            fleet.fit(np.zeros(10))

    def test_unfitted_encode_raises(self, fleet_values):
        with pytest.raises(LookupTableError):
            FleetEncoder(shared_table=False).encode(fleet_values)
        with pytest.raises(LookupTableError):
            FleetEncoder().tables

    def test_nan_rejected(self):
        fleet = FleetEncoder(alphabet_size=4, window=1)
        values = np.full((2, 8), 100.0)
        fleet.fit(values)
        values[1, 3] = np.nan
        with pytest.raises(LookupTableError):
            fleet.encode(values)

    def test_from_tables_validates(self):
        table4 = LookupTable.fit(np.arange(100.0), 4)
        table8 = LookupTable.fit(np.arange(100.0), 8)
        with pytest.raises(LookupTableError):
            FleetEncoder.from_tables([])
        with pytest.raises(LookupTableError):
            FleetEncoder.from_tables([table4, table8])
        fleet = FleetEncoder.from_tables([table4, table4])
        with pytest.raises(LookupTableError):
            fleet.encode(np.zeros((3, 4)))  # 2 tables, 3 meters

    def test_invalid_window(self):
        with pytest.raises(SegmentationError):
            FleetEncoder(window=0)

    def test_decode_requires_2d(self, fleet_values):
        fleet = FleetEncoder(alphabet_size=4, window=4).fit(fleet_values)
        with pytest.raises(SegmentationError):
            fleet.decode(np.zeros(5, dtype=np.int64))

    def test_decode_rejects_out_of_range_indices(self, fleet_values):
        # Negative indices must not silently wrap to the highest symbol.
        for shared in (True, False):
            fleet = FleetEncoder(alphabet_size=4, window=4,
                                 shared_table=shared).fit(fleet_values)
            with pytest.raises(LookupTableError):
                fleet.decode(np.asarray([[-1, 0]] * 20, dtype=np.int64))
            with pytest.raises(LookupTableError):
                fleet.decode(np.asarray([[4, 0]] * 20, dtype=np.int64))


class TestBlockedLookup:
    def test_blocked_broadcast_equals_searchsorted(self):
        """The per-meter broadcast kernel == np.searchsorted row by row."""
        rng = np.random.default_rng(8)
        values = rng.uniform(0.0, 1000.0, size=(50, 40))
        separators = np.sort(rng.uniform(0.0, 1000.0, size=(50, 7)), axis=1)
        # Inject exact ties to pin down the side="left" convention.
        values[:, 0] = separators[:, 3]
        out = FleetEncoder._blocked_lookup(values, separators)
        for i in range(values.shape[0]):
            np.testing.assert_array_equal(
                out[i], np.searchsorted(separators[i], values[i], side="left")
            )
