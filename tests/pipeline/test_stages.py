"""Unit tests for the pipeline stages (Definitions 2-4 as array transforms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinaryAlphabet, LookupTable, TimeSeries
from repro.core.vertical import segment_by_count
from repro.errors import SegmentationError
from repro.pipeline import (
    LookupStage,
    Pipeline,
    RLEStage,
    VerticalStage,
    rle_decode,
    rle_encode,
)


@pytest.fixture()
def table4():
    return LookupTable(BinaryAlphabet(4), [100.0, 200.0, 300.0])


class TestVerticalStage:
    def test_matches_segment_by_count(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(np.log(200.0), 0.7, size=1000)
        series = TimeSeries.regular(values)
        for n in (1, 2, 5, 7, 96):
            for aggregator in ("average", "sum", "max", "min", "median"):
                stage = VerticalStage(n, aggregator)
                expected = segment_by_count(series, n, aggregator).values
                np.testing.assert_array_equal(stage.run_batch(values), expected)

    def test_keep_partial_flushes_trailing_window(self):
        stage = VerticalStage(4, "sum", keep_partial=True)
        out = stage.run_batch(np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
        assert out.tolist() == [10.0, 11.0]

    def test_drop_partial_by_default(self):
        stage = VerticalStage(4, "sum")
        out = stage.run_batch(np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
        assert out.tolist() == [10.0]

    def test_custom_scalar_aggregator(self):
        stage = VerticalStage(2, lambda a: float(a[0]))  # "first" aggregation
        out = stage.run_batch(np.asarray([5.0, 9.0, 7.0, 1.0]))
        assert out.tolist() == [5.0, 7.0]

    def test_invalid_window(self):
        with pytest.raises(SegmentationError):
            VerticalStage(0)

    def test_unknown_aggregator(self):
        with pytest.raises(SegmentationError):
            VerticalStage(2, "mode")


class TestLookupStage:
    def test_matches_table_indexing(self, table4):
        stage = LookupStage(table4)
        values = np.asarray([50.0, 100.0, 150.0, 200.0, 250.0, 1000.0])
        expected = [table4.index_for_value(v) for v in values]
        assert stage.run_batch(values).tolist() == expected

    def test_raw_breakpoints(self):
        stage = LookupStage([0.0, 1.0])
        assert stage.run_batch(np.asarray([-5.0, 0.5, 5.0])).tolist() == [0, 1, 2]
        assert stage.n_symbols == 3

    def test_rejects_decreasing_breakpoints(self):
        with pytest.raises(SegmentationError):
            LookupStage([1.0, 0.0])

    def test_table_nan_rejected(self, table4):
        with pytest.raises(Exception):
            LookupStage(table4).run_batch(np.asarray([1.0, np.nan]))

    def test_raw_breakpoint_nan_rejected(self):
        # NaN must never quantise to the (plausible-looking) top symbol.
        with pytest.raises(SegmentationError):
            LookupStage([0.0, 1.0]).run_batch(np.asarray([np.nan]))


class TestRLEStage:
    def test_roundtrip(self):
        rng = np.random.default_rng(11)
        indices = rng.integers(0, 4, size=500)
        pairs = rle_encode(indices)
        np.testing.assert_array_equal(rle_decode(pairs), indices)
        # Adjacent runs always differ.
        assert np.all(np.diff(pairs[:, 0]) != 0)

    def test_chunk_boundary_never_splits_a_run(self):
        indices = np.asarray([1, 1, 1, 2, 2, 3])
        stage = RLEStage()
        state = stage.initial_state()
        out1, state = stage.process(indices[:2], state)   # 1 1 | open
        out2, state = stage.process(indices[2:5], state)  # 1 2 2 | open
        tail = stage.flush(state)
        merged = np.concatenate([out1, out2, tail])
        np.testing.assert_array_equal(stage.run_batch(indices[:5]), merged)

    def test_empty_input(self):
        assert rle_encode(np.empty(0, dtype=np.int64)).shape == (0, 2)
        assert rle_decode(np.empty((0, 2), dtype=np.int64)).size == 0

    def test_rle_decode_validates_shape(self):
        with pytest.raises(SegmentationError):
            rle_decode(np.asarray([1, 2, 3]))


class TestPipeline:
    def test_requires_a_stage(self):
        with pytest.raises(SegmentationError):
            Pipeline([])

    def test_batch_composition(self, table4):
        pipe = Pipeline([VerticalStage(2), LookupStage(table4), RLEStage()])
        values = np.asarray([50.0, 250.0, 250.0, 250.0, 240.0, 260.0, 350.0, 450.0])
        # windows: 150, 250, 250, 400 -> indices 1, 2, 2, 3 -> runs (1,1)(2,2)(3,1)
        pairs = pipe.run_batch(values)
        assert pairs.tolist() == [[1, 1], [2, 2], [3, 1]]

    def test_flush_cascades_partial_window(self, table4):
        pipe = Pipeline([VerticalStage(2, keep_partial=True), LookupStage(table4)])
        pipe.run_stream(np.asarray([50.0, 150.0, 250.0]))  # one full + one open
        tail = pipe.flush()
        # The flushed partial window (value 250 -> index 2) passes the lookup.
        assert tail.tolist() == [2]

    def test_reset_clears_state(self, table4):
        pipe = Pipeline([VerticalStage(2), LookupStage(table4)])
        pipe.run_stream(np.asarray([50.0]))
        pipe.reset()
        out = pipe.run_stream(np.asarray([250.0, 250.0]))
        assert out.tolist() == [2]

    def test_flush_resets_for_the_next_stream(self, table4):
        pipe = Pipeline([VerticalStage(2, keep_partial=True),
                         LookupStage(table4), RLEStage()])
        pipe.run_stream(np.asarray([250.0, 250.0, 250.0]))
        first = pipe.flush()
        assert first.tolist() == [[2, 2]]  # full window + kept partial
        # A stray second flush must not re-emit the released open run.
        assert pipe.flush().shape == (0, 2)
        # And the pipeline is ready for a fresh stream.
        out = pipe.run_stream(np.asarray([50.0, 50.0, 350.0, 350.0]))
        assert np.concatenate([out, pipe.flush()]).tolist() == [[0, 1], [3, 1]]

    def test_run_batch_does_not_disturb_stream(self, table4):
        pipe = Pipeline([VerticalStage(2), LookupStage(table4)])
        pipe.run_stream(np.asarray([50.0]))  # open half-window
        pipe.run_batch(np.asarray([250.0, 250.0]))
        out = pipe.run_stream(np.asarray([250.0]))
        assert out.tolist() == [1]  # mean(50, 250) = 150 -> index 1
