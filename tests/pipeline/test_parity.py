"""Batch/stream parity: the pipeline's central guarantee.

Property-style tests over seeded random data: for random alphabet sizes,
aggregation windows, aggregators and *random chunkings* of the input, the
concatenation of ``run_stream`` outputs plus ``flush`` must be byte-identical
to ``run_batch`` on the whole array.  The same guarantee is asserted for the
``OnlineEncoder`` chunk path against its per-sample ``push`` loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LookupTable, OnlineEncoder, SymbolicEncoder, TimeSeries
from repro.pipeline import LookupStage, Pipeline, RLEStage, VerticalStage

ALPHABET_SIZES = (2, 4, 8, 16)
WINDOWS = (1, 2, 5, 7, 16, 60)
AGGREGATORS = ("average", "sum", "max", "min", "median")


def random_chunks(rng: np.random.Generator, n: int):
    """Split ``range(n)`` at random cut points (possibly empty chunks)."""
    n_cuts = int(rng.integers(0, 8))
    cuts = np.sort(rng.integers(0, n + 1, size=n_cuts))
    bounds = np.concatenate([[0], cuts, [n]])
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def lognormal_values(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.lognormal(mean=np.log(250.0), sigma=0.8, size=n)


class TestPipelineParity:
    @pytest.mark.parametrize("trial", range(25))
    def test_stream_concatenation_equals_batch(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(1, 2000))
        values = lognormal_values(rng, n)
        alphabet_size = int(rng.choice(ALPHABET_SIZES))
        window = int(rng.choice(WINDOWS))
        aggregator = str(rng.choice(AGGREGATORS))
        with_rle = bool(rng.integers(0, 2))

        table = LookupTable.fit(values, alphabet_size, method="median")
        stages = []
        if window > 1:
            stages.append(VerticalStage(window, aggregator))
        stages.append(LookupStage(table))
        if with_rle:
            stages.append(RLEStage())
        pipe = Pipeline(stages)

        batch = pipe.run_batch(values)

        pipe.reset()
        pieces = []
        for lo, hi in random_chunks(rng, n):
            pieces.append(pipe.run_stream(values[lo:hi]))
        pieces.append(pipe.flush())
        streamed = np.concatenate([p for p in pieces if p.shape[0]] or pieces[:1])

        np.testing.assert_array_equal(batch, streamed)
        assert batch.dtype == streamed.dtype

    @pytest.mark.parametrize("window", WINDOWS)
    def test_single_value_chunks_equal_batch(self, window):
        """The extreme chunking: one value at a time."""
        rng = np.random.default_rng(window)
        values = lognormal_values(rng, 300)
        table = LookupTable.fit(values, 8, method="median")
        stages = [LookupStage(table), RLEStage()]
        if window > 1:
            stages = [VerticalStage(window)] + stages
        pipe = Pipeline(stages)
        batch = pipe.run_batch(values)
        pipe.reset()
        pieces = [pipe.run_stream(values[i:i + 1]) for i in range(values.size)]
        pieces.append(pipe.flush())
        streamed = np.concatenate([p for p in pieces if p.shape[0]])
        np.testing.assert_array_equal(batch, streamed)

    def test_keep_partial_parity(self):
        rng = np.random.default_rng(99)
        values = lognormal_values(rng, 101)  # 101 % 4 != 0 -> partial window
        table = LookupTable.fit(values, 4, method="median")
        pipe = Pipeline([VerticalStage(4, keep_partial=True), LookupStage(table)])
        batch = pipe.run_batch(values)
        assert batch.shape[0] == 26  # 25 full windows + flushed partial
        pipe.reset()
        pieces = [pipe.run_stream(chunk) for chunk in np.array_split(values, 13)]
        pieces.append(pipe.flush())
        streamed = np.concatenate([p for p in pieces if p.shape[0]])
        np.testing.assert_array_equal(batch, streamed)


class TestBatchEncoderPipelineParity:
    @pytest.mark.parametrize("count", (1, 4, 15))
    def test_symbolic_encoder_equals_its_pipeline(self, count):
        """SymbolicEncoder (count-aggregated) == Pipeline on raw values."""
        rng = np.random.default_rng(count)
        values = lognormal_values(rng, 1000)
        series = TimeSeries.regular(values, interval=1.0)
        encoder = SymbolicEncoder(
            alphabet_size=8, method="median", aggregation_count=count,
        )
        encoder.fit(series)
        encoded = encoder.encode(series)
        piped = encoder.as_pipeline().run_batch(values)
        np.testing.assert_array_equal(encoded.indices, piped)


class TestOnlineEncoderChunkParity:
    @pytest.mark.parametrize("trial", range(8))
    def test_push_chunk_equals_per_sample_push(self, trial):
        rng = np.random.default_rng(2000 + trial)
        n = 8000
        values = lognormal_values(rng, n)
        # Irregular timestamps with occasional gaps, as in real meter data.
        steps = rng.choice([30.0, 60.0, 60.0, 3600.0], size=n)
        timestamps = np.cumsum(steps)

        bootstrap = float((trial % 3) + 1) * 3600.0
        a = OnlineEncoder(alphabet_size=8, window_seconds=900.0,
                          bootstrap_seconds=bootstrap)
        for t, v in zip(timestamps, values):
            a.push(float(t), float(v))
        a.flush()

        b = OnlineEncoder(alphabet_size=8, window_seconds=900.0,
                          bootstrap_seconds=bootstrap)
        for lo, hi in random_chunks(rng, n):
            b.push_chunk(timestamps[lo:hi], values[lo:hi])
        b.flush()

        assert a.table == b.table
        wa = [(w.timestamp, w.symbol.word, w.aggregated_value) for w in a.emitted]
        wb = [(w.timestamp, w.symbol.word, w.aggregated_value) for w in b.emitted]
        assert wa == wb

    def test_push_series_uses_chunk_path_identically(self):
        rng = np.random.default_rng(5)
        values = lognormal_values(rng, 6000)
        series = TimeSeries.regular(values, interval=60.0)
        a = OnlineEncoder(alphabet_size=16, window_seconds=900.0,
                          bootstrap_seconds=7200.0)
        for t, v in zip(series.timestamps, series.values):
            a.push(float(t), float(v))
        b = OnlineEncoder(alphabet_size=16, window_seconds=900.0,
                          bootstrap_seconds=7200.0)
        b.push_series(series)
        assert a.table == b.table
        assert [w.symbol.word for w in a.emitted] == [w.symbol.word for w in b.emitted]

    def test_chunk_path_rejects_mismatched_lengths(self):
        encoder = OnlineEncoder()
        with pytest.raises(Exception):
            encoder.push_chunk([0.0, 1.0], [1.0])
