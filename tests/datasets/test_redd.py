"""Unit tests for repro.datasets.redd (and base dataset containers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    House,
    HouseConfig,
    MeterDataset,
    REDDGenerator,
    StandbyLoad,
    default_house_configs,
    generate_redd,
)
from repro.errors import DatasetError


class TestGenerator:
    def test_six_houses_by_default(self, small_redd):
        assert len(small_redd) == 6
        assert small_redd.house_ids == [1, 2, 3, 4, 5, 6]

    def test_deterministic_for_same_seed(self):
        a = generate_redd(days=4, sampling_interval=300, seed=5)
        b = generate_redd(days=4, sampling_interval=300, seed=5)
        assert a.mains(1) == b.mains(1)
        assert a.mains(6) == b.mains(6)

    def test_different_seeds_differ(self):
        a = generate_redd(days=4, sampling_interval=300, seed=5)
        b = generate_redd(days=4, sampling_interval=300, seed=6)
        assert a.mains(1) != b.mains(1)

    def test_sampling_interval_controls_sample_count(self):
        dataset = generate_redd(days=4, sampling_interval=600, seed=2, with_gaps=False)
        expected = 4 * 86400 / 600
        assert len(dataset.mains(1)) == expected

    def test_values_are_non_negative(self, small_redd):
        for house in small_redd:
            assert house.mains.values.min() >= 0.0

    def test_houses_have_distinct_consumption_levels(self, small_redd):
        # Houses overlap in level (like real REDD homes) but are not identical.
        means = [house.mains.mean() for house in small_redd]
        assert len(set(round(m) for m in means)) >= 5
        assert max(means) / max(min(means), 1e-9) > 1.2

    def test_houses_have_distinct_daily_schedules(self, small_redd):
        # The discriminative signal is *when* each house consumes: hourly
        # profiles (normalised to remove level) must differ across houses.
        profiles = []
        for house in small_redd:
            series = house.mains
            hours = (series.timestamps % 86400) // 3600
            profile = np.array(
                [series.values[hours == h].mean() for h in range(24)]
            )
            profiles.append(profile / profile.mean())
        correlations = []
        for i in range(len(profiles)):
            for j in range(i + 1, len(profiles)):
                correlations.append(float(np.corrcoef(profiles[i], profiles[j])[0, 1]))
        # Most pairs of houses should have clearly different shapes.
        assert np.median(correlations) < 0.75

    def test_gaps_injected_for_gapful_house(self):
        dataset = generate_redd(days=6, sampling_interval=120, seed=3)
        gapless = generate_redd(days=6, sampling_interval=120, seed=3, with_gaps=False)
        # House 5 is configured with many outages.
        assert len(dataset.mains(5)) < len(gapless.mains(5))

    def test_channels_sum_close_to_mains(self):
        dataset = generate_redd(days=2, sampling_interval=300, seed=9, with_gaps=False)
        house = dataset[1]
        total = np.zeros(len(house.mains))
        for channel in house.channels.values():
            total += channel.values
        # Mains = channels + measurement noise (a few watts).
        assert np.abs(total - house.mains.values).mean() < 10.0

    def test_heavy_tailed_distribution(self, small_redd):
        values = np.concatenate([h.mains.values for h in small_redd])
        values = values[values > 0]
        # Skewness of a log-normal-like load curve is clearly positive.
        mean, std = values.mean(), values.std()
        skew = float(np.mean(((values - mean) / std) ** 3))
        assert skew > 1.0

    def test_daily_rhythm_present(self):
        dataset = generate_redd(days=6, sampling_interval=300, seed=4, with_gaps=False)
        house = dataset.mains(1)
        hours = (house.timestamps % 86400) // 3600
        evening = house.values[(hours >= 18) & (hours <= 22)].mean()
        night = house.values[(hours >= 1) & (hours <= 5)].mean()
        assert evening > night

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            REDDGenerator(days=0)
        with pytest.raises(DatasetError):
            REDDGenerator(sampling_interval=0.0)
        with pytest.raises(DatasetError):
            HouseConfig(house_id=1, appliances=[])

    def test_generate_single_house(self):
        generator = REDDGenerator(days=2, sampling_interval=600, seed=1)
        house = generator.generate_house(3)
        assert house.house_id == 3
        with pytest.raises(DatasetError):
            generator.generate_house(99)


class TestMeterDataset:
    def test_subset_and_lookup(self, small_redd):
        subset = small_redd.subset([1, 2])
        assert subset.house_ids == [1, 2]
        assert subset.mains(1) == small_redd.mains(1)
        with pytest.raises(DatasetError):
            small_redd[99]

    def test_summary_keys(self, small_redd):
        summary = small_redd.summary()
        assert set(summary) == set(small_redd.house_ids)
        assert {"samples", "duration_days", "mean_power_w"} <= set(summary[1])

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            MeterDataset("empty", {})

    def test_house_name(self, small_redd):
        assert small_redd[3].name == "house_3"

    def test_default_configs_are_six_distinct_houses(self):
        configs = default_house_configs()
        assert len(configs) == 6
        assert len({c.house_id for c in configs}) == 6
        assert all(len(c.appliances) >= 3 for c in configs)
