"""Unit tests for repro.datasets.appliances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ActivityAppliance, CyclicAppliance, StandbyLoad, default_profile
from repro.datasets.appliances import EVENING_PROFILE, FLAT_PROFILE
from repro.errors import DatasetError

SAMPLES_PER_DAY_MIN = 1440  # one-minute resolution


class TestStandbyLoad:
    def test_mean_close_to_nominal(self, rng):
        load = StandbyLoad(watts=60.0, jitter=2.0)
        rendered = load.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)
        assert rendered.shape == (SAMPLES_PER_DAY_MIN,)
        assert rendered.mean() == pytest.approx(60.0, abs=1.0)
        assert rendered.min() >= 0.0

    def test_negative_watts_rejected(self):
        with pytest.raises(DatasetError):
            StandbyLoad(watts=-5.0)


class TestCyclicAppliance:
    def test_duty_cycle_respected(self, rng):
        fridge = CyclicAppliance(watts=100.0, period_minutes=40, duty_cycle=0.4,
                                 power_jitter=0.0)
        rendered = fridge.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)
        on_fraction = float((rendered > 0).mean())
        assert on_fraction == pytest.approx(0.4, abs=0.05)

    def test_power_level_when_on(self, rng):
        fridge = CyclicAppliance(watts=120.0, power_jitter=0.0)
        rendered = fridge.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)
        on_values = rendered[rendered > 0]
        assert on_values.mean() == pytest.approx(120.0, abs=1.0)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            CyclicAppliance(duty_cycle=0.0)
        with pytest.raises(DatasetError):
            CyclicAppliance(duty_cycle=1.5)
        with pytest.raises(DatasetError):
            CyclicAppliance(period_minutes=0.0)


class TestActivityAppliance:
    def test_events_follow_hourly_profile(self, rng):
        # An appliance that can only start between 18:00 and 21:00.
        profile = [0.0] * 24
        profile[18] = profile[19] = profile[20] = 1.0
        oven = ActivityAppliance("oven", 2000.0, profile, mean_duration_minutes=30,
                                 duration_sigma=0.1)
        rendered = oven.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)
        active_minutes = np.nonzero(rendered > 0)[0]
        assert active_minutes.size > 0
        hours = active_minutes // 60
        assert hours.min() >= 18

    def test_weekend_factor_increases_activity(self):
        profile = [0.3] * 24
        appliance = ActivityAppliance("tv", 150.0, profile, weekend_factor=2.0,
                                      mean_duration_minutes=60)
        weekday_minutes = []
        weekend_minutes = []
        for trial in range(20):
            rng = np.random.default_rng(trial)
            weekday = appliance.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)  # Monday
            rng = np.random.default_rng(trial)
            weekend = appliance.render(5, SAMPLES_PER_DAY_MIN, 60.0, rng)  # Saturday
            weekday_minutes.append((weekday > 0).sum())
            weekend_minutes.append((weekend > 0).sum())
        assert np.mean(weekend_minutes) > np.mean(weekday_minutes)

    def test_no_activity_with_zero_profile(self, rng):
        silent = ActivityAppliance("off", 1000.0, [0.0] * 24)
        rendered = silent.render(0, SAMPLES_PER_DAY_MIN, 60.0, rng)
        assert rendered.max() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            ActivityAppliance("x", -1.0, FLAT_PROFILE)
        with pytest.raises(DatasetError):
            ActivityAppliance("x", 100.0, [0.1] * 23)
        with pytest.raises(DatasetError):
            ActivityAppliance("x", 100.0, FLAT_PROFILE, mean_duration_minutes=0.0)


class TestProfiles:
    def test_named_profiles(self):
        assert default_profile("evening") == EVENING_PROFILE
        assert len(default_profile("daytime")) == 24

    def test_unknown_profile(self):
        with pytest.raises(DatasetError):
            default_profile("midnight")
