"""Unit tests for gap injection, day filtering and CSV persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SECONDS_PER_DAY, TimeSeries
from repro.datasets import (
    day_coverage_hours,
    filter_days,
    inject_gaps,
    read_dataset,
    read_series_csv,
    write_dataset,
    write_series_csv,
)
from repro.errors import DatasetError


@pytest.fixture()
def three_days():
    """Three days of 5-minute samples."""
    n = 3 * 288
    return TimeSeries.regular(np.full(n, 200.0), interval=300.0, name="x")


class TestInjectGaps:
    def test_removes_samples(self, three_days, rng):
        gapped = inject_gaps(three_days, rng, gaps_per_day=3.0, mean_gap_minutes=120.0)
        assert len(gapped) < len(three_days)
        assert len(gapped) > 0

    def test_zero_rate_is_identity(self, three_days, rng):
        assert inject_gaps(three_days, rng, gaps_per_day=0.0) == three_days

    def test_negative_rate_rejected(self, three_days, rng):
        with pytest.raises(DatasetError):
            inject_gaps(three_days, rng, gaps_per_day=-1.0)

    def test_gap_durations_bounded(self, three_days, rng):
        gapped = inject_gaps(
            three_days, rng, gaps_per_day=5.0, mean_gap_minutes=60.0,
            max_gap_minutes=90.0,
        )
        gaps = gapped.gaps(min_gap=600.0)
        # Individual outages are capped at 90 minutes; adjacent outages can
        # merge in the observed series, so allow a small number of caps.
        for start, end in gaps:
            assert end - start <= 3 * 90 * 60.0


class TestFilterDays:
    def test_all_days_pass_without_gaps(self, three_days):
        days = filter_days(three_days, min_hours=20.0)
        assert len(days) == 3

    def test_day_with_large_gap_filtered(self):
        # Day 2 only has 10 hours of data.
        day1 = TimeSeries.regular(np.ones(288), interval=300.0)
        day2 = TimeSeries.regular(
            np.ones(120), start=SECONDS_PER_DAY, interval=300.0
        )
        series = day1.concat(day2)
        kept = filter_days(series, min_hours=20.0, sampling_interval=300.0)
        assert len(kept) == 1

    def test_threshold_zero_keeps_everything(self, three_days):
        assert len(filter_days(three_days, min_hours=0.0)) == 3

    def test_negative_threshold_rejected(self, three_days):
        with pytest.raises(DatasetError):
            filter_days(three_days, min_hours=-1.0)

    def test_day_coverage_hours(self):
        day = TimeSeries.regular(np.ones(144), interval=300.0)  # 12 hours
        assert day_coverage_hours(day, 300.0) == pytest.approx(12.0)


class TestCSVRoundTrip:
    def test_series_round_trip(self, tmp_path, three_days):
        path = write_series_csv(three_days, tmp_path / "series.csv")
        loaded = read_series_csv(path, name="x")
        assert loaded == three_days

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            read_series_csv(tmp_path / "absent.csv")

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DatasetError):
            read_series_csv(path)

    def test_dataset_round_trip(self, tmp_path, small_redd):
        directory = write_dataset(small_redd.subset([1, 2]), tmp_path / "redd")
        loaded = read_dataset(directory, name="reloaded")
        assert loaded.house_ids == [1, 2]
        assert loaded.mains(1) == small_redd.mains(1)

    def test_read_dataset_requires_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            read_dataset(tmp_path)
