"""Unit tests for the Smart*-like and CER-like generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import CERGenerator, SmartStarGenerator, generate_cer, generate_smartstar
from repro.errors import DatasetError


class TestSmartStarWide:
    def test_house_count_and_duration(self):
        dataset = generate_smartstar(n_houses=25, wide_interval=300.0, seed=1)
        assert len(dataset) == 25
        house = dataset.mains(1)
        assert house.duration == pytest.approx(86400.0 - 300.0)

    def test_population_base_levels_are_heterogeneous(self):
        dataset = generate_smartstar(n_houses=60, wide_interval=600.0, seed=2)
        means = np.array([house.mains.mean() for house in dataset])
        assert means.std() / means.mean() > 0.3

    def test_deterministic(self):
        a = generate_smartstar(n_houses=5, seed=3)
        b = generate_smartstar(n_houses=5, seed=3)
        assert a.mains(3) == b.mains(3)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            SmartStarGenerator(n_houses=0)
        with pytest.raises(DatasetError):
            SmartStarGenerator(wide_interval=0.0)
        with pytest.raises(DatasetError):
            SmartStarGenerator(deep_days=0)


class TestSmartStarDeep:
    def test_three_fine_grained_houses(self):
        generator = SmartStarGenerator(deep_days=2, deep_interval=300.0, seed=4)
        deep = generator.generate_deep()
        assert len(deep) == 3
        for house in deep:
            assert len(house.mains) == 2 * 86400 / 300


class TestCER:
    def test_half_hourly_sampling(self):
        dataset = generate_cer(n_houses=4, days=14, seed=5)
        house = dataset.mains(1)
        assert house.sampling_interval == 1800.0
        assert len(house) == 14 * 48

    def test_seasonality_modulates_consumption(self):
        dataset = CERGenerator(n_houses=3, days=365, seasonal_amplitude=0.5, seed=6).generate()
        house = dataset.mains(1)
        day_index = (house.timestamps // 86400).astype(int)
        winter = house.values[day_index < 30].mean()       # around day 0 (winter peak)
        summer = house.values[(day_index > 165) & (day_index < 200)].mean()
        assert winter > summer * 1.2

    def test_no_seasonality_when_amplitude_zero(self):
        dataset = CERGenerator(n_houses=2, days=365, seasonal_amplitude=0.0, seed=7).generate()
        house = dataset.mains(1)
        day_index = (house.timestamps // 86400).astype(int)
        winter = house.values[day_index < 30].mean()
        summer = house.values[(day_index > 165) & (day_index < 200)].mean()
        assert winter == pytest.approx(summer, rel=0.1)

    def test_weekend_effect(self):
        dataset = CERGenerator(n_houses=2, days=140, weekend_factor=1.5,
                               seasonal_amplitude=0.0, seed=8).generate()
        house = dataset.mains(1)
        day_index = (house.timestamps // 86400).astype(int)
        weekend = house.values[day_index % 7 >= 5].mean()
        weekday = house.values[day_index % 7 < 5].mean()
        assert weekend > weekday

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            CERGenerator(n_houses=0)
        with pytest.raises(DatasetError):
            CERGenerator(days=0)
        with pytest.raises(DatasetError):
            CERGenerator(seasonal_amplitude=-0.1)
