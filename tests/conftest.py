"""Shared fixtures: small synthetic datasets reused across the test suite.

Datasets are session-scoped because generation is the slowest part of the
suite; every test treats them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.datasets import REDDGenerator, generate_redd


@pytest.fixture(scope="session")
def small_redd():
    """Six houses, 6 days, 2-minute sampling, with gaps (fast but realistic)."""
    return generate_redd(days=6, sampling_interval=120.0, seed=7)


@pytest.fixture(scope="session")
def gapless_redd():
    """Six houses, 9 days, 1-minute sampling, no gaps (forecasting needs 8 days)."""
    return generate_redd(days=9, sampling_interval=60.0, seed=11, with_gaps=False)


@pytest.fixture(scope="session")
def house1_series(small_redd):
    """Mains series of house 1 from the small dataset."""
    return small_redd.mains(1)


@pytest.fixture()
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def simple_series():
    """A tiny hand-checkable series: ten values at 1 Hz."""
    values = [100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0, 550.0]
    return TimeSeries.regular(values, start=0.0, interval=1.0, name="simple")
