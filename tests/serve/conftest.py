"""Serve-test fixtures: a small segmented fleet and a running server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import QueryServer, ServeClient, ServerConfig
from repro.store import write_fleet_store, write_segmented_fleet

N_METERS = 10
N_SAMPLES = 192
SEGMENT_WINDOWS = 64


def fleet_values(seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(N_METERS, N_SAMPLES)).cumsum(axis=1)


@pytest.fixture()
def fleet_dir(tmp_path):
    """A three-segment ``.rsyms`` store of 10 meters."""
    path = tmp_path / "fleet.rsyms"
    store = write_segmented_fleet(
        path, fleet_values(), alphabet_size=8,
        segment_windows=SEGMENT_WINDOWS,
    )
    store.close()
    return path


@pytest.fixture()
def fleet_file(tmp_path):
    """The same fleet as one ``.rsym`` file."""
    path = tmp_path / "fleet.rsym"
    store = write_fleet_store(path, fleet_values(), alphabet_size=8)
    store.close()
    return path


@pytest.fixture()
def server(fleet_dir):
    srv = QueryServer({"fleet": fleet_dir}, ServerConfig()).start()
    yield srv
    srv.shutdown()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=10.0)
