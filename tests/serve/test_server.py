"""End-to-end server behaviour: parity, shedding, deadlines, degradation.

The central claims pinned here:

* remote results are **bit-identical** to the library path (floats survive
  JSON via repr round-trip);
* overload and damage always surface as *structured* responses — 429, 503,
  504, ``"degraded": true`` — never a hang, a crash, or silently wrong
  data;
* a concurrent append becomes visible without restart (hot manifest-
  generation reload) while in-flight snapshots stay consistent.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    RateLimited,
    UnknownStore,
)
from repro.query import QueryConfig, QueryEngine
from repro.serve import (
    QueryServer,
    RetryPolicy,
    ServeClient,
    ServerConfig,
)
from repro.store import append_segment, faults
from repro.store.faults import FaultPlan
from repro.store.segments import SegmentedStore

from .conftest import SEGMENT_WINDOWS, fleet_values


def no_retry(url: str) -> ServeClient:
    return ServeClient(
        url, timeout=10.0, policy=RetryPolicy(max_attempts=1)
    )


class TestParity:
    """Remote results must be bit-identical to the library path."""

    def test_knn(self, server, client, fleet_dir):
        with QueryEngine.open(fleet_dir) as engine:
            T = int(engine.store.counts[0])
            queries = fleet_values()[:3, :T]
            local = engine.knn(queries, QueryConfig(k=4))
        remote = client.knn("fleet", queries, k=4)
        assert remote["positions"] == local.positions.tolist()
        assert remote["ids"] == local.ids
        assert (
            np.asarray(remote["distances"]).tobytes()
            == local.distances.tobytes()
        )
        assert remote["stats"]["refined"] == local.stats.refined
        assert remote["degraded"] is False

    def test_match(self, server, client, fleet_dir):
        with QueryEngine.open(fleet_dir) as engine:
            local = engine.match("a{2,} *")
        remote = client.match("fleet", "a{2,} *")
        assert remote["total_matches"] == local.total_matches
        spans = {
            str(k): [[int(a), int(b)] for a, b in v]
            for k, v in local.spans.items()
        }
        assert remote["spans"] == spans

    def test_agg(self, server, client, fleet_dir):
        with QueryEngine.open(fleet_dir) as engine:
            local = engine.aggregate()
        remote = client.agg("fleet")
        assert remote["ids"] == list(local.ids)
        assert remote["symbol_counts"] == local.symbol_counts.tolist()
        assert (
            np.asarray(remote["duty_cycle"]).tobytes()
            == local.duty_cycle.tobytes()
        )

    def test_anomaly_and_drift(self, server, client, fleet_dir):
        with QueryEngine.open(fleet_dir) as engine:
            anomaly = engine.anomaly()
            drift = engine.drift()
        remote_anomaly = client.anomaly("fleet")
        remote_drift = client.drift("fleet")
        assert (
            np.asarray(remote_anomaly["scores"]).tobytes()
            == anomaly.scores.tobytes()
        )
        assert (
            np.asarray(remote_drift["distances"]).tobytes()
            == drift.distances.tobytes()
        )
        assert remote_drift["reference"] == drift.reference

    def test_private_agg(self, server, client, fleet_dir):
        with QueryEngine.open(fleet_dir) as engine:
            local = engine.private_aggregate(k_anon=3, epsilon=2.0, seed=9)
        remote = client.private_agg("fleet", k_anon=3, epsilon=2.0, seed=9)
        assert (
            np.asarray(remote["symbol_counts"]).tobytes()
            == local.symbol_counts.tobytes()
        )

    def test_store_info(self, server, client, fleet_dir):
        info = client.store_info("fleet")
        with SegmentedStore.open(fleet_dir) as store:
            assert info["n_meters"] == store.n_meters
            assert info["generation"] == store.generation
            assert info["n_segments"] == store.n_segments
        assert info["degraded"] is False
        assert info["breaker"]["state"] == "closed"


class TestStructuredErrors:
    def test_unknown_store_404(self, server):
        with pytest.raises(UnknownStore):
            no_retry(server.url).agg("nope")

    def test_unknown_op_404(self, server):
        client = no_retry(server.url)
        with pytest.raises(UnknownStore):
            client._call("POST", "/stores/fleet/frobnicate", {})

    def test_bad_body_400(self, server):
        client = no_retry(server.url)
        with pytest.raises(BadRequest):
            client.knn("fleet", [["not", "numbers"]])

    def test_missing_pattern_400(self, server):
        with pytest.raises(BadRequest):
            no_retry(server.url)._call("POST", "/stores/fleet/match", {})

    def test_bad_deadline_400(self, server):
        with pytest.raises(BadRequest):
            no_retry(server.url)._call(
                "POST", "/stores/fleet/agg", {"deadline_ms": -5}
            )

    def test_server_survives_errors(self, server, client):
        """After a pile of failures the server still answers healthily."""
        bad = no_retry(server.url)
        for _ in range(5):
            with pytest.raises((UnknownStore, BadRequest)):
                bad.agg("nope")
        assert client.healthz()["ok"] is True


class TestRateLimiting:
    def test_429_with_retry_after(self, fleet_dir):
        config = ServerConfig(rate=1.0, burst=2)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            client = no_retry(server.url)
            client.agg("fleet")
            client.agg("fleet")
            with pytest.raises(RateLimited) as info:
                client.agg("fleet")
            assert info.value.retry_after is not None
            assert info.value.retry_after > 0

    def test_healthz_is_never_limited(self, fleet_dir):
        config = ServerConfig(rate=1.0, burst=1)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            client = no_retry(server.url)
            client.agg("fleet")
            for _ in range(5):
                assert client.healthz()["ok"] is True


class TestOverload:
    def test_sheds_at_2x_capacity(self, fleet_dir):
        """With 1 slot, 0 queue and a slow handler, extra load sheds 503."""
        config = ServerConfig(max_concurrent=1, max_queue=0)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            outcomes = []
            lock = threading.Lock()

            def hit():
                try:
                    no_retry(server.url).agg("fleet")
                    with lock:
                        outcomes.append("ok")
                except Overloaded:
                    with lock:
                        outcomes.append("shed")

            with faults.inject(FaultPlan(
                "serve.handle", action="delay", delay_s=0.3, repeat=True,
            )):
                threads = [threading.Thread(target=hit) for _ in range(3)]
                for t in threads:
                    t.start()
                    time.sleep(0.02)   # establish arrival order
                for t in threads:
                    t.join(timeout=10.0)
            assert "ok" in outcomes
            assert "shed" in outcomes
            # And afterwards the server is healthy again.
            assert no_retry(server.url).agg("fleet")["ids"]


class TestDeadlines:
    def test_slow_handler_times_out_504(self, fleet_dir):
        with QueryServer({"fleet": fleet_dir}, ServerConfig()) as server:
            client = no_retry(server.url)
            with faults.inject(FaultPlan(
                "serve.handle", action="delay", delay_s=0.15,
            )):
                with pytest.raises(DeadlineExceeded) as info:
                    client.agg("fleet", deadline_ms=50.0)
            assert info.value.budget_ms == 50.0
            assert info.value.elapsed_ms >= 50.0
            # Partial-work accounting rides the 504.
            assert info.value.completed == 0
            # The next, un-delayed request is fine.
            assert client.agg("fleet", deadline_ms=5000.0)["ids"]

    def test_expired_deadline_is_not_retried(self, server):
        client = ServeClient(server.url, timeout=10.0)
        before = client.retries_total
        with faults.inject(FaultPlan(
            "serve.handle", action="delay", delay_s=0.15,
        )):
            with pytest.raises(DeadlineExceeded):
                client.agg("fleet", deadline_ms=50.0)
        assert client.retries_total == before

    def test_default_deadline_from_config(self, fleet_dir):
        config = ServerConfig(default_deadline_ms=50.0)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            with faults.inject(FaultPlan(
                "serve.handle", action="delay", delay_s=0.15,
            )):
                with pytest.raises(DeadlineExceeded):
                    no_retry(server.url).agg("fleet")


class TestHotReload:
    def test_append_becomes_visible_without_restart(
        self, server, client, fleet_dir
    ):
        info_before = client.store_info("fleet")
        with SegmentedStore.open(fleet_dir) as store:
            matrix = np.vstack([
                store.indices(i)[-8:] for i in store.ids
            ])
        append_segment(fleet_dir, matrix, reason="concurrent-writer")
        info_after = client.store_info("fleet")
        assert info_after["generation"] == info_before["generation"] + 1
        agg = client.agg("fleet")
        with QueryEngine.open(fleet_dir) as engine:
            local = engine.aggregate()
        assert agg["symbol_counts"] == local.symbol_counts.tolist()

    def test_inflight_snapshot_survives_reload(self, server, fleet_dir):
        handle = server.manager.handle("fleet")
        old = handle.lease()
        old_generation = old.engine.store.generation
        with SegmentedStore.open(fleet_dir) as store:
            matrix = np.vstack([store.indices(i)[-8:] for i in store.ids])
        append_segment(fleet_dir, matrix)
        new = handle.lease()
        assert new is not old
        assert new.engine.store.generation == old_generation + 1
        # The old snapshot still answers (its mmap is alive) until released.
        assert old.engine.store.n_symbols > 0
        old.release()
        new.release()
        assert handle.reloads_total >= 1


class TestIdempotentAppend:
    def test_same_key_appends_once(self, server, client, fleet_dir):
        with SegmentedStore.open(fleet_dir) as store:
            matrix = np.vstack([store.indices(i)[-8:] for i in store.ids])
            segments_before = store.n_segments
        first = client.append("fleet", matrix, idempotency_key="abc")
        second = client.append("fleet", matrix, idempotency_key="abc")
        assert first["duplicate"] is False
        assert second["duplicate"] is True
        assert second["segment"] == first["segment"]
        with SegmentedStore.open(fleet_dir) as store:
            assert store.n_segments == segments_before + 1

    def test_different_keys_append_twice(self, server, client, fleet_dir):
        with SegmentedStore.open(fleet_dir) as store:
            matrix = np.vstack([store.indices(i)[-8:] for i in store.ids])
            segments_before = store.n_segments
        client.append("fleet", matrix, idempotency_key="k1")
        client.append("fleet", matrix, idempotency_key="k2")
        with SegmentedStore.open(fleet_dir) as store:
            assert store.n_segments == segments_before + 2

    def test_append_to_file_store_is_400(self, fleet_file):
        with QueryServer({"fleet": fleet_file}) as server:
            with pytest.raises(BadRequest):
                no_retry(server.url).append("fleet", [[0, 1]])


class TestFileStore:
    """Single-file ``.rsym`` stores serve through the same surface."""

    def test_knn_parity(self, fleet_file):
        with QueryServer({"fleet": fleet_file}) as server:
            with QueryEngine.open(fleet_file) as engine:
                T = int(engine.store.counts[0])
                queries = fleet_values()[:2, :T]
                local = engine.knn(queries, QueryConfig(k=3))
            remote = no_retry(server.url).knn("fleet", queries, k=3)
            assert (
                np.asarray(remote["distances"]).tobytes()
                == local.distances.tobytes()
            )

    def test_file_rewrite_reloads(self, tmp_path):
        from repro.store import write_fleet_store

        path = tmp_path / "fleet.rsym"
        write_fleet_store(path, fleet_values(), alphabet_size=8).close()
        with QueryServer({"fleet": path}) as server:
            client = no_retry(server.url)
            before = client.store_info("fleet")["n_symbols"]
            time.sleep(0.01)    # ensure a distinct mtime stamp
            write_fleet_store(
                path, fleet_values()[:, :96], alphabet_size=8
            ).close()
            after = client.store_info("fleet")["n_symbols"]
            assert after != before
