"""Token bucket: refill math, burst bounds, honest retry hints."""

from __future__ import annotations

import threading

import pytest

from repro.serve import TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.acquire()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.acquire()
        assert not ok
        assert retry_after == pytest.approx(0.1)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        bucket.acquire(), bucket.acquire()
        assert not bucket.acquire()[0]
        clock.advance(0.1)        # exactly one token back
        assert bucket.acquire()[0]
        assert not bucket.acquire()[0]

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == 2.0

    def test_retry_after_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        bucket.acquire()
        _, retry_after = bucket.acquire()
        assert retry_after == pytest.approx(0.5)

    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.acquire()[0] for _ in range(1000))
        assert bucket.available() == float("inf")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)

    def test_thread_safety_no_overdraw(self):
        """N threads racing a bucket of B tokens admit exactly B."""
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=50, clock=clock)
        admitted = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(25):
                if bucket.acquire()[0]:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 50
