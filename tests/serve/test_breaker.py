"""Circuit breaker: the closed → open → half-open → closed machine."""

from __future__ import annotations

import pytest

from repro.serve import CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()          # third one trips
        assert breaker.state == "open"
        assert breaker.trips_total == 1

    def test_closed_allows_open_denies(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        assert breaker.allow_trial()
        breaker.record_failure()
        assert not breaker.allow_trial()

    def test_half_open_after_timeout_single_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow_trial()             # exactly one trial
        assert not breaker.allow_trial()         # concurrent caller denied

    def test_successful_trial_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_trial()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow_trial()

    def test_failed_trial_rearms_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_trial()
        breaker.record_failure()                 # trial failed
        assert breaker.state == "open"
        clock.advance(0.5)
        assert not breaker.allow_trial()         # timer restarted
        clock.advance(0.5)
        assert breaker.allow_trial()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"         # streak broken, no trip

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
