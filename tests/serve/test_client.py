"""Client retry machinery: backoff, Retry-After floors, budgets."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    BadRequest,
    DeadlineExceeded,
    Degraded,
    Overloaded,
    RateLimited,
    RetryBudgetExceeded,
    UnknownStore,
)
from repro.serve import RetryBudget, RetryPolicy, ServeClient
from repro.serve.client import _CODE_TO_ERROR


class TestRetryPolicy:
    def test_backoff_is_full_jitter(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_cap=2.0, rng=random.Random(7)
        )
        reference = random.Random(7)
        for attempt in range(4):
            cap = min(2.0, 0.1 * (2 ** attempt))
            expected = reference.uniform(0.0, cap)
            assert policy.sleep_for(attempt, None) == expected

    def test_backoff_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_cap=0.5, rng=random.Random(1)
        )
        for attempt in range(20):
            assert policy.sleep_for(attempt, None) <= 0.5

    def test_retry_after_floors_sleep(self):
        policy = RetryPolicy(
            backoff_base=0.001, backoff_cap=0.002, rng=random.Random(1)
        )
        assert policy.sleep_for(0, 1.5) >= 1.5

    def test_retryable_classification(self):
        assert RetryPolicy.retryable(RateLimited("x"))
        assert RetryPolicy.retryable(Overloaded("x"))
        assert RetryPolicy.retryable(Degraded("x"))
        assert RetryPolicy.retryable(OSError("connection refused"))
        assert not RetryPolicy.retryable(BadRequest("x"))
        assert not RetryPolicy.retryable(UnknownStore("x"))
        assert not RetryPolicy.retryable(DeadlineExceeded("x"))


class TestRetryBudget:
    def test_reserve_allows_initial_retries(self):
        budget = RetryBudget(reserve=2.0)
        assert budget.try_withdraw()
        assert budget.try_withdraw()
        assert not budget.try_withdraw()

    def test_successes_earn_retries(self):
        budget = RetryBudget(budget_ratio=0.5, reserve=0.0)
        assert not budget.try_withdraw()
        budget.deposit()
        budget.deposit()
        assert budget.try_withdraw()
        assert not budget.try_withdraw()

    def test_balance_caps(self):
        budget = RetryBudget(budget_ratio=1.0, reserve=0.0, cap=3.0)
        for _ in range(100):
            budget.deposit()
        assert budget.balance == 3.0


class FlakyServer:
    """A tiny stand-in that fails N times then succeeds."""

    def __init__(self, failures, error):
        self.remaining = failures
        self.error = error
        self.calls = 0

    def __call__(self, method, path, body=None):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return {"ok": True}


def patched_client(monkeypatch, fake, **kwargs):
    sleeps = []
    client = ServeClient(
        "http://127.0.0.1:1",
        policy=kwargs.pop(
            "policy",
            RetryPolicy(backoff_base=0.01, rng=random.Random(3)),
        ),
        sleep=sleeps.append,
        **kwargs,
    )
    monkeypatch.setattr(client, "_once", fake)
    return client, sleeps


class TestClientRetries:
    def test_retries_until_success(self, monkeypatch):
        fake = FlakyServer(2, Overloaded("full", retry_after=0.2))
        client, sleeps = patched_client(monkeypatch, fake)
        assert client._call("POST", "/x", {}) == {"ok": True}
        assert fake.calls == 3
        assert client.retries_total == 2
        # Retry-After floors every backoff sleep.
        assert all(s >= 0.2 for s in sleeps)

    def test_non_retryable_raises_immediately(self, monkeypatch):
        fake = FlakyServer(5, BadRequest("nope"))
        client, sleeps = patched_client(monkeypatch, fake)
        with pytest.raises(BadRequest):
            client._call("POST", "/x", {})
        assert fake.calls == 1
        assert not sleeps

    def test_max_attempts_exhausted_reraises(self, monkeypatch):
        fake = FlakyServer(99, Overloaded("full"))
        client, _ = patched_client(
            monkeypatch, fake,
            policy=RetryPolicy(
                max_attempts=3, backoff_base=0.01, rng=random.Random(3)
            ),
        )
        with pytest.raises(Overloaded):
            client._call("POST", "/x", {})
        assert fake.calls == 3

    def test_budget_exhaustion(self, monkeypatch):
        fake = FlakyServer(99, Overloaded("full"))
        client, _ = patched_client(
            monkeypatch, fake,
            policy=RetryPolicy(
                max_attempts=50, backoff_base=0.01, rng=random.Random(3)
            ),
            budget=RetryBudget(reserve=2.0),
        )
        with pytest.raises(RetryBudgetExceeded) as info:
            client._call("POST", "/x", {})
        # reserve of 2 → initial try + 2 retries, then the budget slams shut
        assert fake.calls == 3
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, Overloaded)

    def test_successes_replenish_budget(self, monkeypatch):
        budget = RetryBudget(budget_ratio=0.5, reserve=0.0)
        ok = FlakyServer(0, None)
        client, _ = patched_client(monkeypatch, ok, budget=budget)
        client._call("POST", "/x", {})
        client._call("POST", "/x", {})
        assert budget.balance == 1.0

    def test_idempotency_key_reused_across_retries(self, monkeypatch):
        bodies = []

        def fake(method, path, body=None):
            bodies.append(dict(body))
            if len(bodies) < 3:
                raise Overloaded("full")
            return {"duplicate": False, "segment": "s"}

        client, _ = patched_client(monkeypatch, fake)
        client.append("fleet", [[0, 1]])
        keys = {b["idempotency_key"] for b in bodies}
        assert len(bodies) == 3
        assert len(keys) == 1          # same key on every attempt


class TestErrorDecoding:
    def test_code_map_covers_serve_errors(self):
        assert _CODE_TO_ERROR["serve.rate-limited"] is RateLimited
        assert _CODE_TO_ERROR["serve.overloaded"] is Overloaded
        assert _CODE_TO_ERROR["serve.degraded-unavailable"] is Degraded
        assert _CODE_TO_ERROR["serve.unknown-store"] is UnknownStore
        assert _CODE_TO_ERROR["serve.bad-request"] is BadRequest
        # Deadline errors are reconstructed specially (they carry
        # accounting fields, not retry_after) — not via the code map.
        assert "query.deadline-exceeded" not in _CODE_TO_ERROR

    def test_decode_reconstructs_deadline_accounting(self, server):
        """Against a live server: the 504 body rebuilds the exception."""
        from repro.store import faults
        from repro.store.faults import FaultPlan

        client = ServeClient(
            server.url, timeout=10.0, policy=RetryPolicy(max_attempts=1)
        )
        with faults.inject(FaultPlan(
            "serve.handle", action="delay", delay_s=0.12,
        )):
            with pytest.raises(DeadlineExceeded) as info:
                client.agg("fleet", deadline_ms=40.0)
        assert info.value.budget_ms == 40.0
        assert info.value.elapsed_ms is not None
        assert info.value.elapsed_ms >= 40.0
