"""Wire contract: error envelopes, request validation, float round-trip."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    QueryError,
    RateLimited,
    UnknownStore,
)
from repro.serve import protocol


class TestErrorBody:
    def test_code_and_message(self):
        body = protocol.error_body(RateLimited("too fast", retry_after=0.25))
        assert body["error"]["code"] == "serve.rate-limited"
        assert body["error"]["message"] == "too fast"
        assert body["error"]["retry_after"] == 0.25

    def test_deadline_carries_accounting(self):
        error = DeadlineExceeded(
            "out of time", budget_ms=50.0, elapsed_ms=61.0,
            completed=3, total=10,
        )
        info = protocol.error_body(error)["error"]
        assert info["code"] == "query.deadline-exceeded"
        assert info["budget_ms"] == 50.0
        assert info["completed"] == 3
        assert info["total"] == 10

    def test_status_mapping(self):
        assert protocol.status_of(RateLimited("x")) == 429
        assert protocol.status_of(Overloaded("x")) == 503
        assert protocol.status_of(UnknownStore("x")) == 404
        assert protocol.status_of(BadRequest("x")) == 400
        assert protocol.status_of(DeadlineExceeded("x")) == 504
        assert protocol.status_of(QueryError("x")) == 400
        assert protocol.status_of(RuntimeError("x")) == 500

    def test_envelope_is_json_encodable(self):
        raw = protocol.dumps(protocol.error_body(Overloaded("full")))
        decoded = json.loads(raw)
        assert decoded["error"]["code"] == "serve.overloaded"


class TestParsing:
    def test_rejects_non_json(self):
        with pytest.raises(BadRequest):
            protocol.parse_body(b"not json{")

    def test_rejects_non_object(self):
        with pytest.raises(BadRequest):
            protocol.parse_body(b"[1, 2]")

    def test_empty_body_is_empty_dict(self):
        assert protocol.parse_body(b"") == {}

    def test_queries_required(self):
        with pytest.raises(BadRequest):
            protocol.parse_queries({})

    def test_queries_must_be_numeric(self):
        with pytest.raises(BadRequest):
            protocol.parse_queries({"queries": ["a", "b"]})

    def test_queries_shape(self):
        arr = protocol.parse_queries({"queries": [[1.0, 2.0], [3.0, 4.0]]})
        assert arr.shape == (2, 2)
        with pytest.raises(BadRequest):
            protocol.parse_queries({"queries": []})

    def test_meters_must_be_list(self):
        with pytest.raises(BadRequest):
            protocol.parse_meters({"meters": "zero"})
        assert protocol.parse_meters({}) is None


class TestFloatRoundTrip:
    def test_json_floats_are_bit_identical(self):
        """The parity claim rests on repr round-tripping; pin it."""
        values = np.random.default_rng(5).normal(size=1000)
        decoded = json.loads(json.dumps(values.tolist()))
        assert np.asarray(decoded).tobytes() == values.tobytes()
