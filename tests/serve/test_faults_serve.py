"""Serve-side fault matrix: damage and disruption under live traffic.

Each cell pins the availability invariant: an injected fault — slow
handler, mid-response disconnect, corrupt segment under load — produces
either a *structured* error the client can act on or a successful retry.
The server never crashes, never hangs, and never returns wrong data.
"""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np
import pytest

from repro.errors import Degraded, ReproError
from repro.query import QueryEngine
from repro.serve import (
    QueryServer,
    RetryPolicy,
    ServeClient,
    ServerConfig,
)
from repro.store import faults
from repro.store.faults import FaultPlan
from repro.store.format import MAGIC_HEAD

from .conftest import fleet_values


def _segment_paths(directory):
    return sorted(directory.glob("seg-*.rsym"))


def _local_expected(path):
    """Quarantine-aware local answer: what a degraded server should say.

    Payload rot is invisible to a lazy open, so the read itself may trip;
    scrub like an operator would and read the healed store.
    """
    from repro.errors import CorruptStoreError
    from repro.store import scrub_store

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for _ in range(2):
            try:
                with QueryEngine.open(path) as engine:
                    return engine.aggregate()
            except CorruptStoreError:
                scrub_store(path, repair=True)
        raise AssertionError("store unreadable even after scrub")


def _await_healthy(client, expected_counts, timeout=10.0):
    """Poll until scrub has healed the store and responses go clean."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        response = client.agg("fleet")
        assert response["symbol_counts"] == expected_counts
        if not response["degraded"]:
            return response
        time.sleep(0.05)
    raise AssertionError("store never recovered from degraded serving")


class TestDegradedServing:
    def test_truncated_segment_serves_degraded_then_heals(self, fleet_dir):
        victim = _segment_paths(fleet_dir)[1]
        faults.truncate_file(victim, victim.stat().st_size // 2)
        expected = _local_expected(fleet_dir).symbol_counts.tolist()

        config = ServerConfig(breaker_reset_s=0.1)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            client = ServeClient(
                server.url, timeout=10.0,
                policy=RetryPolicy(max_attempts=1),
            )
            # The very first response is degraded but *correct*: the
            # healthy segments serve their exact bytes.
            first = client.agg("fleet")
            assert first["degraded"] is True
            assert first["symbol_counts"] == expected

            healed = _await_healthy(client, expected)
            assert healed["degraded"] is False
            # The quarantined segment is parked, not deleted.
            assert (fleet_dir / "quarantine" / victim.name).exists()
            metrics = client.metrics()["metrics"]
            assert metrics["degraded_responses_total"] >= 1

    def test_bit_rot_mid_serve_degrades_then_recovers(self, fleet_dir):
        """Payload rot is invisible to a lazy open: the query trips on it,
        the handler retries once, gives a structured 503, and background
        scrub quarantines the segment so later retries succeed."""
        config = ServerConfig(breaker_reset_s=0.1)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            no_retry = ServeClient(
                server.url, timeout=10.0,
                policy=RetryPolicy(max_attempts=1),
            )
            victim = _segment_paths(fleet_dir)[0]
            faults.flip_bit(victim, len(MAGIC_HEAD) + 5)

            # The first query trips on the rot.  Two legitimate outcomes:
            # the in-handler retry still sees the damage → structured 503
            # with a Retry-After hint; or the background scrub already
            # healed the store → a correct healthy-subset answer.  Never
            # wrong data, never a crash.
            try:
                first = no_retry.agg("fleet")
            except Degraded as error:
                assert error.retry_after == config.breaker_reset_s
            else:
                expected_now = _local_expected(
                    fleet_dir
                ).symbol_counts.tolist()
                assert first["symbol_counts"] == expected_now

            # A patient client rides the Retry-After hints to a correct,
            # healed answer — no wrong data was ever served.
            patient = ServeClient(
                server.url, timeout=10.0,
                policy=RetryPolicy(max_attempts=20, backoff_base=0.05),
            )
            expected = _local_expected(fleet_dir).symbol_counts.tolist()
            healed = _await_healthy(patient, expected)
            assert healed["degraded"] is False
            assert no_retry.healthz()["ok"] is True


class TestResponseDisconnect:
    def test_torn_response_is_retried_to_success(self, server, fleet_dir):
        client = ServeClient(server.url, timeout=10.0)
        with QueryEngine.open(fleet_dir) as engine:
            expected = engine.aggregate().symbol_counts.tolist()
        with faults.inject(FaultPlan(
            "serve.response", action="torn_write", after_bytes=20,
        )) as injector:
            response = client.agg("fleet")
        assert [p.step for p in injector.fired] == ["serve.response"]
        assert response["symbol_counts"] == expected
        assert client.retries_total >= 1
        # The handler thread survived the severed socket.
        assert client.healthz()["ok"] is True

    def test_disconnect_before_any_byte(self, server):
        client = ServeClient(server.url, timeout=10.0)
        with faults.inject(FaultPlan(
            "serve.response", action="torn_write", after_bytes=0,
        )):
            assert client.agg("fleet")["ids"]
        assert client.retries_total >= 1


class TestCorruptionUnderLoad:
    def test_concurrent_queries_survive_bit_rot(self, fleet_dir):
        """Hammer the server from several threads while a segment rots:
        every request ends in a valid answer or a structured error."""
        config = ServerConfig(breaker_reset_s=0.1, max_concurrent=8)
        with QueryServer({"fleet": fleet_dir}, config) as server:
            stop = threading.Event()
            failures = []

            def hammer(seed):
                client = ServeClient(
                    server.url, timeout=10.0,
                    policy=RetryPolicy(max_attempts=8, backoff_base=0.02),
                )
                T = 192
                queries = fleet_values(seed)[:2, :T]
                while not stop.is_set():
                    try:
                        if seed % 2:
                            response = client.agg("fleet")
                        else:
                            response = client.knn("fleet", queries, k=3)
                        assert "degraded" in response
                    except ReproError:
                        pass          # structured — acceptable under damage
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)
                        return

            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.2)
            victim = _segment_paths(fleet_dir)[2]
            faults.flip_bit(victim, len(MAGIC_HEAD) + 5)
            time.sleep(1.0)
            stop.set()
            for t in threads:
                t.join(timeout=15.0)
            assert not any(t.is_alive() for t in threads), "hung client"
            assert not failures, f"unstructured failure: {failures[:1]}"

            # After the dust settles the server serves the healthy subset,
            # bit-identical to a local quarantine-aware open.
            client = ServeClient(server.url, timeout=10.0)
            expected = _local_expected(fleet_dir)
            final = _await_healthy(
                client, expected.symbol_counts.tolist()
            )
            assert (
                np.asarray(final["duty_cycle"]).tobytes()
                == expected.duty_cycle.tobytes()
            )
