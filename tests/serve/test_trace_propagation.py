"""Satellite: one coherent trace per remote query, across every boundary.

A kNN through ServeClient → HTTP → handler → engine → plan → forked worker
shards must come back as ONE trace tree: the client's trace id rides the
``X-Repro-Trace-Id`` header into the handler span, down through the plan,
and across the process boundary into each ``plan.shard`` span — and the
work the shards report equals what the registry counted.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import new_trace_id, registry, tracer
from repro.serve import QueryServer, ServeClient, ServerConfig
from repro.store import write_segmented_fleet

N_METERS = 32
N_SAMPLES = 384


@pytest.fixture(scope="module")
def traced_server(tmp_path_factory):
    path = tmp_path_factory.mktemp("traced") / "fleet.rsyms"
    rng = np.random.default_rng(23)
    values = rng.normal(size=(N_METERS, N_SAMPLES)).cumsum(axis=1)
    write_segmented_fleet(
        path, values, alphabet_size=8, segment_windows=64,
    ).close()
    srv = QueryServer(
        {"fleet": path}, ServerConfig(workers=2, tracing=True)
    ).start()
    yield srv
    srv.shutdown()


def _find_spans(node, name):
    found = [node] if node["name"] == name else []
    for child in node["children"]:
        found.extend(_find_spans(child, name))
    return found


def _trace_for(server, trace_id):
    traces = ServeClient(server.url).traces_recent(64)
    matched = [t for t in traces if t["trace_id"] == trace_id]
    assert len(matched) == 1, (
        f"expected one trace for {trace_id}, ring holds "
        f"{[(t['name'], t['trace_id'][:8]) for t in traces]}"
    )
    return matched[0]


class TestTracePropagation:
    def test_remote_knn_yields_one_merged_trace(self, traced_server):
        trace_id = new_trace_id()
        client = ServeClient(traced_server.url, timeout=30.0, trace_id=trace_id)
        queries = np.cumsum(
            np.random.default_rng(5).normal(size=(4, N_SAMPLES)), axis=1
        )
        reg = registry()
        decoded_before = reg.counter_value("store.columns_decoded_total")
        queries_before = reg.counter_value("query.knn_queries_total")
        started = time.perf_counter()
        response = client.knn("fleet", queries, k=3)
        wall = time.perf_counter() - started

        # The server echoes the propagated id back to the client.
        assert client.last_trace_id == trace_id

        trace = _trace_for(traced_server, trace_id)
        assert trace["name"] == "serve.knn"
        (engine_span,) = _find_spans(trace, "engine.knn")
        # The first query may also run an index-build plan; pick the kNN one.
        (plan_span,) = [
            s for s in _find_spans(trace, "plan.run")
            if s["attributes"]["operator"] == "KNNOperator"
        ]
        shards = [
            s for s in _find_spans(plan_span, "plan.shard")
        ]
        assert len(shards) == 2

        # Every span of the tree carries the client's trace id — including
        # the shard spans minted inside forked worker processes.
        def all_spans(node):
            yield node
            for child in node["children"]:
                yield from all_spans(child)

        assert all(s["trace_id"] == trace_id for s in all_spans(trace))
        assert all(s["parent_id"] == plan_span["span_id"] for s in shards)
        assert [s["attributes"]["shard"] for s in shards] == [0, 1]

        # The trace accounts for the handler's time: the engine span covers
        # >=95% of the plan+refine work, and the root covers the dispatch.
        assert engine_span["duration_ns"] >= plan_span["duration_ns"]
        child_ns = sum(c["duration_ns"] for c in trace["children"])
        assert child_ns >= 0.95 * engine_span["duration_ns"]
        assert trace["duration_ns"] <= wall * 1e9

        # Work accounting: what the spans report is exactly what the
        # registry counted (the metric deltas merged home).  Each plan span
        # carries its parent-process decodes; its shard children carry the
        # worker-process decodes.
        decoded = sum(
            p["attributes"]["columns_decoded"]
            + sum(s["attributes"]["columns_decoded"]
                  for s in _find_spans(p, "plan.shard"))
            for p in _find_spans(trace, "plan.run")
        )
        assert decoded > 0
        assert reg.counter_value("store.columns_decoded_total") \
            == decoded_before + decoded
        stats = response["stats"]
        assert reg.counter_value("query.knn_queries_total") \
            == queries_before + stats["n_queries"]

    def test_ambient_trace_id_is_picked_up_by_client(self, traced_server):
        token = tracer().set_trace_id("ambient-cli-id")
        try:
            client = ServeClient(traced_server.url, timeout=30.0)
            client.agg("fleet", level=4)
        finally:
            tracer().reset_trace_id(token)
        assert client.last_trace_id == "ambient-cli-id"
        trace = _trace_for(traced_server, "ambient-cli-id")
        assert trace["name"] == "serve.agg"

    def test_server_mints_an_id_when_client_sends_none(self, traced_server):
        client = ServeClient(traced_server.url, timeout=30.0)
        client.anomaly("fleet")
        assert client.last_trace_id
        trace = _trace_for(traced_server, client.last_trace_id)
        assert trace["name"] == "serve.anomaly"
