"""Serve crash smoke: SIGKILL a real server process, restart, retry.

The serving story must survive the real thing, not just injected faults:
a ``repro serve`` subprocess killed with ``SIGKILL`` mid-conversation.
The client's retry loop (connection-refused is retryable) must ride over
the restart, and an append retried across the crash must not duplicate —
its idempotency key is durable in the manifest, so the restarted process
recognises and replays it.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import RetryBudget, RetryPolicy, ServeClient
from repro.store import write_segmented_fleet
from repro.store.segments import SegmentedStore

SRC = Path(__file__).resolve().parents[2] / "src"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(store: Path, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", f"fleet={store}",
         "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )


def _await_up(client: ServeClient, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.healthz()["ok"]:
                return
        except Exception:
            time.sleep(0.05)
    raise AssertionError("server did not come up in time")


@pytest.fixture()
def fleet(tmp_path):
    path = tmp_path / "fleet.rsyms"
    values = np.random.default_rng(11).normal(size=(6, 128)).cumsum(axis=1)
    write_segmented_fleet(
        path, values, alphabet_size=8, segment_windows=64
    ).close()
    return path


def test_sigkill_restart_same_port_no_duplicate_append(fleet):
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    probe = ServeClient(url, timeout=5.0,
                        policy=RetryPolicy(max_attempts=1))

    proc = _spawn_server(fleet, port)
    try:
        _await_up(probe)
        with SegmentedStore.open(fleet) as store:
            matrix = np.vstack([store.indices(i)[-8:] for i in store.ids])
            segments_before = store.n_segments

        # One append lands before the crash; its key is now durable.
        first = probe.append("fleet", matrix, idempotency_key="crash-key")
        assert first["duplicate"] is False
        expected_ids = probe.agg("fleet")["ids"]

        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # A patient client starts retrying against the dead port while the
        # operator restarts the server.  Connection-refused is retryable;
        # the same idempotency key rides every attempt.
        patient = ServeClient(
            url, timeout=5.0,
            policy=RetryPolicy(max_attempts=60, backoff_base=0.05,
                               backoff_cap=0.2),
            # An outage this long would normally drain the retry budget —
            # that is the point of the budget.  This client is explicitly
            # provisioned to wait out a restart.
            budget=RetryBudget(reserve=100.0),
        )
        outcome = {}

        def retry_append():
            try:
                outcome["append"] = patient.append(
                    "fleet", matrix, idempotency_key="crash-key"
                )
                outcome["agg"] = patient.agg("fleet")
            except BaseException as exc:  # noqa: BLE001
                outcome["error"] = exc

        thread = threading.Thread(target=retry_append)
        thread.start()
        time.sleep(0.3)                  # let a few retries hit the void

        proc = _spawn_server(fleet, port)
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "client never got through"
        assert "error" not in outcome, f"retry failed: {outcome.get('error')}"

        # The restarted process recognised the durable key: no new segment.
        assert outcome["append"]["duplicate"] is True
        assert outcome["append"]["segment"] == first["segment"]
        assert outcome["agg"]["ids"] == expected_ids
        with SegmentedStore.open(fleet) as store:
            assert store.n_segments == segments_before + 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
