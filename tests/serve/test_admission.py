"""Admission gate: bounded concurrency, bounded queue, fast shed."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import Overloaded
from repro.serve import AdmissionGate


class TestAdmissionGate:
    def test_admits_up_to_max_concurrent(self):
        gate = AdmissionGate(max_concurrent=2, max_queue=0)
        with gate.admit():
            with gate.admit():
                assert gate.active == 2

    def test_sheds_beyond_queue(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=0)
        with gate.admit():
            with pytest.raises(Overloaded) as info:
                with gate.admit():
                    pass
            assert info.value.code == "serve.overloaded"
            assert info.value.retry_after is not None
        assert gate.shed_total == 1

    def test_queued_request_gets_freed_slot(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=1, queue_timeout=5.0)
        entered = threading.Event()
        release = threading.Event()
        results = []

        def holder():
            with gate.admit():
                entered.set()
                release.wait(timeout=5.0)

        def waiter():
            entered.wait(timeout=5.0)
            with gate.admit():
                results.append("ran")

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=waiter)
        t1.start(), t2.start()
        entered.wait(timeout=5.0)
        time.sleep(0.05)              # let the waiter actually queue
        assert gate.waiting == 1
        release.set()
        t1.join(timeout=5.0), t2.join(timeout=5.0)
        assert results == ["ran"]
        assert gate.active == 0 and gate.waiting == 0

    def test_queue_timeout_sheds_instead_of_convoy(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=1, queue_timeout=0.05)
        release = threading.Event()
        outcome = []

        def holder():
            with gate.admit():
                release.wait(timeout=5.0)

        t1 = threading.Thread(target=holder)
        t1.start()
        time.sleep(0.02)
        with pytest.raises(Overloaded):
            with gate.admit():
                outcome.append("should not run")
        release.set()
        t1.join(timeout=5.0)
        assert not outcome
        assert gate.waiting == 0

    def test_slot_released_on_handler_exception(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with gate.admit():
                raise RuntimeError("handler blew up")
        with gate.admit():           # slot must be free again
            assert gate.active == 1

    def test_snapshot_counters(self):
        gate = AdmissionGate(max_concurrent=2, max_queue=1)
        with gate.admit():
            pass
        snap = gate.snapshot()
        assert snap["admitted_total"] == 1
        assert snap["shed_total"] == 0
        assert snap["max_concurrent"] == 2

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_concurrent=0)
