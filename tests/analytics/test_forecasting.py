"""Unit tests for repro.analytics.forecasting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    forecast_dataset,
    forecast_house,
    hourly_consumption,
    raw_forecast,
    symbolic_forecast,
)
from repro.analytics.forecasting import _lag_matrix, _split_train_test
from repro.core import TimeSeries
from repro.errors import ExperimentError


class TestHelpers:
    def test_hourly_consumption_resolution(self, gapless_redd):
        hourly = hourly_consumption(gapless_redd.mains(1))
        assert hourly.sampling_interval == pytest.approx(3600.0)
        assert len(hourly) == 9 * 24

    def test_split_train_test_sizes(self, gapless_redd):
        hourly = hourly_consumption(gapless_redd.mains(1))
        train, test = _split_train_test(hourly, train_days=7, test_days=1)
        assert train.shape == (168,)
        assert test.shape == (24,)

    def test_split_requires_enough_data(self):
        short = TimeSeries.regular(np.ones(48), interval=3600.0)
        with pytest.raises(ExperimentError):
            _split_train_test(short, train_days=7, test_days=1)

    def test_lag_matrix_shape_and_content(self):
        values = np.arange(20, dtype=float)
        X, y = _lag_matrix(values, lags=5)
        assert X.shape == (15, 5)
        assert y.shape == (15,)
        assert X[0].tolist() == [0, 1, 2, 3, 4]
        assert y[0] == 5.0
        with pytest.raises(ExperimentError):
            _lag_matrix(np.arange(3, dtype=float), lags=5)


class TestSymbolicForecast:
    def test_produces_full_day_of_predictions(self, gapless_redd):
        result = symbolic_forecast(gapless_redd.mains(2), method="median",
                                   classifier="naive_bayes", house_id=2)
        assert len(result.predictions) == 24
        assert len(result.actuals) == 24
        assert result.mae >= 0.0
        assert result.rmse >= result.mae
        assert result.house_id == 2
        assert result.method == "median/naive_bayes"

    def test_predictions_are_table_values(self, gapless_redd):
        result = symbolic_forecast(gapless_redd.mains(1), method="uniform",
                                   alphabet_size=8)
        # Predictions decode symbols, so at most 8 distinct values appear.
        assert len(set(result.predictions)) <= 8

    def test_mae_substantially_better_than_naive_max_forecast(self, gapless_redd):
        series = gapless_redd.mains(1)
        result = symbolic_forecast(series, method="median")
        hourly = hourly_consumption(series)
        worst = float(np.max(hourly.values))
        naive_mae = float(np.mean(np.abs(np.asarray(result.actuals) - worst)))
        assert result.mae < naive_mae

    def test_as_dict(self, gapless_redd):
        result = symbolic_forecast(gapless_redd.mains(1))
        info = result.as_dict()
        assert info["horizon_hours"] == 24
        assert info["house_id"] == 0  # default when not supplied


class TestRawForecast:
    def test_svr_forecast_reasonable(self, gapless_redd):
        series = gapless_redd.mains(1)
        result = raw_forecast(series, house_id=1)
        assert len(result.predictions) == 24
        hourly = hourly_consumption(series)
        assert result.mae < float(hourly.values.mean()) * 2.0
        assert result.method == "raw/svr"


class TestForecastDatasets:
    def test_forecast_house_runs_all_methods(self, gapless_redd):
        results = forecast_house(gapless_redd.mains(3), classifier="naive_bayes",
                                 house_id=3)
        assert set(results) == {"raw", "distinctmedian", "median", "uniform"}
        assert all(r.house_id == 3 for r in results.values())

    def test_forecast_dataset_skips_houses_without_enough_data(self, small_redd):
        # The small fixture only has 6 days (<8 required), except where gaps
        # shorten it further; restrict to a subset to keep the test fast.
        with pytest.raises(ExperimentError):
            forecast_dataset(small_redd, house_ids=[5], train_days=7, test_days=1)

    def test_forecast_dataset_returns_requested_houses(self, gapless_redd):
        results = forecast_dataset(
            gapless_redd, classifier="naive_bayes", methods=("raw", "median"),
            house_ids=[1, 2],
        )
        assert sorted(results) == [1, 2]
        assert set(results[1]) == {"raw", "median"}
