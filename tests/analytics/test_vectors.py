"""Unit tests for repro.analytics.vectors (day-vector construction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import DayVectorConfig, build_day_vectors, build_lookup_tables, day_slot_values
from repro.core import TimeSeries
from repro.errors import ExperimentError


class TestDayVectorConfig:
    def test_slots_per_day(self):
        assert DayVectorConfig(aggregation_seconds=3600.0).slots_per_day == 24
        assert DayVectorConfig(aggregation_seconds=900.0).slots_per_day == 96

    def test_labels_match_paper_axis_format(self):
        assert DayVectorConfig("median", 3600.0, 8).label() == "median 1h 8s"
        assert DayVectorConfig("uniform", 900.0, 16).label() == "uniform 15m 16s"
        assert DayVectorConfig("median", 3600.0, 8, global_table=True).label() == "median+ 1h 8s"
        assert DayVectorConfig("raw", 900.0).label() == "raw 15m"


class TestDaySlotValues:
    def test_full_day_averages(self):
        day = TimeSeries.regular(np.arange(1440, dtype=float), interval=60.0)
        slots = day_slot_values(day, 3600.0, 24)
        assert slots.shape == (24,)
        assert slots[0] == pytest.approx(np.arange(60).mean())
        assert slots[-1] == pytest.approx(np.arange(1380, 1440).mean())

    def test_gap_filled_with_nearest_slot(self):
        # Data only in the first and last hours of the day.
        first = TimeSeries.regular(np.full(60, 100.0), interval=60.0)
        last = TimeSeries.regular(np.full(60, 500.0), start=23 * 3600.0, interval=60.0)
        day = first.concat(last)
        slots = day_slot_values(day, 3600.0, 24)
        assert slots[0] == pytest.approx(100.0)
        assert slots[23] == pytest.approx(500.0)
        assert slots[5] == pytest.approx(100.0)   # nearest is slot 0
        assert slots[20] == pytest.approx(500.0)  # nearest is slot 23

    def test_nan_reading_filled_like_a_gap(self):
        # A NaN reading poisons its slot's mean; the slot must be filled
        # from the nearest valid slot, exactly like an empty slot.
        values = np.full(1440, 100.0)
        values[90] = np.nan  # inside slot 1
        day = TimeSeries.regular(values, interval=60.0)
        slots = day_slot_values(day, 3600.0, 24)
        assert not np.any(np.isnan(slots))
        assert slots[1] == pytest.approx(100.0)

    def test_empty_day_rejected(self):
        with pytest.raises(ExperimentError):
            day_slot_values(TimeSeries.empty(), 3600.0, 24)


class TestBuildLookupTables:
    def test_per_house_tables_differ(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8)
        tables = build_lookup_tables(small_redd, config)
        assert set(tables) == set(small_redd.house_ids)
        separators = {hid: tuple(t.separators) for hid, t in tables.items()}
        assert len(set(separators.values())) > 1

    def test_global_table_shared(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8, global_table=True)
        tables = build_lookup_tables(small_redd, config)
        reference = tables[small_redd.house_ids[0]]
        assert all(table is reference for table in tables.values())

    def test_raw_encoding_has_no_tables(self, small_redd):
        with pytest.raises(ExperimentError):
            build_lookup_tables(small_redd, DayVectorConfig("raw", 3600.0))


class TestBuildDayVectors:
    def test_symbolic_vectors_schema(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8)
        table = build_day_vectors(small_redd, config)
        assert table.n_attributes == 24
        assert all(a.is_nominal and a.n_categories == 8 for a in table.attributes)
        assert set(table.class_names) <= {f"house_{i}" for i in small_redd.house_ids}
        assert len(table) > 0

    def test_raw_vectors_schema(self, small_redd):
        config = DayVectorConfig("raw", 900.0)
        table = build_day_vectors(small_redd, config)
        assert table.n_attributes == 96
        assert all(not a.is_nominal for a in table.attributes)

    def test_bootstrap_and_filtering_affect_instance_count(self, small_redd):
        strict = build_day_vectors(small_redd, DayVectorConfig("median", 3600.0, 8,
                                                               min_hours=20.0))
        lax = build_day_vectors(small_redd, DayVectorConfig("median", 3600.0, 8,
                                                            min_hours=1.0))
        assert len(lax) >= len(strict)

    def test_alphabet_size_respected(self, small_redd):
        for size in (2, 4, 16):
            config = DayVectorConfig("uniform", 3600.0, size)
            table = build_day_vectors(small_redd, config)
            assert all(a.n_categories == size for a in table.attributes)
            assert table.X.max() < size

    def test_instances_correspond_to_filtered_days(self, small_redd):
        from repro.datasets import filter_days

        config = DayVectorConfig("median", 3600.0, 8, min_hours=20.0)
        table = build_day_vectors(small_redd, config)
        expected = sum(
            len(filter_days(house.mains, min_hours=20.0)) for house in small_redd
        )
        assert len(table) == expected
