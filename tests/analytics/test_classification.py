"""Unit tests for repro.analytics.classification."""

from __future__ import annotations

import pytest

from repro.analytics import DayVectorConfig, build_day_vectors, classifier_factory, classify_households
from repro.errors import ExperimentError
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    NaiveBayesClassifier,
    RandomForestClassifier,
)


class TestClassifierFactory:
    def test_known_names(self):
        assert isinstance(classifier_factory("naive_bayes")(), NaiveBayesClassifier)
        assert isinstance(classifier_factory("j48")(), DecisionTreeClassifier)
        assert isinstance(classifier_factory("random_forest")(), RandomForestClassifier)
        assert isinstance(classifier_factory("logistic")(), LogisticRegressionClassifier)

    def test_case_insensitive(self):
        assert isinstance(classifier_factory("Naive_Bayes")(), NaiveBayesClassifier)

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            classifier_factory("svm")

    def test_factory_returns_fresh_instances(self):
        factory = classifier_factory("naive_bayes")
        assert factory() is not factory()


class TestClassifyHouseholds:
    def test_symbolic_classification_beats_chance(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 16)
        result = classify_households(small_redd, config, "naive_bayes", n_folds=5)
        # Six balanced classes -> chance is ~0.17.
        assert result.f_measure > 0.3
        assert result.processing_seconds > 0.0
        assert result.n_instances > 10
        assert result.classifier == "naive_bayes"

    def test_result_dictionary_and_label(self, small_redd):
        config = DayVectorConfig("uniform", 3600.0, 4)
        result = classify_households(small_redd, config, "naive_bayes", n_folds=4)
        info = result.as_dict()
        assert info["encoding"] == "uniform"
        assert info["alphabet_size"] == 4
        assert "uniform 1h 4s / naive_bayes" == result.label

    def test_prebuilt_vectors_reused(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8)
        vectors = build_day_vectors(small_redd, config)
        a = classify_households(small_redd, config, "naive_bayes", n_folds=4,
                                vectors=vectors)
        b = classify_households(small_redd, config, "naive_bayes", n_folds=4,
                                vectors=vectors)
        assert a.f_measure == b.f_measure

    def test_folds_capped_by_instance_count(self, small_redd):
        # Only two houses with few days each: ask for more folds than instances.
        tiny = small_redd.subset([1, 2])
        config = DayVectorConfig("median", 3600.0, 4)
        result = classify_households(tiny, config, "naive_bayes", n_folds=10)
        assert result.n_folds <= 10

    def test_raw_configuration_works(self, small_redd):
        config = DayVectorConfig("raw", 3600.0)
        result = classify_households(small_redd, config, "j48", n_folds=4)
        assert 0.0 <= result.f_measure <= 1.0
