"""Releasable privacy primitives: suppression, noise, and the pinned measures.

``k_anonymize_counts`` / ``noisy_counts`` are the exact transforms the
store-native :class:`~repro.query.ops.GroupAggregateOperator` applies, so
the parity test here is the contract that an in-memory release path
(:func:`bucket_sizes` over decoded values) and the store-native path publish
identical aggregates.  ``value_obfuscation`` / ``reidentification_risk``
get pinned hand-checkable cases on top of the dataset-level suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    bucket_sizes,
    k_anonymize_counts,
    noisy_counts,
    reidentification_risk,
    value_obfuscation,
)
from repro.core import LookupTable
from repro.errors import ExperimentError


class TestKAnonymizeCounts:
    def test_suppresses_only_small_nonzero_cells(self):
        released, suppressed = k_anonymize_counts([0, 1, 4, 5, 120], k=5)
        np.testing.assert_array_equal(released, [0, 0, 0, 5, 120])
        np.testing.assert_array_equal(
            suppressed, [False, True, True, False, False]
        )

    def test_k_one_releases_everything(self):
        released, suppressed = k_anonymize_counts([0, 1, 2, 3], k=1)
        np.testing.assert_array_equal(released, [0, 1, 2, 3])
        assert not suppressed.any()

    def test_input_left_untouched(self):
        counts = np.array([1, 2, 3], dtype=np.int64)
        k_anonymize_counts(counts, k=10)
        np.testing.assert_array_equal(counts, [1, 2, 3])

    def test_invalid_k_rejected(self):
        with pytest.raises(ExperimentError, match="k must be"):
            k_anonymize_counts([1, 2], k=0)


class TestNoisyCounts:
    def test_deterministic_per_seed(self):
        counts = [10.0, 20.0, 0.0, 5.0]
        a = noisy_counts(counts, epsilon=1.0, seed=4)
        b = noisy_counts(counts, epsilon=1.0, seed=4)
        c = noisy_counts(counts, epsilon=1.0, seed=5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_clipped_at_zero(self):
        noised = noisy_counts(np.zeros(64), epsilon=0.5, seed=0)
        assert np.all(noised >= 0.0)

    def test_scale_shrinks_with_epsilon(self):
        counts = np.full(4096, 100.0)
        loose = noisy_counts(counts, epsilon=0.1, seed=1)
        tight = noisy_counts(counts, epsilon=10.0, seed=1)
        assert np.abs(tight - counts).mean() < np.abs(loose - counts).mean()

    def test_invalid_epsilon_rejected(self):
        for epsilon in (0.0, -1.0):
            with pytest.raises(ExperimentError, match="epsilon"):
                noisy_counts([1.0], epsilon=epsilon)


class TestPinnedObfuscation:
    def test_hand_checkable_two_symbol_table(self):
        # Separator at 1.0: values <= 1.0 map to symbol 0, above to 1.
        table = LookupTable.fit([1.0, 1.0, 3.0, 3.0], 2, method="median")
        report = value_obfuscation(table, [0.5, 1.0, 2.0, 3.0, 3.0])
        assert report.n_raw_distinct == 4
        assert report.n_symbolic_distinct == 2
        assert report.distinct_reduction == 2.0
        assert report.min_bucket_size == 2
        assert report.median_bucket_size == 2.5

    def test_bucket_sizes_pin(self):
        table = LookupTable.fit([1.0, 1.0, 3.0, 3.0], 2, method="median")
        counts = bucket_sizes(table, [0.5, 1.0, 2.0, 3.0, 3.0])
        words = table.alphabet.words
        assert counts[words[0]] == 2
        assert counts[words[1]] == 3

    def test_nan_values_ignored(self):
        table = LookupTable.fit([1.0, 2.0, 3.0, 4.0], 2, method="median")
        counts = bucket_sizes(table, [1.0, float("nan"), 4.0])
        assert sum(counts.values()) == 2


class TestPinnedReidentification:
    def test_attack_rate_is_deterministic(self, small_redd):
        # Risk is a probability and the attack is deterministic per seed.
        risk_a = reidentification_risk(small_redd)
        risk_b = reidentification_risk(small_redd)
        assert risk_a == risk_b
        assert 0.0 <= risk_a <= 1.0


class TestStoreNativeParity:
    """In-memory release path == store-native GroupAggregateOperator."""

    @pytest.fixture()
    def fleet(self, tmp_path, rng):
        from repro.store import write_fleet_store

        values = np.abs(rng.lognormal(4.2, 1.0, size=(8, 160)))
        store = write_fleet_store(
            tmp_path / "parity.rsym", values, alphabet_size=8,
            method="median", window=1, shared_table=True,
            sampling_interval=900.0,
        )
        return store

    def test_released_counts_agree_before_and_after_suppression(self, fleet):
        from repro.query import QueryEngine

        engine = QueryEngine(fleet)
        table = engine.table
        # In-memory path: decode the fleet, pool per-symbol bucket counts.
        decoded = fleet.decode()
        pooled = np.zeros(fleet.alphabet_size, dtype=np.int64)
        for row in decoded:
            counts = bucket_sizes(table, row)
            pooled += np.asarray(
                [counts[word] for word in table.alphabet.words],
                dtype=np.int64,
            )
        for k in (1, 3, 8):
            released, mask = k_anonymize_counts(pooled, k)
            report = engine.private_aggregate(k_anon=k)
            np.testing.assert_array_equal(report.symbol_counts, released)
            np.testing.assert_array_equal(report.suppressed, mask)
        # Noised release applies the identical transform chain.
        noised = engine.private_aggregate(k_anon=3, epsilon=1.0, seed=7)
        released, _ = k_anonymize_counts(pooled, 3)
        np.testing.assert_array_equal(
            noised.symbol_counts,
            noisy_counts(released.astype(np.float64), 1.0, seed=7),
        )
