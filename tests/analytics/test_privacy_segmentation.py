"""Unit tests for repro.analytics.privacy and repro.analytics.segmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    DayVectorConfig,
    KMeans,
    bucket_sizes,
    reidentification_risk,
    segment_customers,
    symbol_histogram_features,
    value_obfuscation,
)
from repro.core import BinaryAlphabet, LookupTable, SymbolicEncoder
from repro.datasets import generate_smartstar
from repro.errors import ExperimentError


@pytest.fixture()
def table8(house1_series):
    return LookupTable.fit(house1_series, 8, method="median")


class TestObfuscation:
    def test_bucket_sizes_cover_all_readings(self, table8, house1_series):
        counts = bucket_sizes(table8, house1_series.values)
        assert sum(counts.values()) == len(house1_series)
        assert set(counts) == set(table8.alphabet.words)

    def test_obfuscation_report_fields(self, table8, house1_series):
        report = value_obfuscation(table8, house1_series.values)
        assert report.n_symbolic_distinct <= 8
        assert report.n_raw_distinct > report.n_symbolic_distinct
        assert report.distinct_reduction > 1.0
        assert report.mean_absolute_reconstruction_error > 0.0
        assert report.min_bucket_size >= 1

    def test_larger_alphabet_reduces_information_loss(self, house1_series):
        coarse = LookupTable.fit(house1_series, 2, method="median")
        fine = LookupTable.fit(house1_series, 16, method="median")
        loss_coarse = value_obfuscation(coarse, house1_series.values)
        loss_fine = value_obfuscation(fine, house1_series.values)
        assert (
            loss_fine.mean_absolute_reconstruction_error
            < loss_coarse.mean_absolute_reconstruction_error
        )

    def test_empty_values_rejected(self, table8):
        with pytest.raises(ExperimentError):
            value_obfuscation(table8, [])


class TestReidentification:
    def test_attack_beats_random_guessing(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8)
        risk = reidentification_risk(small_redd, config)
        assert 0.0 <= risk <= 1.0
        assert risk > 1.0 / len(small_redd)

    def test_default_config_used_when_omitted(self, small_redd):
        assert 0.0 <= reidentification_risk(small_redd) <= 1.0


class TestKMeans:
    def test_recovers_well_separated_blobs(self, rng):
        blobs = np.vstack([
            rng.normal(0.0, 0.2, size=(30, 2)),
            rng.normal(5.0, 0.2, size=(30, 2)),
            rng.normal([0.0, 8.0], 0.2, size=(30, 2)),
        ])
        model = KMeans(n_clusters=3, seed=1)
        labels = model.fit_predict(blobs)
        # Each blob should be internally homogeneous.
        for start in (0, 30, 60):
            block = labels[start:start + 30]
            assert (block == np.bincount(block).argmax()).mean() > 0.95

    def test_predict_before_fit_rejected(self, rng):
        with pytest.raises(ExperimentError):
            KMeans().predict(rng.normal(size=(3, 2)))

    def test_too_few_rows_rejected(self, rng):
        with pytest.raises(ExperimentError):
            KMeans(n_clusters=5).fit(rng.normal(size=(3, 2)))

    def test_inertia_decreases_with_more_clusters(self, rng):
        data = rng.normal(size=(60, 3))
        inertia2 = KMeans(n_clusters=2, seed=0).fit(data).inertia_
        inertia6 = KMeans(n_clusters=6, seed=0).fit(data).inertia_
        assert inertia6 < inertia2


class TestCustomerSegmentation:
    def test_segment_redd_households(self, small_redd):
        result = segment_customers(small_redd, n_clusters=3, alphabet_size=8)
        assert set(result.assignments) == set(small_redd.house_ids)
        assert set(result.assignments.values()) <= {0, 1, 2}
        members = result.cluster_members()
        assert sum(len(v) for v in members.values()) == len(small_redd)

    def test_daily_profile_features_shape(self, small_redd):
        encoder = SymbolicEncoder(alphabet_size=8, method="median",
                                  aggregation_seconds=3600.0)
        encoded = {
            house.house_id: encoder.fit_encode(house.mains) for house in small_redd
        }
        features, house_ids = symbol_histogram_features(encoded)
        assert features.shape == (6, 8)
        assert np.allclose(features.sum(axis=1), 1.0)
        assert house_ids == small_redd.house_ids

    def test_population_scale_segmentation(self):
        population = generate_smartstar(n_houses=40, wide_interval=900.0, seed=3)
        result = segment_customers(population, n_clusters=4, features="daily_profile")
        assert len(result.assignments) == 40
        assert len(set(result.assignments.values())) > 1

    def test_unknown_feature_type_rejected(self, small_redd):
        with pytest.raises(ExperimentError):
            segment_customers(small_redd, features="wavelet")
