"""Segmented stores: parity with single files, durability, recovery, ingest."""

from __future__ import annotations

import hashlib
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.streaming import OnlineEncoder
from repro.errors import CorruptStoreError, StoreError, StoreIntegrityWarning
from repro.query import QueryEngine, write_query_index
from repro.query.engine import QueryConfig
from repro.store import (
    RLE,
    FleetIngestor,
    SegmentedStore,
    SymbolStore,
    append_segment,
    create_segmented_store,
    faults,
    open_store,
    scrub_store,
    write_fleet_store,
    write_segmented_fleet,
)


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(71)
    base = np.abs(rng.normal(2.0, 0.8, size=(14, 96 * 4)))
    base[:, 120:260] = 0.4  # standby plateau so RLE has real runs
    return base


@pytest.fixture(scope="module")
def seg_dir(tmp_path_factory, fleet_values):
    directory = tmp_path_factory.mktemp("segments") / "fleet.rsyms"
    write_segmented_fleet(
        directory, fleet_values, alphabet_size=8, window=4,
        sampling_interval=900, segment_windows=24,
    ).close()
    return directory


@pytest.fixture(scope="module")
def ref_store(tmp_path_factory, fleet_values):
    path = tmp_path_factory.mktemp("segments-ref") / "ref.rsym"
    write_fleet_store(
        path, fleet_values, alphabet_size=8, window=4, sampling_interval=900,
    ).close()
    return path


class TestParity:
    """A segmented store reads exactly like the equivalent single file."""

    def test_matrix_counts_indices(self, seg_dir, ref_store):
        with open_store(seg_dir) as seg, open_store(ref_store) as ref:
            assert seg.n_segments == 4
            assert np.array_equal(seg.counts, ref.counts)
            assert np.array_equal(seg.matrix(), ref.matrix())
            assert np.array_equal(
                seg.matrix(meters=[3, 9], window_range=(10, 55)),
                ref.matrix(meters=[3, 9], window_range=(10, 55)),
            )
            assert np.array_equal(seg.indices(5, 13, 77), ref.indices(5, 13, 77))

    def test_runs_merge_across_boundaries(self, seg_dir, ref_store):
        with open_store(seg_dir) as seg, open_store(ref_store) as ref:
            for meter in (0, 7, 13):
                sv, sl = seg.runs(meter)
                rv, rl = ref.runs(meter)
                assert np.array_equal(sv, rv)
                assert np.array_equal(sl, rl)
            assert np.array_equal(
                seg.run_count_per_column(), ref.run_count_per_column()
            )

    def test_decode_and_tables(self, seg_dir, ref_store):
        with open_store(seg_dir) as seg, open_store(ref_store) as ref:
            assert seg.shared_table == ref.shared_table
            assert np.allclose(seg.decode(), ref.decode())
            assert np.allclose(
                seg.decode(day_range=(1, 3)), ref.decode(day_range=(1, 3))
            )

    def test_verify_clean(self, seg_dir):
        with open_store(seg_dir, verify="eager") as seg:
            report = seg.verify(strict=True)
            assert report["ok"] and seg.checksummed

    def test_rle_layout_parity(self, tmp_path, fleet_values):
        seg = write_segmented_fleet(
            tmp_path / "rle.rsyms", fleet_values, alphabet_size=4, window=8,
            layout=RLE, segment_windows=17,
        )
        ref = write_fleet_store(
            tmp_path / "rle.rsym", fleet_values, alphabet_size=4, window=8,
            layout=RLE,
        )
        assert seg.layout == RLE
        assert np.array_equal(seg.matrix(), ref.matrix())
        assert np.array_equal(seg.run_counts, ref.run_counts)
        sv, sl = seg.runs(9)
        rv, rl = ref.runs(9)
        assert np.array_equal(sv, rv) and np.array_equal(sl, rl)
        seg.close(), ref.close()


class TestDeterminism:
    def _digest(self, directory: Path) -> str:
        digest = hashlib.sha256()
        for path in sorted(directory.glob("seg-*.rsym")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        return digest.hexdigest()

    @pytest.mark.parametrize("layout", ["dense", "rle"])
    def test_segments_byte_identical_for_any_worker_count(
        self, tmp_path, fleet_values, layout
    ):
        digests = set()
        for workers in (1, 2, 4):
            directory = tmp_path / f"w{workers}.rsyms"
            write_segmented_fleet(
                directory, fleet_values, alphabet_size=8, window=4,
                layout=layout, segment_windows=24, workers=workers,
            ).close()
            digests.add(self._digest(directory))
        assert len(digests) == 1


class TestAppend:
    def test_append_bumps_generation_and_extends_columns(self, tmp_path):
        directory = tmp_path / "grow.rsyms"
        create_segmented_store(directory, alphabet_size=4, ids=[0, 1, 2]).close()
        rng = np.random.default_rng(4)
        first = rng.integers(0, 4, size=(3, 48))
        second = rng.integers(0, 4, size=(3, 24))
        append_segment(directory, first)
        append_segment(directory, second)
        with open_store(directory) as store:
            assert store.generation == 3
            assert store.n_segments == 2
            assert np.array_equal(
                store.matrix(), np.hstack([first, second])
            )
            assert [r.name for r in store.records] == [
                "seg-000000.rsym", "seg-000001.rsym",
            ]
            assert [r.start_window for r in store.records] == [0, 48]

    def test_append_rejects_wrong_shape(self, tmp_path):
        directory = tmp_path / "bad.rsyms"
        create_segmented_store(directory, alphabet_size=4, ids=[0, 1]).close()
        with pytest.raises(StoreError):
            append_segment(directory, np.zeros((3, 8), dtype=np.int64))

    def test_create_refuses_existing_store(self, seg_dir):
        with pytest.raises(StoreError):
            create_segmented_store(seg_dir, alphabet_size=8)

    def test_open_store_dispatches_on_path_kind(self, seg_dir, ref_store):
        with open_store(seg_dir) as seg:
            assert isinstance(seg, SegmentedStore)
        with open_store(ref_store) as ref:
            assert isinstance(ref, SymbolStore)


class TestQuarantineAndRecovery:
    @pytest.fixture()
    def damaged(self, tmp_path, fleet_values):
        directory = tmp_path / "damaged.rsyms"
        write_segmented_fleet(
            directory, fleet_values, alphabet_size=8, window=4,
            sampling_interval=900, segment_windows=24,
        ).close()
        victim = sorted(directory.glob("seg-*.rsym"))[1]
        faults.flip_bit(victim, 60)
        return directory, victim

    def test_bad_segment_quarantined_not_fatal(self, damaged):
        directory, victim = damaged
        with pytest.warns(StoreIntegrityWarning):
            store = SegmentedStore.open(directory, verify="eager")
        assert [name for name, _ in store.quarantined] == [victim.name]
        assert store.n_segments == 3
        # Healthy segments still serve exact data.
        assert store.matrix().shape[1] == 3 * 24
        store.close()

    def test_strict_open_raises(self, damaged):
        directory, _ = damaged
        with pytest.raises(CorruptStoreError):
            SegmentedStore.open(directory, verify="eager", strict=True)

    def test_scrub_reports_then_repairs(self, damaged):
        directory, victim = damaged
        report = scrub_store(directory)
        assert not report.ok
        assert [name for name, _ in report.corrupt_segments] == [victim.name]
        repaired = scrub_store(directory, repair=True)
        assert repaired.quarantined == [victim.name]
        assert repaired.new_generation == report.generation + 1
        assert (directory / "quarantine" / victim.name).exists()
        # Post-repair opens are warning-free and clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = SegmentedStore.open(directory, verify="eager")
        assert store.quarantined == []
        store.close()
        assert scrub_store(directory).ok

    def test_manifest_rollback_to_previous_generation(self, tmp_path, fleet_values):
        directory = tmp_path / "rollback.rsyms"
        write_segmented_fleet(
            directory, fleet_values[:4], alphabet_size=8, window=4,
            segment_windows=48,
        ).close()
        before = open_store(directory)
        newest = sorted(directory.glob("manifest-*.json"))[-1]
        faults.flip_bit(newest, 25)
        with pytest.warns(StoreIntegrityWarning):
            rolled = SegmentedStore.open(directory)
        assert rolled.generation == before.generation - 1
        before.close(), rolled.close()
        repaired = scrub_store(directory, repair=True)
        assert newest.name in repaired.invalid_manifests
        assert not newest.exists()

    def test_all_manifests_damaged_raises(self, tmp_path):
        directory = tmp_path / "dead.rsyms"
        create_segmented_store(directory, alphabet_size=4, ids=[0]).close()
        for manifest in directory.glob("manifest-*.json"):
            faults.corrupt_tail(manifest, 12)
        with pytest.raises(CorruptStoreError), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            SegmentedStore.open(directory)

    def test_orphan_gc_after_crash_before_manifest(self, tmp_path):
        directory = tmp_path / "orphan.rsyms"
        create_segmented_store(directory, alphabet_size=4, ids=[0, 1]).close()
        append_segment(directory, np.ones((2, 16), dtype=np.int64))
        before = open_store(directory)
        with pytest.raises(faults.InjectedCrash):
            with faults.inject(faults.FaultPlan("segments.before_manifest")):
                append_segment(directory, np.zeros((2, 16), dtype=np.int64))
        # Old snapshot fully intact, new segment an orphan.
        after = open_store(directory)
        assert after.generation == before.generation
        assert np.array_equal(after.matrix(), before.matrix())
        before.close(), after.close()
        report = scrub_store(directory)
        assert report.orphan_segments == ["seg-000001.rsym"]
        scrub_store(directory, repair=True)
        assert scrub_store(directory).ok
        # The next append atomically reuses the sequence slot.
        append_segment(directory, np.zeros((2, 16), dtype=np.int64))
        with open_store(directory) as grown:
            assert grown.n_segments == 2

    def test_keep_generations_prunes_manifests(self, tmp_path):
        directory = tmp_path / "prune.rsyms"
        create_segmented_store(directory, alphabet_size=4, ids=[0]).close()
        for _ in range(4):
            append_segment(directory, np.zeros((1, 8), dtype=np.int64))
        assert len(list(directory.glob("manifest-*.json"))) == 5
        scrub_store(directory, repair=True, keep_generations=2)
        assert len(list(directory.glob("manifest-*.json"))) == 2
        with open_store(directory) as store:
            assert store.n_segments == 4

    def test_scrub_single_file_and_stale_temp(self, tmp_path, fleet_values):
        path = tmp_path / "single.rsym"
        write_fleet_store(path, fleet_values[:3], alphabet_size=8, window=4).close()
        stale = path.with_name(path.name + ".tmp")
        stale.write_bytes(b"leftover")
        report = scrub_store(path)
        assert report.stale_temps == [stale.name]
        scrub_store(path, repair=True)
        assert not stale.exists()
        assert scrub_store(path).ok


class TestQueryEngineOnSegments:
    def test_knn_match_aggregate_parity(self, seg_dir, ref_store):
        with QueryEngine.open(seg_dir) as seg, QueryEngine.open(ref_store) as ref:
            query = ref.store.decode(meters=[3])[0]
            for workers in (1, 3):
                config = QueryConfig(k=5, workers=workers)
                a, b = seg.knn(query, config), ref.knn(query, config)
                assert a.ids == b.ids
                assert np.allclose(a.distances, b.distances)
            a = seg.match("0 1{2,} 2", workers=3)
            b = ref.match("0 1{2,} 2", workers=1)
            assert a.spans == b.spans
            assert seg.aggregate(level=1).rows() == ref.aggregate(level=1).rows()

    def test_sidecar_lives_inside_directory(self, seg_dir):
        with open_store(seg_dir) as store:
            path = write_query_index(store, workers=2)
        assert path == seg_dir / "index.rsymx"
        with QueryEngine.open(seg_dir) as engine:
            assert engine._index is not None

    def test_stale_sidecar_degrades_with_warning(self, tmp_path, fleet_values):
        directory = tmp_path / "stale.rsyms"
        store = write_segmented_fleet(
            directory, fleet_values, alphabet_size=8, window=4,
            segment_windows=96,
        )
        write_query_index(store)
        append_segment(
            directory, store.matrix(window_range=(0, 24)),
            tables=store.shared_table,
        )
        store.close()
        with pytest.warns(StoreIntegrityWarning, match="stale"):
            engine = QueryEngine.open(directory)
        assert engine._index is None
        query = engine.store.decode(meters=[0])[0]
        assert len(engine.knn(query, QueryConfig(k=3)).ids[0]) == 3
        engine.close()
        # Satellite: the degrade warning is deduplicated — a monitoring loop
        # reopening the same store does not warn again for the same sidecar.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened = QueryEngine.open(directory)
        assert reopened._index is None
        assert not [
            w for w in caught if issubclass(w.category, StoreIntegrityWarning)
        ]
        reopened.close()


class TestFleetIngestor:
    WINDOW, BOOT = 900.0, 7200.0

    @pytest.fixture(scope="class")
    def stream(self):
        rng = np.random.default_rng(13)
        n = 4 * 96
        ts = np.arange(n) * 900.0
        vals = np.abs(rng.normal(2.0, 0.5, size=(5, n)))
        vals[:, n // 2:] += 6.0  # level shift triggers drift rebuilds
        return ts, vals

    def _reference_indices(self, ts, row, drift=0.0):
        encoder = OnlineEncoder(
            alphabet_size=8, window_seconds=self.WINDOW,
            bootstrap_seconds=self.BOOT, drift_threshold=drift,
        )
        if drift:
            for t, v in zip(ts, row):
                encoder.push(float(t), float(v))
        else:
            encoder.push_chunk(ts, row)
        encoder.flush()
        return np.asarray([w.symbol.index for w in encoder.emitted]), encoder

    def test_chunked_ingest_matches_online_encoder(self, tmp_path, stream):
        ts, vals = stream
        ingestor = FleetIngestor(
            tmp_path / "ingest.rsyms", meter_ids=list(range(5)),
            alphabet_size=8, window_seconds=self.WINDOW,
            bootstrap_seconds=self.BOOT, segment_windows=48,
        )
        for lo in range(0, ts.size, 100):
            ingestor.push_chunk(ts[lo:lo + 100], vals[:, lo:lo + 100])
        store = ingestor.finalize()
        assert store.n_segments >= 2
        for meter in range(5):
            want, _ = self._reference_indices(ts, vals[meter])
            assert np.array_equal(store.indices(meter), want)
        assert store.verify(strict=True)["ok"]
        store.close()

    def test_drift_rebuild_cuts_segment_with_new_table(self, tmp_path, stream):
        ts, vals = stream
        ingestor = FleetIngestor(
            tmp_path / "drift.rsyms", meter_ids=list(range(5)),
            alphabet_size=8, window_seconds=self.WINDOW,
            bootstrap_seconds=self.BOOT, drift_threshold=0.5,
        )
        ingestor.push_chunk(ts, vals)
        store = ingestor.finalize()
        assert "drift" in [record.reason for record in store.records]
        for meter in range(5):
            want, encoder = self._reference_indices(ts, vals[meter], drift=0.5)
            assert np.array_equal(store.indices(meter), want)
            assert len(encoder.table_updates) >= 2
        # Per-epoch tables survive per segment: decode uses each epoch's own.
        epochs = {
            segment.tables if isinstance(segment.tables, tuple)
            else id(segment.shared_table) for segment in store.segments
        }
        assert len(store.segments) >= 2
        decoded = store.decode()
        assert decoded.shape == (5, int(store.counts[0]))
        store.close()


class TestCLI:
    def test_store_info_verify_and_scrub(self, tmp_path, fleet_values, capsys):
        directory = tmp_path / "cli.rsyms"
        write_segmented_fleet(
            directory, fleet_values, alphabet_size=8, window=4,
            sampling_interval=900, segment_windows=48,
        ).close()
        assert main(["store-info", str(directory), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "segments:" in out and "checksums: ok" in out
        assert main(["store", "scrub", str(directory)]) == 0
        assert "status: clean" in capsys.readouterr().out

        victim = sorted(directory.glob("seg-*.rsym"))[0]
        faults.flip_bit(victim, 55)
        with pytest.warns(StoreIntegrityWarning):
            assert main(["store-info", str(directory), "--verify"]) == 1
        assert "quarantined" in capsys.readouterr().out
        assert main(["store", "scrub", str(directory)]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert main(["store", "scrub", str(directory), "--repair"]) == 0
        assert "committed generation" in capsys.readouterr().out
        assert main(["store", "scrub", str(directory)]) == 0

    def test_single_file_verify(self, ref_store, capsys):
        assert main(["store-info", str(ref_store), "--verify"]) == 0
        assert "checksums: ok" in capsys.readouterr().out

    def test_compression_reads_segmented_store(self, seg_dir, capsys):
        assert main([
            "compression", "--alphabet", "8", "--window", "3600",
            "--sampling", "900", "--store", str(seg_dir),
        ]) == 0
        assert "measured_bits_per_day" in capsys.readouterr().out
