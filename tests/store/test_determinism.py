"""Sharded store writes are byte-identical for every worker count."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import write_fleet_store

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(23)
    values = np.abs(rng.normal(300.0, 120.0, size=(23, 960)))
    values[:, 200:500] = 90.0  # a shared standby plateau exercises RLE runs
    return values


@pytest.mark.parametrize("layout", ["dense", "rle"])
@pytest.mark.parametrize("shared", [True, False], ids=["shared", "per-meter"])
def test_store_bytes_identical_across_workers(tmp_path, fleet_values, layout, shared):
    blobs = {}
    for workers in WORKER_COUNTS:
        path = tmp_path / f"{layout}_{shared}_{workers}.rsym"
        write_fleet_store(
            path, fleet_values, alphabet_size=8, window=4,
            shared_table=shared, layout=layout, workers=workers,
            sampling_interval=60.0,
        ).close()
        blobs[workers] = path.read_bytes()
    assert blobs[2] == blobs[1]
    assert blobs[4] == blobs[1]


def test_parallel_path_respects_shard_meters(tmp_path, fleet_values):
    # Regression: workers > 1 used to make one giant shard per worker; the
    # shard_meters memory bound must hold (and not change the bytes).
    reference = tmp_path / "ref.rsym"
    bounded = tmp_path / "bounded.rsym"
    write_fleet_store(reference, fleet_values, alphabet_size=8, window=4).close()
    write_fleet_store(
        bounded, fleet_values, alphabet_size=8, window=4,
        workers=2, shard_meters=5,
    ).close()
    assert reference.read_bytes() == bounded.read_bytes()


def test_store_bytes_identical_across_shard_sizes(tmp_path, fleet_values):
    # The serial writer's shard granularity is a memory knob, not a format
    # knob: any shard size must produce the same file.
    blobs = []
    for shard_meters in (1, 5, 1000):
        path = tmp_path / f"shard_{shard_meters}.rsym"
        write_fleet_store(
            path, fleet_values, alphabet_size=8, window=4,
            shared_table=False, shard_meters=shard_meters,
        ).close()
        blobs.append(path.read_bytes())
    assert blobs[0] == blobs[1] == blobs[2]


def test_workers_zero_means_one_per_cpu(tmp_path, fleet_values):
    serial = tmp_path / "serial.rsym"
    auto = tmp_path / "auto.rsym"
    write_fleet_store(serial, fleet_values, alphabet_size=8, window=4).close()
    write_fleet_store(
        auto, fleet_values, alphabet_size=8, window=4, workers=0
    ).close()
    assert serial.read_bytes() == auto.read_bytes()
