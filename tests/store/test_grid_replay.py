"""Replaying experiments from packed stores reproduces the in-memory numbers.

Two chains are pinned here:

* the Table 1 grid run through :class:`GridRunner` with ``store_dir`` set —
  first writing the day-vector stores, then replaying from them cold — must
  produce results bit-identical to the plain in-memory run;
* the PR 2 cross-validation goldens (generated from the *pre-vectorization*
  code) must survive a store round-trip: symbols → packed bytes on disk →
  ``MLDataset`` → fold-stratified cross-validation, same numbers to the bit.
"""

from __future__ import annotations

import json
from functools import partial

import numpy as np
import pytest

from repro.analytics.vectors import DayVectorConfig, build_day_vectors
from repro.experiments import ExperimentGrid, reproduce_table1
from repro.experiments.runner import GridRunner
from repro.ml import (
    DecisionTreeClassifier,
    NaiveBayesClassifier,
    RandomForestClassifier,
)
from repro.ml.crossval import cross_validate
from repro.store import SymbolStore, day_vector_store_path, store_from_ml_dataset
from repro.datasets import generate_redd
from repro.errors import StoreError

from ..ml._parity_cases import GOLDEN_DIR, classification_cases

GOLDEN_CROSSVAL_FACTORIES = {
    "naive_bayes": NaiveBayesClassifier,
    "j48": DecisionTreeClassifier,
    "random_forest": partial(RandomForestClassifier, n_trees=8, random_state=1),
}


@pytest.fixture(scope="module")
def grid_dataset():
    return generate_redd(days=5, sampling_interval=300.0, seed=3)


@pytest.fixture(scope="module")
def serial_results(grid_dataset):
    grid = ExperimentGrid.quick()
    return GridRunner(grid_dataset, n_folds=5, seed=0).run_grid(
        grid, ["naive_bayes", "j48"]
    )


def _assert_results_equal(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.config == b.config
        assert a.classifier == b.classifier
        assert a.f_measure == b.f_measure
        assert a.accuracy == b.accuracy
        assert a.n_instances == b.n_instances


class TestGridFromStores:
    def test_grid_writes_then_replays_from_stores(
        self, tmp_path, grid_dataset, serial_results
    ):
        grid = ExperimentGrid.quick()
        # First run: cold store directory — every symbolic config is written.
        writer_runner = GridRunner(grid_dataset, n_folds=5, seed=0,
                                   store_dir=tmp_path)
        _assert_results_equal(
            serial_results, writer_runner.run_grid(grid, ["naive_bayes", "j48"])
        )
        written = sorted(tmp_path.glob("dayvec_*.rsym"))
        assert len(written) == len(grid.symbolic_configs())
        # Second run: a fresh runner replays the grid entirely from disk.
        reader_runner = GridRunner(grid_dataset, n_folds=5, seed=0,
                                   store_dir=tmp_path)
        _assert_results_equal(
            serial_results, reader_runner.run_grid(grid, ["naive_bayes", "j48"])
        )

    def test_reproduce_table1_from_store_dir(self, tmp_path, grid_dataset):
        grid = ExperimentGrid(
            methods=("median",), aggregations=(3600.0,), alphabet_sizes=(4,)
        )
        plain = reproduce_table1(
            grid_dataset, grid=grid, classifiers=("naive_bayes",), n_folds=5
        )
        stored = reproduce_table1(
            grid_dataset, grid=grid, classifiers=("naive_bayes",), n_folds=5,
            store_dir=tmp_path,
        )
        replayed = reproduce_table1(
            grid_dataset, grid=grid, classifiers=("naive_bayes",), n_folds=5,
            store_dir=tmp_path,
        )
        assert plain.matrix() == stored.matrix() == replayed.matrix()

    def test_parallel_grid_honours_store_dir(
        self, tmp_path, grid_dataset, serial_results
    ):
        # Chunking is one configuration per task, so each store file has
        # exactly one writer even with a process pool.
        grid = ExperimentGrid.quick()
        runner = GridRunner(grid_dataset, n_folds=5, seed=0, workers=2,
                            store_dir=tmp_path)
        try:
            _assert_results_equal(
                serial_results, runner.run_grid(grid, ["naive_bayes", "j48"])
            )
        finally:
            runner.close()
        written = sorted(tmp_path.glob("dayvec_*.rsym"))
        assert len(written) == len(grid.symbolic_configs())
        # A fresh serial runner replays the worker-written stores exactly.
        reader = GridRunner(grid_dataset, n_folds=5, seed=0, store_dir=tmp_path)
        _assert_results_equal(
            serial_results, reader.run_grid(grid, ["naive_bayes", "j48"])
        )

    def test_store_matches_build_day_vectors_exactly(self, tmp_path, grid_dataset):
        config = DayVectorConfig(encoding="median", alphabet_size=4)
        runner = GridRunner(grid_dataset, n_folds=5, seed=0, store_dir=tmp_path)
        from_store = runner.vectors_for(config)
        in_memory = build_day_vectors(grid_dataset, config)
        assert from_store.attributes == in_memory.attributes
        assert from_store.class_names == in_memory.class_names
        np.testing.assert_array_equal(from_store.X, in_memory.X)
        np.testing.assert_array_equal(from_store.y, in_memory.y)

    def test_mismatched_config_fails_loudly(self, tmp_path, grid_dataset):
        from repro.store import load_day_vectors, write_day_vector_store

        config = DayVectorConfig(encoding="median", alphabet_size=4)
        other = DayVectorConfig(encoding="median", alphabet_size=4, min_hours=1.0)
        path = day_vector_store_path(tmp_path, config)
        write_day_vector_store(path, grid_dataset, config)
        with pytest.raises(StoreError):
            load_day_vectors(path, config=other)


class TestVectorMemoization:
    def test_cache_key_is_the_full_config(self, grid_dataset):
        # Regression: the cache used to key on config.label(), which omits
        # min_hours/bootstrap_days — two different encodings could collide.
        runner = GridRunner(grid_dataset, n_folds=5, seed=0)
        strict = DayVectorConfig(encoding="median", alphabet_size=4)
        lenient = DayVectorConfig(
            encoding="median", alphabet_size=4, min_hours=1.0
        )
        assert strict.label() == lenient.label()
        first = runner.vectors_for(strict)
        second = runner.vectors_for(lenient)
        assert len(second) > len(first)  # lenient keeps more days

    def test_equal_configs_share_one_dataset(self, grid_dataset):
        runner = GridRunner(grid_dataset, n_folds=5, seed=0)
        config = DayVectorConfig(encoding="median", alphabet_size=4)
        same = DayVectorConfig(encoding="median", alphabet_size=4)
        assert runner.vectors_for(config) is runner.vectors_for(same)


class TestGoldenReplay:
    @pytest.mark.parametrize("model_name", sorted(GOLDEN_CROSSVAL_FACTORIES))
    def test_crossval_goldens_survive_store_roundtrip(self, tmp_path, model_name):
        golden = json.loads((GOLDEN_DIR / "crossval.json").read_text())
        golden = golden["day_vectors"]["models"][model_name]
        dataset = classification_cases()["day_vectors"]
        path = store_from_ml_dataset(tmp_path / "day_vectors.rsym", dataset)
        with SymbolStore.open(path) as store:
            replayed = store.day_vectors()
        result = cross_validate(
            GOLDEN_CROSSVAL_FACTORIES[model_name], replayed, n_folds=10, seed=0
        )
        assert result.f_measure == golden["f_measure"]
        assert result.accuracy == golden["accuracy"]
        assert result.fold_f_measures == golden["fold_f_measures"]
