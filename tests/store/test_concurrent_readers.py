"""Concurrent readers vs. writers: generation isolation under real threads.

The store's concurrency contract: a reader holds the snapshot it opened —
bit-identical reads for as long as it keeps the handle — while writers
``append_segment`` new generations and ``scrub_store`` prunes old ones
underneath it.  New readers see each newly committed generation, whole or
not at all.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.store import (
    SegmentedStore,
    append_segment,
    create_segmented_store,
    open_store,
    scrub_store,
)


def _indices(seed: int, rows: int = 6, windows: int = 48) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 8, size=(rows, windows))


@pytest.fixture()
def store_dir(tmp_path):
    directory = tmp_path / "shared.rsyms"
    create_segmented_store(
        directory, alphabet_size=8, ids=list(range(6))
    ).close()
    append_segment(directory, _indices(0))
    return directory


class TestConcurrentReaders:
    def test_reader_pinned_to_its_generation_while_writer_appends(
        self, store_dir
    ):
        reader = SegmentedStore.open(store_dir)
        before = reader.matrix().copy()
        generation = reader.generation

        append_segment(store_dir, _indices(1), reason="writer-1")
        append_segment(store_dir, _indices(2), reason="writer-2")

        # The open snapshot still serves its own generation, byte for byte.
        assert reader.generation == generation
        assert np.array_equal(reader.matrix(), before)
        reader.close()

        # A fresh open sees everything the writers committed.
        with open_store(store_dir) as fresh:
            assert fresh.generation == generation + 2
            assert fresh.matrix().shape[1] == before.shape[1] + 2 * 48

    def test_hammered_readers_never_see_torn_state(self, store_dir):
        """8 reader threads loop open→read→verify while a writer commits
        10 generations and a scrubber GCs: every read is internally
        consistent (windows are whole multiples of the segment size) and
        every observed generation's prefix matches the original bytes."""
        baseline = {}
        with open_store(store_dir) as store:
            baseline["windows"] = store.matrix().shape[1]
            baseline["matrix"] = store.matrix().copy()
        stop = threading.Event()
        failures: list = []

        def read_loop() -> None:
            try:
                while not stop.is_set():
                    with open_store(store_dir) as store:
                        matrix = store.matrix()
                        windows = matrix.shape[1]
                        # Whole generations only: never a torn append.
                        assert (windows - baseline["windows"]) % 48 == 0
                        # The first generation's bytes never change.
                        assert np.array_equal(
                            matrix[:, : baseline["windows"]],
                            baseline["matrix"],
                        )
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        readers = [threading.Thread(target=read_loop) for _ in range(8)]
        for t in readers:
            t.start()
        try:
            for k in range(10):
                append_segment(store_dir, _indices(10 + k),
                               reason=f"gen-{k}")
                if k % 3 == 2:
                    # GC old manifests while readers hold open snapshots.
                    scrub_store(store_dir, repair=True, keep_generations=2)
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=30.0)
        assert not any(t.is_alive() for t in readers), "hung reader"
        assert not failures, f"torn read: {failures[:1]}"

        with open_store(store_dir) as store:
            assert store.matrix().shape[1] == baseline["windows"] + 10 * 48
        assert scrub_store(store_dir).ok

    def test_reader_survives_scrub_pruning_its_manifest(self, store_dir):
        """keep_generations may delete the manifest a reader opened from;
        its mmap'd segments stay alive and bit-identical."""
        append_segment(store_dir, _indices(3))
        reader = SegmentedStore.open(store_dir)
        before = reader.matrix().copy()

        for k in range(4):
            append_segment(store_dir, _indices(20 + k))
        scrub_store(store_dir, repair=True, keep_generations=1)

        assert np.array_equal(reader.matrix(), before)
        reader.close()
