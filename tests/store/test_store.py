"""SymbolStore round-trips: bit-identical to the in-memory fleet path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionModel, LookupTable
from repro.errors import StoreError
from repro.pipeline import FleetEncoder
from repro.store import (
    RLE,
    SymbolStore,
    SymbolStoreWriter,
    store_from_ml_dataset,
    write_fleet_store,
)

from ..ml._parity_cases import day_vector_dataset


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(17)
    # Standby plateaus interleaved with noisy activity, so RLE has real runs.
    base = np.abs(rng.normal(300.0, 120.0, size=(19, 960)))
    base[:, 100:400] = 80.0
    return base


@pytest.fixture(scope="module", params=["dense", "rle"])
def layout(request):
    return request.param


@pytest.fixture(scope="module", params=[True, False], ids=["shared", "per-meter"])
def shared(request):
    return request.param


@pytest.fixture(scope="module")
def reference(fleet_values, shared):
    encoder = FleetEncoder(alphabet_size=8, window=4, shared_table=shared)
    indices = encoder.fit_encode(fleet_values)
    return encoder, indices


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, fleet_values, layout, shared):
    path = tmp_path_factory.mktemp("stores") / f"{layout}_{shared}.rsym"
    write_fleet_store(
        path, fleet_values, alphabet_size=8, window=4, shared_table=shared,
        layout=layout, sampling_interval=60.0,
    ).close()
    return path


class TestFleetParity:
    def test_matrix_bit_identical_to_fleet_encoder(self, store_path, reference):
        _, indices = reference
        with SymbolStore.open(store_path) as store:
            np.testing.assert_array_equal(store.matrix(), indices)

    def test_decode_bit_identical_to_fleet_encoder(self, store_path, reference):
        encoder, indices = reference
        with SymbolStore.open(store_path) as store:
            np.testing.assert_array_equal(store.decode(), encoder.decode(indices))

    def test_any_meter_slice_matches(self, store_path, reference):
        _, indices = reference
        with SymbolStore.open(store_path) as store:
            for meter in (0, 7, 18):
                np.testing.assert_array_equal(
                    store.indices(meter), indices[meter]
                )
                np.testing.assert_array_equal(
                    store.indices(meter, 13, 101), indices[meter, 13:101]
                )

    def test_meter_day_slice_decodes_identically(self, store_path, reference):
        encoder, indices = reference
        with SymbolStore.open(store_path) as store:
            per_day = store.metadata["windows_per_day"]  # 60 s * 4 = 240 s windows
            decoded = store.decode(meters=[3, 11], day_range=(0, 1))
            full = encoder.decode(indices)
            np.testing.assert_array_equal(decoded, full[[3, 11], :per_day])

    def test_mmap_and_in_memory_reads_agree(self, store_path):
        with SymbolStore.open(store_path, mmap=True) as mapped, \
                SymbolStore.open(store_path, mmap=False) as in_memory:
            np.testing.assert_array_equal(mapped.matrix(), in_memory.matrix())
            np.testing.assert_array_equal(mapped.decode(), in_memory.decode())
            np.testing.assert_array_equal(
                mapped.indices(5, 20, 200), in_memory.indices(5, 20, 200)
            )

    def test_tables_roundtrip_exactly(self, store_path, reference):
        encoder, _ = reference
        with SymbolStore.open(store_path) as store:
            tables = store.tables
            if isinstance(tables, LookupTable):
                assert tables == encoder.shared
            else:
                assert tables == encoder.tables


class TestMeasuredCompression:
    def test_paper_config_within_ten_percent_of_analytic(self, tmp_path):
        # The acceptance bar: 4 bits (k=16) at 15-minute windows must land
        # within 10% of the analytic 384 bits/meter-day, as real bytes.
        rng = np.random.default_rng(5)
        fleet = np.abs(rng.normal(300.0, 100.0, size=(12, 4 * 1440)))  # 4 days, 1-min
        store = write_fleet_store(
            tmp_path / "paper.rsym", fleet, alphabet_size=16, window=15,
            sampling_interval=60.0,
        )
        cell = CompressionModel(sampling_interval=60.0).measured_report(store)
        assert cell.analytic_bits_per_day == 384.0
        assert abs(cell.divergence) <= 0.10
        assert not cell.flagged

    def test_rle_beats_dense_on_standby_heavy_data(self, tmp_path):
        rng = np.random.default_rng(8)
        fleet = np.full((6, 2880), 75.0)
        active = rng.integers(0, 2880 - 60, size=(6, 4))
        for row, starts in enumerate(active):
            for start in starts:
                fleet[row, start: start + 30] = rng.normal(400.0, 80.0, 30)
        dense = write_fleet_store(
            tmp_path / "d.rsym", fleet, alphabet_size=16, window=1,
        )
        rle = write_fleet_store(
            tmp_path / "r.rsym", fleet, alphabet_size=16, window=1, layout=RLE,
        )
        assert rle.payload_nbytes < dense.payload_nbytes

    def test_sweep_shows_measured_next_to_analytic(self, tmp_path):
        from repro.experiments import compression_sweep

        rng = np.random.default_rng(3)
        fleet = np.abs(rng.normal(300.0, 100.0, size=(4, 1440)))
        store = write_fleet_store(
            tmp_path / "s.rsym", fleet, alphabet_size=16, window=15,
            sampling_interval=60.0,
        )
        sweep = compression_sweep(
            alphabet_sizes=(4, 16), aggregation_seconds=(900.0,),
            sampling_interval=60.0, store=store,
        )
        rows = {row["alphabet_size"]: row for row in sweep.rows()}
        assert rows[4]["measured_bits_per_day"] == "-"
        assert isinstance(rows[16]["measured_bits_per_day"], float)
        assert rows[16]["check"] in ("ok", "!")

    def test_missing_aggregation_metadata_raises(self, tmp_path):
        rng = np.random.default_rng(4)
        fleet = np.abs(rng.normal(300.0, 100.0, size=(3, 200)))
        store = write_fleet_store(tmp_path / "m.rsym", fleet, alphabet_size=4)
        with pytest.raises(StoreError):
            CompressionModel().measured_report(store)
        cell = CompressionModel().measured_report(store, aggregation_seconds=900.0)
        assert cell.meter_days > 0


class TestDayVectorRoundTrip:
    def test_ml_dataset_roundtrips_bit_identically(self, tmp_path):
        dataset = day_vector_dataset(seed=6)
        path = store_from_ml_dataset(tmp_path / "dv.rsym", dataset)
        with SymbolStore.open(path) as store:
            rebuilt = store.day_vectors()
        assert rebuilt.attributes == dataset.attributes
        assert rebuilt.class_names == dataset.class_names
        np.testing.assert_array_equal(rebuilt.X, dataset.X)
        np.testing.assert_array_equal(rebuilt.y, dataset.y)

    def test_numeric_dataset_rejected(self, tmp_path):
        from repro.ml import Attribute, MLDataset

        numeric = MLDataset(
            [Attribute.numeric("x")], np.zeros((3, 1)), ["a", "b", "a"]
        )
        with pytest.raises(StoreError):
            store_from_ml_dataset(tmp_path / "bad.rsym", numeric)

    def test_non_day_vector_store_rejects_day_vectors(self, tmp_path):
        rng = np.random.default_rng(2)
        fleet = np.abs(rng.normal(300.0, 100.0, size=(3, 200)))
        store = write_fleet_store(tmp_path / "f.rsym", fleet, alphabet_size=4)
        with pytest.raises(StoreError):
            store.day_vectors()


class TestFormatValidation:
    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            SymbolStore.open(tmp_path / "nope.rsym")

    def test_open_rejects_non_store(self, tmp_path):
        path = tmp_path / "junk.rsym"
        path.write_bytes(b"this is not a symbol store, not even close")
        with pytest.raises(StoreError):
            SymbolStore.open(path)

    def test_open_rejects_truncated_store(self, tmp_path, fleet_values):
        path = tmp_path / "trunc.rsym"
        write_fleet_store(path, fleet_values, alphabet_size=8, window=4)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(StoreError):
            SymbolStore.open(path)

    def test_writer_rejects_out_of_range_symbols(self, tmp_path):
        with SymbolStoreWriter(tmp_path / "w.rsym", alphabet_size=4) as writer:
            with pytest.raises(StoreError):
                writer.append("m0", np.array([0, 4]))
            writer.append("m0", np.array([0, 3]))

    def test_writer_rejects_mixed_table_scopes(self, tmp_path):
        table = LookupTable.fit(np.arange(100.0), 4)
        with SymbolStoreWriter(
            tmp_path / "w.rsym", alphabet_size=4, tables=table
        ) as writer:
            writer.append("m0", np.array([0, 1]))
            with pytest.raises(StoreError):
                writer.append("m1", np.array([0, 1]), table=table)

    def test_writer_rejects_partial_per_column_tables(self, tmp_path):
        table = LookupTable.fit(np.arange(100.0), 4)
        with SymbolStoreWriter(tmp_path / "w.rsym", alphabet_size=4) as writer:
            writer.append("m0", np.array([0, 1]), table=table)
            with pytest.raises(StoreError):
                writer.append("m1", np.array([0, 1]))
            writer.append("m1", np.array([0, 1]), table=table)

    def test_unknown_meter_rejected(self, tmp_path, fleet_values):
        store = write_fleet_store(
            tmp_path / "f.rsym", fleet_values, alphabet_size=8, window=4
        )
        with pytest.raises(StoreError):
            store.indices("no-such-meter")

    def test_interrupted_write_leaves_no_file_behind(self, tmp_path):
        # Regression: a crash mid-write must not leave a truncated store at
        # the final path (it would poison exists()-based store caches).
        path = tmp_path / "partial.rsym"
        with pytest.raises(RuntimeError):
            with SymbolStoreWriter(path, alphabet_size=4) as writer:
                writer.append("m0", np.array([0, 1, 2]))
                raise RuntimeError("simulated crash")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up too

    def test_store_without_tables_cannot_decode(self, tmp_path):
        with SymbolStoreWriter(tmp_path / "w.rsym", alphabet_size=4) as writer:
            writer.append("m0", np.array([0, 1, 2, 3]))
        with SymbolStore.open(tmp_path / "w.rsym") as store:
            np.testing.assert_array_equal(
                store.indices("m0"), np.array([0, 1, 2, 3])
            )
            with pytest.raises(StoreError):
                store.decode()
