"""Fault matrix: every injected failure recovers losslessly or quarantines.

The invariant under test, for each (fault × layout) cell: after the fault
fires, reopening the store never crashes and never returns silently wrong
data — either the previous snapshot is intact byte-for-byte (write-side
faults, caught by the atomic commit protocol) or the damaged segment is
detected, quarantined with a structured warning, and the healthy remainder
still serves exact answers (read-side corruption, caught by checksums).
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.errors import CorruptStoreError, StoreIntegrityWarning
from repro.store import (
    DENSE,
    RLE,
    SegmentedStore,
    SymbolStore,
    append_segment,
    create_segmented_store,
    faults,
    open_store,
    scrub_store,
)
from repro.store.format import MAGIC_HEAD

LAYOUTS = [DENSE, RLE]


def _indices(seed: int, rows: int = 4, windows: int = 64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = rng.integers(0, 8, size=(rows, windows))
    out[:, 20:40] = 3  # plateau so RLE payloads are non-trivial
    return out


@pytest.fixture()
def store_dir(tmp_path, layout):
    directory = tmp_path / "faulty.rsyms"
    create_segmented_store(directory, alphabet_size=8, layout=layout,
                           ids=[0, 1, 2, 3]).close()
    append_segment(directory, _indices(1))
    return directory


def _snapshot(directory: Path):
    with open_store(directory) as store:
        return store.generation, store.matrix().copy()


def _segment_files(directory: Path):
    return sorted(p.name for p in directory.glob("seg-*.rsym"))


@pytest.mark.parametrize("layout", LAYOUTS)
class TestWriteSideFaults:
    """Faults while appending: the previous snapshot must survive intact."""

    CRASH_STEPS = [
        "store.before_fsync",
        "store.before_rename",
        "segments.before_manifest",
        "manifest.before_fsync",
        "manifest.before_rename",
    ]

    @pytest.mark.parametrize("step", CRASH_STEPS)
    def test_crash_leaves_previous_snapshot(self, store_dir, layout, step):
        generation, matrix = _snapshot(store_dir)
        with pytest.raises(faults.InjectedCrash):
            with faults.inject(faults.FaultPlan(step)):
                append_segment(store_dir, _indices(2))
        after_gen, after_matrix = _snapshot(store_dir)
        assert after_gen == generation
        assert np.array_equal(after_matrix, matrix)
        # Recovery: scrub mops up debris, then the retry fully lands.
        scrub_store(store_dir, repair=True)
        assert scrub_store(store_dir).ok
        append_segment(store_dir, _indices(2))
        with open_store(store_dir) as store:
            assert np.array_equal(
                store.matrix(), np.hstack([matrix, _indices(2)])
            )

    def test_crash_after_manifest_rename_is_already_committed(
        self, store_dir, layout
    ):
        generation, matrix = _snapshot(store_dir)
        with pytest.raises(faults.InjectedCrash):
            with faults.inject(faults.FaultPlan("manifest.after_rename")):
                append_segment(store_dir, _indices(2))
        # The rename is the commit point: the append is durable.
        with open_store(store_dir) as store:
            assert store.generation == generation + 1
            assert np.array_equal(
                store.matrix(), np.hstack([matrix, _indices(2)])
            )
        assert scrub_store(store_dir).ok

    @pytest.mark.parametrize("step,stale_kind", [
        ("store.write", "segment temp"),
        ("manifest.write", "manifest temp"),
    ])
    def test_torn_write_leaves_only_temp_debris(
        self, store_dir, layout, step, stale_kind
    ):
        generation, matrix = _snapshot(store_dir)
        with pytest.raises(faults.InjectedCrash):
            with faults.inject(
                faults.FaultPlan(step, action="torn_write", after_bytes=7)
            ):
                append_segment(store_dir, _indices(2))
        temps = list(store_dir.glob("*.tmp"))
        assert temps, f"torn {stale_kind} should leave a .tmp behind"
        after_gen, after_matrix = _snapshot(store_dir)
        assert after_gen == generation
        assert np.array_equal(after_matrix, matrix)
        report = scrub_store(store_dir, repair=True)
        assert report.stale_temps
        assert not list(store_dir.glob("*.tmp"))
        assert scrub_store(store_dir).ok

    def test_disk_full_is_recoverable_and_clean(self, store_dir, layout):
        generation, matrix = _snapshot(store_dir)
        with pytest.raises(OSError) as excinfo:
            with faults.inject(
                faults.FaultPlan("store.write", action="disk_full",
                                 after_bytes=3)
            ):
                append_segment(store_dir, _indices(2))
        assert not isinstance(excinfo.value, faults.InjectedCrash)
        # ENOSPC is an Exception: the writer's own cleanup must have run.
        assert not list(store_dir.glob("*.tmp"))
        after_gen, after_matrix = _snapshot(store_dir)
        assert after_gen == generation
        assert np.array_equal(after_matrix, matrix)
        assert scrub_store(store_dir).ok


@pytest.mark.parametrize("layout", LAYOUTS)
class TestReadSideCorruption:
    """Committed bytes damaged afterwards: detect, quarantine, degrade."""

    def _damage_cases(self, seg_path: Path):
        size = seg_path.stat().st_size
        return {
            "bit_flip_payload": lambda: faults.flip_bit(
                seg_path, len(MAGIC_HEAD) + 5),
            "bit_flip_header": lambda: faults.flip_bit(seg_path, size - 40),
            "truncation": lambda: faults.truncate_file(seg_path, size // 2),
            "torn_tail": lambda: faults.corrupt_tail(seg_path, 24),
        }

    @pytest.mark.parametrize("damage", [
        "bit_flip_payload", "bit_flip_header", "truncation", "torn_tail",
    ])
    def test_damaged_segment_quarantines_healthy_rest_serves(
        self, store_dir, layout, damage
    ):
        append_segment(store_dir, _indices(2))
        with open_store(store_dir) as store:
            healthy = store.matrix(window_range=(0, 64)).copy()
        victim = store_dir / _segment_files(store_dir)[1]
        self._damage_cases(victim)[damage]()

        with pytest.warns(StoreIntegrityWarning) as caught:
            store = SegmentedStore.open(store_dir, verify="eager")
        assert any(w.message.kind == "segment" for w in caught)
        assert [name for name, _ in store.quarantined] == [victim.name]
        # Healthy segment serves the exact original bytes — never wrong data.
        assert np.array_equal(store.matrix(), healthy)
        store.close()

        with pytest.raises(CorruptStoreError):
            SegmentedStore.open(store_dir, verify="eager", strict=True)

        report = scrub_store(store_dir)
        assert not report.ok
        assert [name for name, _ in report.corrupt_segments] == [victim.name]
        repaired = scrub_store(store_dir, repair=True)
        assert repaired.quarantined == [victim.name]
        assert (store_dir / "quarantine" / victim.name).exists()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean = SegmentedStore.open(store_dir, verify="eager")
        assert np.array_equal(clean.matrix(), healthy)
        clean.close()
        assert scrub_store(store_dir).ok

    def test_lazy_read_detects_payload_rot(self, store_dir, layout):
        victim = store_dir / _segment_files(store_dir)[0]
        faults.flip_bit(victim, len(MAGIC_HEAD) + 3)
        store = SegmentedStore.open(store_dir)  # lazy: open succeeds
        with pytest.raises(CorruptStoreError) as excinfo:
            store.matrix()
        assert excinfo.value.check == "column_crc"
        store.close()

    def test_structured_diagnostics_name_the_failure(self, store_dir, layout):
        victim = store_dir / _segment_files(store_dir)[0]
        size = victim.stat().st_size
        faults.truncate_file(victim, size - 4)
        with pytest.raises(CorruptStoreError) as excinfo:
            SymbolStore.open(victim)
        err = excinfo.value
        assert err.check and err.path == victim
        assert "truncat" in (err.hint or "").lower()
        assert err.expected is not None and err.actual is not None
        assert "RSYMEND1" in str(err)  # says what it wanted and what it saw


@pytest.mark.parametrize("layout", LAYOUTS)
class TestManifestFaults:
    def test_manifest_bit_rot_rolls_back_one_generation(
        self, store_dir, layout
    ):
        generation, matrix = _snapshot(store_dir)
        append_segment(store_dir, _indices(2))
        newest = sorted(store_dir.glob("manifest-*.json"))[-1]
        faults.flip_bit(newest, 30)
        with pytest.warns(StoreIntegrityWarning) as caught:
            store = SegmentedStore.open(store_dir)
        assert any(w.message.kind == "manifest" for w in caught)
        assert store.generation == generation
        assert np.array_equal(store.matrix(), matrix)
        store.close()

    def test_manifest_truncation_detected_as_truncated(
        self, store_dir, layout
    ):
        newest = sorted(store_dir.glob("manifest-*.json"))[-1]
        faults.truncate_file(newest, 10)
        with pytest.warns(StoreIntegrityWarning):
            store = SegmentedStore.open(store_dir)
        # Rolled back to the empty generation-1 snapshot, not a crash.
        assert store.n_segments == 0
        store.close()
        repaired = scrub_store(store_dir, repair=True)
        assert newest.name in repaired.invalid_manifests


class TestInjectorMechanics:
    def test_skip_arms_later(self, tmp_path):
        directory = tmp_path / "skip.rsyms"
        create_segmented_store(directory, alphabet_size=8, ids=[0, 1]).close()
        with pytest.raises(faults.InjectedCrash):
            with faults.inject(
                faults.FaultPlan("store.write", skip=3)
            ) as injector:
                append_segment(directory, _indices(3, rows=2))
        assert injector.fired and injector.fired[0].skip == 0

    def test_inject_is_not_reentrant(self):
        with faults.inject(faults.FaultPlan("store.write")):
            with pytest.raises(RuntimeError):
                with faults.inject(faults.FaultPlan("store.write")):
                    pass

    def test_unfired_plan_reported(self, tmp_path):
        directory = tmp_path / "unfired.rsyms"
        create_segmented_store(directory, alphabet_size=8, ids=[0]).close()
        with faults.inject(
            faults.FaultPlan("no.such.step")
        ) as injector:
            append_segment(directory, _indices(4, rows=1))
        assert injector.fired == []
        assert scrub_store(directory).ok
