"""Property-style round-trip tests for the bit-pack/unpack kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import (
    bits_for_alphabet,
    pack_indices,
    packed_nbytes,
    unpack_indices,
    unpack_slice,
)

#: Alphabet sizes from the issue spec: powers of two the paper uses, plus
#: awkward non-powers whose top code does not fill the bit width.
ALPHABETS = (2, 3, 4, 8, 16, 27, 32)


@pytest.mark.parametrize("alphabet", ALPHABETS)
class TestRoundTrip:
    def test_flat_roundtrip_many_lengths(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(alphabet)
        # Lengths around byte boundaries: 8/bits multiples plus off-by-ones.
        for n in (0, 1, 2, 7, 8, 9, 63, 64, 65, 997):
            indices = rng.integers(0, alphabet, size=n)
            packed = pack_indices(indices, bits)
            assert packed.dtype == np.uint8
            assert packed.size == packed_nbytes(n, bits)
            np.testing.assert_array_equal(
                unpack_indices(packed, bits, n), indices
            )

    def test_matrix_roundtrip(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(100 + alphabet)
        matrix = rng.integers(0, alphabet, size=(13, 97))
        packed = pack_indices(matrix, bits)
        assert packed.shape == (13, packed_nbytes(97, bits))
        np.testing.assert_array_equal(
            unpack_indices(packed, bits, 97), matrix
        )
        # Row packing is independent: row i's bytes equal the flat packing.
        for row in range(13):
            np.testing.assert_array_equal(
                packed[row], pack_indices(matrix[row], bits)
            )

    def test_slice_decoding_at_every_offset(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(200 + alphabet)
        indices = rng.integers(0, alphabet, size=131)
        packed = pack_indices(indices, bits)
        for start in range(0, 131, 17):
            for stop in (start, start + 1, min(start + 29, 131), 131):
                np.testing.assert_array_equal(
                    unpack_slice(packed, bits, start, stop),
                    indices[start:stop],
                )

    def test_extreme_values_roundtrip(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        edge = np.array([0, alphabet - 1] * 11)
        np.testing.assert_array_equal(
            unpack_indices(pack_indices(edge, bits), bits, edge.size), edge
        )

    def test_packing_is_deterministic(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(300 + alphabet)
        indices = rng.integers(0, alphabet, size=500)
        first = pack_indices(indices, bits).tobytes()
        assert pack_indices(indices, bits).tobytes() == first


class TestBitsForAlphabet:
    @pytest.mark.parametrize(
        "alphabet,expected",
        [(2, 1), (3, 2), (4, 2), (8, 3), (16, 4), (27, 5), (32, 5)],
    )
    def test_ceil_log2(self, alphabet, expected):
        assert bits_for_alphabet(alphabet) == expected

    def test_rejects_degenerate_alphabets(self):
        with pytest.raises(StoreError):
            bits_for_alphabet(1)


class TestValidation:
    def test_out_of_range_indices_rejected(self):
        with pytest.raises(StoreError):
            pack_indices(np.array([0, 4]), bits=2)
        with pytest.raises(StoreError):
            pack_indices(np.array([-1, 0]), bits=2)

    def test_bad_bit_widths_rejected(self):
        for bits in (0, -1, 33):
            with pytest.raises(StoreError):
                pack_indices(np.array([0]), bits)

    def test_short_payload_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_indices(packed[:-1], bits=3, count=8)

    def test_slice_past_end_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=0, stop=9)

    def test_negative_slice_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=-1, stop=4)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=5, stop=4)
