"""Property-style round-trip tests for the bit-pack/unpack kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import (
    bits_for_alphabet,
    pack_indices,
    packed_nbytes,
    slice_byte_window,
    symbol_dtype,
    unpack_indices,
    unpack_slice,
)

#: Alphabet sizes from the issue spec: powers of two the paper uses, plus
#: awkward non-powers whose top code does not fill the bit width.
ALPHABETS = (2, 3, 4, 8, 16, 27, 32)


@pytest.mark.parametrize("alphabet", ALPHABETS)
class TestRoundTrip:
    def test_flat_roundtrip_many_lengths(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(alphabet)
        # Lengths around byte boundaries: 8/bits multiples plus off-by-ones.
        for n in (0, 1, 2, 7, 8, 9, 63, 64, 65, 997):
            indices = rng.integers(0, alphabet, size=n)
            packed = pack_indices(indices, bits)
            assert packed.dtype == np.uint8
            assert packed.size == packed_nbytes(n, bits)
            np.testing.assert_array_equal(
                unpack_indices(packed, bits, n), indices
            )

    def test_matrix_roundtrip(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(100 + alphabet)
        matrix = rng.integers(0, alphabet, size=(13, 97))
        packed = pack_indices(matrix, bits)
        assert packed.shape == (13, packed_nbytes(97, bits))
        np.testing.assert_array_equal(
            unpack_indices(packed, bits, 97), matrix
        )
        # Row packing is independent: row i's bytes equal the flat packing.
        for row in range(13):
            np.testing.assert_array_equal(
                packed[row], pack_indices(matrix[row], bits)
            )

    def test_slice_decoding_at_every_offset(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(200 + alphabet)
        indices = rng.integers(0, alphabet, size=131)
        packed = pack_indices(indices, bits)
        for start in range(0, 131, 17):
            for stop in (start, start + 1, min(start + 29, 131), 131):
                np.testing.assert_array_equal(
                    unpack_slice(packed, bits, start, stop),
                    indices[start:stop],
                )

    def test_extreme_values_roundtrip(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        edge = np.array([0, alphabet - 1] * 11)
        np.testing.assert_array_equal(
            unpack_indices(pack_indices(edge, bits), bits, edge.size), edge
        )

    def test_packing_is_deterministic(self, alphabet):
        bits = bits_for_alphabet(alphabet)
        rng = np.random.default_rng(300 + alphabet)
        indices = rng.integers(0, alphabet, size=500)
        first = pack_indices(indices, bits).tobytes()
        assert pack_indices(indices, bits).tobytes() == first


class TestBitsForAlphabet:
    @pytest.mark.parametrize(
        "alphabet,expected",
        [(2, 1), (3, 2), (4, 2), (8, 3), (16, 4), (27, 5), (32, 5)],
    )
    def test_ceil_log2(self, alphabet, expected):
        assert bits_for_alphabet(alphabet) == expected

    def test_rejects_degenerate_alphabets(self):
        with pytest.raises(StoreError):
            bits_for_alphabet(1)


def _reference_pack(indices: np.ndarray, bits: int) -> np.ndarray:
    """The seed bit-plane packer: expand to bits, ``np.packbits`` MSB-first.

    Deliberately independent of ``repro.store.packing`` internals — it pins
    the *byte layout* the fast paths must reproduce exactly.
    """
    arr = np.asarray(indices, dtype=np.int64)
    shifts = np.arange(bits - 1, -1, -1)
    planes = ((arr[..., None] >> shifts) & 1).astype(np.uint8)
    flat = planes.reshape(arr.shape[:-1] + (arr.shape[-1] * bits,))
    return np.packbits(flat, axis=-1)


def _reference_unpack(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    expanded = np.unpackbits(
        np.asarray(packed, dtype=np.uint8), axis=-1
    )[..., : count * bits]
    planes = expanded.reshape(expanded.shape[:-1] + (count, bits))
    weights = (1 << np.arange(bits - 1, -1, -1)).astype(np.int64)
    return planes.astype(np.int64) @ weights


@pytest.mark.parametrize("bits", range(1, 9))
class TestFastPathsMatchReferenceKernels:
    """The LUT / strided / odd-phase paths are bit-identical to bit-planes."""

    def test_pack_bytes_identical(self, bits):
        rng = np.random.default_rng(bits)
        for n in (0, 1, 5, 8, 9, 24, 63, 64, 65, 255, 1000, 8191, 8192, 8193):
            indices = rng.integers(0, 1 << bits, size=n)
            assert pack_indices(indices, bits).tobytes() == \
                _reference_pack(indices, bits).tobytes()

    def test_unpack_values_identical(self, bits):
        rng = np.random.default_rng(100 + bits)
        # 8193 symbols crosses the LUT -> strided dispatch threshold for
        # every aligned width; odd counts exercise partial trailing bytes.
        for n in (1, 7, 8, 9, 97, 8191, 8193):
            indices = rng.integers(0, 1 << bits, size=n)
            packed = _reference_pack(indices, bits)
            out = unpack_indices(packed, bits, n)
            np.testing.assert_array_equal(
                out.astype(np.int64), _reference_unpack(packed, bits, n)
            )
            assert out.dtype == symbol_dtype(bits)

    def test_unpack_slice_every_phase(self, bits):
        rng = np.random.default_rng(200 + bits)
        n = 259  # odd length: trailing partial byte for every width
        indices = rng.integers(0, 1 << bits, size=n)
        packed = pack_indices(indices, bits)
        reference = _reference_unpack(packed, bits, n)
        # Every start % 8 phase (and then some), misaligned stops included.
        for start in list(range(0, 17)) + [100, 128, 250, 258, 259]:
            for stop in (start, start + 1, start + 13, min(start + 64, n), n):
                stop = min(stop, n)
                np.testing.assert_array_equal(
                    unpack_slice(packed, bits, start, stop).astype(np.int64),
                    reference[start:stop],
                )

    def test_matrix_rows_identical(self, bits):
        rng = np.random.default_rng(300 + bits)
        matrix = rng.integers(0, 1 << bits, size=(7, 131))
        packed = pack_indices(matrix, bits)
        assert packed.tobytes() == _reference_pack(matrix, bits).tobytes()
        np.testing.assert_array_equal(
            unpack_indices(packed, bits, 131).astype(np.int64),
            _reference_unpack(packed, bits, 131),
        )


@given(
    bits=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(bits, data):
    n = data.draw(st.integers(min_value=0, max_value=700))
    symbols = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=n, max_size=n,
        )
    )
    indices = np.asarray(symbols, dtype=np.int64)
    packed = pack_indices(indices, bits)
    assert packed.tobytes() == _reference_pack(indices, bits).tobytes()
    np.testing.assert_array_equal(
        unpack_indices(packed, bits, n).astype(np.int64), indices
    )
    if n:
        start = data.draw(st.integers(min_value=0, max_value=n))
        stop = data.draw(st.integers(min_value=start, max_value=n))
        np.testing.assert_array_equal(
            unpack_slice(packed, bits, start, stop).astype(np.int64),
            indices[start:stop],
        )


class TestSymbolDtype:
    def test_narrow_widths(self):
        for bits in range(1, 9):
            assert symbol_dtype(bits) == np.uint8
        for bits in range(9, 17):
            assert symbol_dtype(bits) == np.uint16
        assert symbol_dtype(17) == np.int64

    def test_slice_byte_window_bounds(self):
        # The window always covers [start, stop) and starts on a
        # symbol-aligned byte: lead symbols precede start inside it.
        for bits in range(1, 9):
            for start in range(0, 40):
                first, last, lead = slice_byte_window(bits, start, start + 11)
                assert 0 <= lead < 8
                assert first * 8 <= start * bits
                assert last * 8 >= (start + 11) * bits
                assert (start - lead) * bits == first * 8


class TestValidation:
    def test_out_of_range_indices_rejected(self):
        with pytest.raises(StoreError):
            pack_indices(np.array([0, 4]), bits=2)
        with pytest.raises(StoreError):
            pack_indices(np.array([-1, 0]), bits=2)

    def test_bad_bit_widths_rejected(self):
        for bits in (0, -1, 33):
            with pytest.raises(StoreError):
                pack_indices(np.array([0]), bits)

    def test_short_payload_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_indices(packed[:-1], bits=3, count=8)

    def test_slice_past_end_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=0, stop=9)

    def test_negative_slice_rejected(self):
        packed = pack_indices(np.arange(8), bits=3)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=-1, stop=4)
        with pytest.raises(StoreError):
            unpack_slice(packed, bits=3, start=5, stop=4)
