"""Crash-recovery smoke: SIGKILL a real writer process mid-append.

The fault harness simulates crashes in-process; this suite delivers the
real thing — ``SIGKILL`` to a subprocess that is busy appending segments —
and asserts the surviving directory always reopens at a committed
generation with internally consistent data, and that one ``scrub --repair``
restores a clean bill of health.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.store import append_segment, open_store, scrub_store

WRITER = r"""
import sys
import numpy as np
from repro.store import append_segment, create_segmented_store

directory = sys.argv[1]
create_segmented_store(directory, alphabet_size=8, ids=list(range(8))).close()
print("ready", flush=True)
for k in range(10_000):
    # Large all-one-value segments: content is predictable from the record
    # order, so any torn or half-applied append is detectable after the kill.
    append_segment(directory, np.full((8, 512), k % 8, dtype=np.int64))
    print(f"committed {k}", flush=True)
"""


@pytest.mark.parametrize("grace", [0.0, 0.05, 0.15])
def test_sigkill_mid_append_reopens_at_committed_generation(tmp_path, grace):
    directory = tmp_path / "victim.rsyms"
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER, str(directory)],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
    )
    try:
        assert proc.stdout.readline().strip() == "ready"
        proc.stdout.readline()  # at least one commit has landed
        time.sleep(grace)       # then die at an arbitrary point in a later one
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # The store must reopen without error at whatever generation committed.
    with open_store(directory) as store:
        n = store.n_segments
        assert n >= 1
        matrix = store.matrix()
        assert matrix.shape == (8, n * 512)
        expected = np.hstack(
            [np.full((8, 512), k % 8, dtype=np.int64) for k in range(n)]
        )
        assert np.array_equal(matrix, expected)
        generation = store.generation

    # Scrub finds at most debris (orphan segment / stale temp), never damage
    # to committed data; repair leaves the store clean at a new-or-same view.
    report = scrub_store(directory)
    assert report.corrupt_segments == []
    scrub_store(directory, repair=True)
    clean = scrub_store(directory)
    assert clean.ok

    # And the store is fully writable again after recovery.
    append_segment(directory, np.full((8, 512), 7, dtype=np.int64))
    with open_store(directory) as store:
        assert store.n_segments == n + 1
        assert store.generation > generation
        assert np.array_equal(
            store.matrix(window_range=(n * 512, (n + 1) * 512)),
            np.full((8, 512), 7),
        )
