"""CRC32C correctness: check vector, lane parity, combine, row batches."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.store.checksum import (
    _LANE_THRESHOLD,
    crc32c,
    crc32c_combine,
    crc32c_hex,
    crc32c_rows,
)


class TestCheckVector:
    def test_standard_check_vector(self):
        # The canonical CRC32C test vector (RFC 3720 / every implementation).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_input_is_identity(self):
        assert crc32c(b"") == 0
        assert crc32c(b"", 0xDEADBEEF) == 0xDEADBEEF

    def test_hex_rendering(self):
        assert crc32c_hex(0xE3069283) == "e3069283"
        assert crc32c_hex(0x1) == "00000001"

    def test_differs_from_crc32(self):
        # Castagnoli, not the zlib/IEEE polynomial.
        assert crc32c(b"123456789") != zlib.crc32(b"123456789")


class TestIncremental:
    def test_zlib_call_shape(self):
        a, b = b"smart meter", b" symbols"
        assert crc32c(b, crc32c(a)) == crc32c(a + b)

    def test_combine_matches_concatenation(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, size=313, dtype=np.uint8).tobytes()
        b = rng.integers(0, 256, size=4097, dtype=np.uint8).tobytes()
        assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(a + b)

    def test_combine_with_empty_suffix(self):
        assert crc32c_combine(0x12345678, 0, 0) == 0x12345678


class TestLaneParity:
    @pytest.mark.parametrize("size", [
        _LANE_THRESHOLD - 1,       # scalar path
        _LANE_THRESHOLD,           # smallest lane split
        _LANE_THRESHOLD * 3 + 17,  # uneven tail
        100_003,                   # prime, many lanes
    ])
    def test_lane_path_equals_byte_loop(self, size):
        rng = np.random.default_rng(size)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        # Split forces the scalar continuation path over the same bytes.
        cut = min(1024, size // 2)
        scalar = crc32c(data[cut:], crc32c(data[:cut]))
        assert crc32c(data) == scalar

    def test_numpy_input_matches_bytes(self):
        rng = np.random.default_rng(9)
        arr = rng.integers(0, 256, size=5000, dtype=np.uint8)
        assert crc32c(arr) == crc32c(arr.tobytes())


class TestRows:
    def test_rows_match_per_row_scalar(self):
        rng = np.random.default_rng(21)
        matrix = rng.integers(0, 256, size=(37, 53), dtype=np.uint8)
        rows = crc32c_rows(matrix)
        assert rows.dtype == np.uint32
        for i in range(matrix.shape[0]):
            assert int(rows[i]) == crc32c(matrix[i].tobytes())

    def test_few_rows_take_scalar_path(self):
        rng = np.random.default_rng(22)
        matrix = rng.integers(0, 256, size=(3, 64), dtype=np.uint8)
        rows = crc32c_rows(matrix)
        for i in range(3):
            assert int(rows[i]) == crc32c(matrix[i].tobytes())

    def test_empty_and_bad_inputs(self):
        assert crc32c_rows(np.zeros((0, 8), dtype=np.uint8)).size == 0
        assert np.array_equal(
            crc32c_rows(np.zeros((4, 0), dtype=np.uint8)), np.zeros(4)
        )
        with pytest.raises(TypeError):
            crc32c_rows(np.zeros((4, 4), dtype=np.int64))
        with pytest.raises(TypeError):
            crc32c_rows(np.zeros(16, dtype=np.uint8))
