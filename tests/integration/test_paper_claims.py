"""Integration tests asserting the paper's qualitative claims hold.

These are the "shape" checks of the reproduction: which method wins, how
accuracy moves with alphabet size, and the compression claim.  They use a
moderate synthetic dataset so they stay within test-suite runtime budgets;
the benchmarks run the full grids.
"""

from __future__ import annotations

import pytest

from repro.analytics import DayVectorConfig, build_day_vectors, classify_households
from repro.core import LookupTable, SymbolicEncoder, horizontal_segment
from repro.core.vertical import segment_by_duration
from repro.datasets import generate_redd
from repro.experiments import paper_example_report


@pytest.fixture(scope="module")
def claim_dataset():
    """Ten days, 1-minute sampling: enough day vectors for stable comparisons."""
    return generate_redd(days=10, sampling_interval=60.0, seed=42)


def _f_measure(dataset, encoding, alphabet_size, classifier="naive_bayes",
               aggregation=3600.0, global_table=False):
    config = DayVectorConfig(encoding=encoding, aggregation_seconds=aggregation,
                             alphabet_size=alphabet_size, global_table=global_table)
    return classify_households(dataset, config, classifier, n_folds=5, seed=0).f_measure


class TestClassificationClaims:
    def test_accuracy_improves_with_alphabet_size(self, claim_dataset):
        """Paper: "Accuracy improves with the size of the alphabet".

        The trend is clearest for the uniform encoding (whose two-symbol
        variant is very coarse); the average over all three methods must not
        get worse either.
        """
        uniform_small = _f_measure(claim_dataset, "uniform", 2)
        uniform_large = _f_measure(claim_dataset, "uniform", 16)
        assert uniform_large > uniform_small
        methods = ("median", "distinctmedian", "uniform")
        mean_small = sum(_f_measure(claim_dataset, m, 2) for m in methods) / 3
        mean_large = sum(_f_measure(claim_dataset, m, 16) for m in methods) / 3
        assert mean_large >= mean_small - 0.02

    def test_median_beats_uniform_on_average(self, claim_dataset):
        """Paper: "median encoding performs better than ... uniform" on average."""
        sizes = (2, 4, 8, 16)
        median_scores = [_f_measure(claim_dataset, "median", k) for k in sizes]
        uniform_scores = [_f_measure(claim_dataset, "uniform", k) for k in sizes]
        assert sum(median_scores) > sum(uniform_scores)

    def test_median_16_symbols_competitive_with_raw(self, claim_dataset):
        """Paper: median encoding matches or outperforms raw-value classification."""
        symbolic = _f_measure(claim_dataset, "median", 16, classifier="naive_bayes")
        raw = _f_measure(claim_dataset, "raw", 16, classifier="naive_bayes")
        assert symbolic >= raw - 0.05

    def test_global_table_encoding_reaches_raw_level(self, claim_dataset):
        """Paper (Figure 7 / Table 1 "+"): even with a single global lookup
        table, median encoding reaches the level of the raw values with Naive
        Bayes."""
        shared = _f_measure(claim_dataset, "median", 16, global_table=True)
        raw = _f_measure(claim_dataset, "raw", 16, classifier="naive_bayes")
        assert shared >= raw - 0.05

    def test_per_house_tables_do_not_lose_to_global_table(self, claim_dataset):
        """Paper: per-house separators add house-specific information, so the
        per-house encoding scores at least as well as the single global table
        (the paper observes a large gap; the synthetic substitute reproduces
        the direction with a smaller margin — see EXPERIMENTS.md)."""
        per_house = _f_measure(claim_dataset, "median", 16)
        shared = _f_measure(claim_dataset, "median", 16, global_table=True)
        assert per_house >= shared - 0.02

    def test_symbolic_classification_clearly_above_chance(self, claim_dataset):
        score = _f_measure(claim_dataset, "median", 16, classifier="random_forest")
        assert score > 2.0 / 6.0


class TestEntropyClaim:
    def test_median_maximises_symbol_entropy(self, claim_dataset):
        """Paper: the median segmentation "aims to maximize the entropy of the
        generated symbols"."""
        series = segment_by_duration(claim_dataset.mains(1), 3600.0, "average")
        entropies = {}
        for method in ("median", "distinctmedian", "uniform"):
            table = LookupTable.fit(series, 8, method=method)
            entropies[method] = horizontal_segment(series, table).entropy()
        assert entropies["median"] >= entropies["uniform"]
        assert entropies["median"] >= entropies["distinctmedian"] - 1e-6


class TestCompressionClaim:
    def test_three_orders_of_magnitude(self):
        """Paper Section 2.3: 680 kB/day -> 384 bits is ~3 orders of magnitude."""
        report = paper_example_report()
        assert report.raw_bits_per_day / 8 / 1024 == pytest.approx(675.0, rel=0.02)
        assert report.symbolic_bits_per_day == 384.0
        assert 3.0 <= report.orders_of_magnitude <= 5.0


class TestVectorConstructionClaims:
    def test_day_vectors_have_uniform_length_despite_gaps(self, claim_dataset):
        """Paper: "To have vectors of same size, raw values were also
        aggregated" — every instance must have the same number of slots."""
        for aggregation, slots in ((3600.0, 24), (900.0, 96)):
            config = DayVectorConfig("median", aggregation, 8)
            table = build_day_vectors(claim_dataset, config)
            assert table.n_attributes == slots
