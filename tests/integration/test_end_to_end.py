"""Integration tests: full pipelines spanning several subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import DayVectorConfig, classify_households, forecast_house
from repro.core import LookupTable, OnlineEncoder, SymbolicEncoder
from repro.datasets import generate_redd, read_dataset, write_dataset
from repro.experiments import ExperimentGrid, GridRunner
from repro.ml import NaiveBayesClassifier, cross_validate


class TestSensorToServerPipeline:
    """Simulates the paper's deployment: sensor-side online encoding, table
    shipping, and server-side analytics on symbols only."""

    def test_online_encoding_then_classification(self, small_redd):
        window = 3600.0
        server_side_tables = {}
        server_side_symbols = {}
        for house in small_redd:
            encoder = OnlineEncoder(
                alphabet_size=8, method="median", window_seconds=window,
                bootstrap_seconds=2 * 86400.0,
            )
            encoder.push_series(house.mains)
            encoder.flush()
            # Table is serialised exactly as it would be shipped to the server.
            server_side_tables[house.house_id] = LookupTable.from_json(
                encoder.table.to_json()
            )
            server_side_symbols[house.house_id] = encoder.to_symbolic_series(
                name=house.name
            )

        # Server-side: day histogram features per house, 1-NN day matching.
        from repro.ml import Attribute, MLDataset

        words = server_side_tables[1].alphabet.words
        rows, labels = [], []
        for house_id, symbols in server_side_symbols.items():
            for day in symbols.split_days():
                if len(day) < 20:
                    continue
                counts = day.symbol_counts()
                total = max(sum(counts.values()), 1)
                rows.append([counts[w] / total for w in words])
                labels.append(f"house_{house_id}")
        table = MLDataset([Attribute.numeric(f"p_{w}") for w in words],
                          np.asarray(rows), labels)
        result = cross_validate(lambda: NaiveBayesClassifier(), table, n_folds=4)
        assert result.f_measure > 1.5 / 6.0  # clearly above chance

    def test_persisted_dataset_round_trips_through_experiments(self, tmp_path):
        dataset = generate_redd(days=5, sampling_interval=300.0, seed=21)
        directory = write_dataset(dataset, tmp_path / "redd")
        reloaded = read_dataset(directory)
        config = DayVectorConfig("median", 3600.0, 8)
        original = classify_households(dataset, config, "naive_bayes", n_folds=4)
        replayed = classify_households(reloaded, config, "naive_bayes", n_folds=4)
        assert original.f_measure == pytest.approx(replayed.f_measure)


class TestGridConsistency:
    def test_runner_matches_direct_classification(self, small_redd):
        config = DayVectorConfig("median", 3600.0, 8)
        runner = GridRunner(small_redd, n_folds=4, seed=5)
        from_runner = runner.run_cell(config, "naive_bayes")
        direct = classify_households(small_redd, config, "naive_bayes", n_folds=4,
                                     seed=5)
        assert from_runner.f_measure == pytest.approx(direct.f_measure)

    def test_same_vectors_give_same_results_across_classifier_order(self, small_redd):
        runner = GridRunner(small_redd, n_folds=4, seed=2)
        grid = ExperimentGrid(methods=("median",), aggregations=(3600.0,),
                              alphabet_sizes=(8,), include_raw=False)
        first = runner.run_grid(grid, ["naive_bayes", "j48"])
        second = runner.run_grid(grid, ["j48", "naive_bayes"])
        by_name_first = {r.classifier: r.f_measure for r in first}
        by_name_second = {r.classifier: r.f_measure for r in second}
        assert by_name_first == pytest.approx(by_name_second)


class TestForecastingPipeline:
    def test_symbolic_and_raw_forecasts_are_comparable(self, gapless_redd):
        results = forecast_house(gapless_redd.mains(1), classifier="naive_bayes",
                                 house_id=1)
        raw_mae = results["raw"].mae
        best_symbolic = min(
            result.mae for method, result in results.items() if method != "raw"
        )
        # The paper's claim is comparability, not dominance: symbolic should be
        # within a factor of the raw SVR baseline.
        assert best_symbolic <= 3.0 * raw_mae

    def test_encoder_round_trip_supports_decoded_analytics(self, gapless_redd):
        series = gapless_redd.mains(2)
        encoder = SymbolicEncoder(alphabet_size=16, method="median",
                                  aggregation_seconds=3600.0)
        encoded = encoder.fit_encode(series)
        decoded = encoder.decode(encoded)
        aggregated = encoder.aggregate(series)
        relative_error = np.mean(
            np.abs(decoded.values - aggregated.values) / (aggregated.values + 1.0)
        )
        assert relative_error < 0.35
