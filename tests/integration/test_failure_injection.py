"""Failure-injection tests: the library must fail loudly and predictably.

These cover the unhappy paths a deployment would hit: corrupted CSV files,
NaN readings in the sensor stream, degenerate (constant / empty) signals,
houses with no usable days, and absurd configuration values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import DayVectorConfig, build_day_vectors
from repro.core import LookupTable, OnlineEncoder, SymbolicEncoder, TimeSeries
from repro.datasets import House, MeterDataset, read_series_csv
from repro.errors import (
    DatasetError,
    ExperimentError,
    ReproError,
    SegmentationError,
)


class TestCorruptedInputs:
    def test_corrupted_csv_rows_raise_dataset_error(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("timestamp,value\n0.0,100.0\n1.0\n")
        with pytest.raises(DatasetError):
            read_series_csv(path)

    def test_non_numeric_csv_values(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("timestamp,value\n0.0,not-a-number\n")
        with pytest.raises(ValueError):
            read_series_csv(path)

    def test_all_errors_share_a_base_class(self):
        for exc in (DatasetError, ExperimentError, SegmentationError):
            assert issubclass(exc, ReproError)


class TestDegenerateSignals:
    def test_constant_signal_encodes_without_crashing(self):
        flat = TimeSeries.regular(np.full(2000, 120.0), interval=60.0)
        encoder = SymbolicEncoder(alphabet_size=8, method="median")
        encoded = encoder.fit_encode(flat)
        assert len(set(encoded.words)) == 1
        decoded = encoder.decode(encoded)
        assert np.allclose(decoded.values, decoded.values[0])

    def test_all_zero_signal_with_uniform_method(self):
        zero = TimeSeries.regular(np.zeros(500), interval=60.0)
        encoder = SymbolicEncoder(alphabet_size=4, method="uniform")
        encoded = encoder.fit_encode(zero)
        assert len(encoded) == 500

    def test_nan_stream_is_ignored_by_online_encoder(self):
        encoder = OnlineEncoder(alphabet_size=4, window_seconds=60.0,
                                bootstrap_seconds=120.0)
        for t in range(300):
            value = float("nan") if t % 3 == 0 else 100.0 + t
            encoder.push(float(t), value)
        encoder.flush()
        assert encoder.is_bootstrapped
        assert encoder.statistics.count == 200  # NaNs never counted

    def test_single_point_series(self):
        single = TimeSeries.regular([42.0])
        table = LookupTable.fit(single, 4, method="uniform")
        assert table.symbol_for_value(42.0) in table.alphabet


class TestUnusableDatasets:
    def test_house_without_enough_days_yields_clear_error(self):
        # One hour of data: the 20-hour filter removes every day.
        short = TimeSeries.regular(np.full(60, 200.0), interval=60.0)
        dataset = MeterDataset("tiny", {1: House(house_id=1, mains=short)})
        with pytest.raises(ExperimentError):
            build_day_vectors(dataset, DayVectorConfig("median", 3600.0, 4))

    def test_empty_bootstrap_window_detected(self):
        # Data starts only on day 3, so the [day0, day2) bootstrap is empty...
        late = TimeSeries.regular(np.full(3000, 200.0), start=3 * 86400.0,
                                  interval=60.0)
        dataset = MeterDataset("late", {1: House(house_id=1, mains=late)})
        config = DayVectorConfig("median", 3600.0, 4, min_hours=0.5)
        # ...but the bootstrap window is anchored at the series start, so this
        # still works; anchor semantics must not silently produce empty tables.
        vectors = build_day_vectors(dataset, config)
        assert len(vectors) > 0


class TestAbsurdConfigurations:
    def test_huge_alphabet_on_tiny_data(self):
        tiny = TimeSeries.regular([1.0, 2.0, 3.0])
        table = LookupTable.fit(tiny, 16, method="median")
        # Degenerate separators are allowed; encoding stays total.
        assert len(table.separators) == 15
        assert table.index_for_value(2.0) < 16

    def test_negative_power_values_still_encode(self):
        # Net metering (solar export) produces negative readings.
        values = np.linspace(-500.0, 1500.0, 200)
        table = LookupTable.fit(values, 8, method="median")
        indices = table.indices_for_values(values)
        assert np.all(np.diff(indices) >= 0)

    def test_window_larger_than_series(self):
        short = TimeSeries.regular(np.arange(10.0), interval=1.0)
        encoder = SymbolicEncoder(alphabet_size=4, method="median",
                                  aggregation_seconds=3600.0)
        encoded = encoder.fit_encode(short)
        assert len(encoded) == 1
