"""Unit tests for repro.ml.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml import Attribute, MLDataset, train_test_split


class TestAttribute:
    def test_nominal_requires_categories(self):
        with pytest.raises(DatasetError):
            Attribute(name="a", kind="nominal")

    def test_numeric_cannot_have_categories(self):
        with pytest.raises(DatasetError):
            Attribute(name="a", kind="numeric", categories=("x",))

    def test_unknown_kind(self):
        with pytest.raises(DatasetError):
            Attribute(name="a", kind="ordinal")

    def test_index_of(self):
        attribute = Attribute.nominal("a", ["x", "y", "z"])
        assert attribute.index_of("y") == 1
        with pytest.raises(DatasetError):
            attribute.index_of("w")

    def test_constructors(self):
        assert Attribute.numeric("n").kind == "numeric"
        assert Attribute.nominal("m", ["a"]).n_categories == 1


class TestMLDataset:
    def test_basic_shape_checks(self):
        attributes = [Attribute.numeric("x")]
        with pytest.raises(DatasetError):
            MLDataset(attributes, np.zeros((2, 2)), ["a", "b"])
        with pytest.raises(DatasetError):
            MLDataset(attributes, np.zeros((2, 1)), ["a"])
        with pytest.raises(DatasetError):
            MLDataset(attributes, np.zeros(3), ["a", "b", "c"])

    def test_nominal_range_validation(self):
        attributes = [Attribute.nominal("a", ["x", "y"])]
        with pytest.raises(DatasetError):
            MLDataset(attributes, [[2.0]], ["c"])
        with pytest.raises(DatasetError):
            MLDataset(attributes, [[0.5]], ["c"])

    def test_class_names_derived_and_explicit(self, nominal_data):
        assert nominal_data.class_names == ("c0", "c1", "c2")
        attributes = [Attribute.numeric("x")]
        dataset = MLDataset(attributes, [[1.0]], ["b"], class_names=["a", "b"])
        assert dataset.n_classes == 2
        assert dataset.y.tolist() == [1]

    def test_unknown_label_rejected(self):
        attributes = [Attribute.numeric("x")]
        with pytest.raises(DatasetError):
            MLDataset(attributes, [[1.0]], ["zzz"], class_names=["a", "b"])

    def test_class_counts_and_label_of(self, nominal_data):
        counts = nominal_data.class_counts()
        assert counts.tolist() == [40, 40, 40]
        assert nominal_data.label_of(0) == "c0"

    def test_subset_preserves_schema_and_classes(self, nominal_data):
        subset = nominal_data.subset([0, 1, 50])
        assert len(subset) == 3
        assert subset.class_names == nominal_data.class_names
        assert subset.label_of(2) == nominal_data.label_of(50)

    def test_shuffled_is_permutation(self, nominal_data, rng):
        shuffled = nominal_data.shuffled(rng)
        assert len(shuffled) == len(nominal_data)
        assert sorted(shuffled.y.tolist()) == sorted(nominal_data.y.tolist())

    def test_merge_requires_same_schema(self, nominal_data, numeric_data):
        merged = nominal_data.merge(nominal_data)
        assert len(merged) == 2 * len(nominal_data)
        with pytest.raises(DatasetError):
            nominal_data.merge(numeric_data)

    def test_one_hot_expansion(self, mixed_data):
        expanded = mixed_data.one_hot()
        # 2 nominal attributes with 3 categories each + 2 numeric columns.
        assert expanded.shape == (len(mixed_data), 8)
        # One-hot blocks sum to 1 per instance per nominal attribute.
        assert np.allclose(expanded[:, :3].sum(axis=1), 1.0)
        assert np.allclose(expanded[:, 3:6].sum(axis=1), 1.0)


class TestTrainTestSplit:
    def test_stratified_split_preserves_proportions(self, nominal_data, rng):
        train, test = train_test_split(nominal_data, test_fraction=0.25, rng=rng)
        assert len(train) + len(test) == len(nominal_data)
        for klass in range(3):
            assert (test.y == klass).sum() == 10

    def test_unstratified_split_sizes(self, nominal_data, rng):
        train, test = train_test_split(
            nominal_data, test_fraction=0.5, rng=rng, stratified=False
        )
        assert abs(len(test) - 60) <= 1

    def test_invalid_fraction(self, nominal_data):
        with pytest.raises(DatasetError):
            train_test_split(nominal_data, test_fraction=0.0)
        with pytest.raises(DatasetError):
            train_test_split(nominal_data, test_fraction=1.0)
