"""Shared fixtures for the machine-learning substrate tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import Attribute, MLDataset


def make_nominal_dataset(
    n_per_class: int = 40, n_attributes: int = 6, n_categories: int = 4,
    n_classes: int = 3, noise: float = 0.15, seed: int = 0,
) -> MLDataset:
    """Separable nominal data: class c prefers category (c + column) mod k."""
    rng = np.random.default_rng(seed)
    categories = [f"v{i}" for i in range(n_categories)]
    attributes = [Attribute.nominal(f"a{i}", categories) for i in range(n_attributes)]
    rows, labels = [], []
    for klass in range(n_classes):
        for _ in range(n_per_class):
            row = []
            for column in range(n_attributes):
                if rng.random() < noise:
                    row.append(rng.integers(0, n_categories))
                else:
                    row.append((klass + column) % n_categories)
            rows.append(row)
            labels.append(f"c{klass}")
    return MLDataset(attributes, np.asarray(rows, dtype=float), labels)


def make_numeric_dataset(
    n_per_class: int = 40, n_attributes: int = 4, n_classes: int = 3,
    spread: float = 1.0, seed: int = 0,
) -> MLDataset:
    """Separable numeric data: Gaussian blobs around class-specific means."""
    rng = np.random.default_rng(seed)
    attributes = [Attribute.numeric(f"x{i}") for i in range(n_attributes)]
    rows, labels = [], []
    for klass in range(n_classes):
        centre = np.full(n_attributes, klass * 5.0)
        for _ in range(n_per_class):
            rows.append(centre + rng.normal(0, spread, size=n_attributes))
            labels.append(f"c{klass}")
    return MLDataset(attributes, np.asarray(rows), labels)


@pytest.fixture()
def nominal_data():
    return make_nominal_dataset()

@pytest.fixture()
def numeric_data():
    return make_numeric_dataset()

@pytest.fixture()
def mixed_data():
    """Half nominal, half numeric attributes, separable classes."""
    rng = np.random.default_rng(3)
    categories = ["low", "mid", "high"]
    attributes = [
        Attribute.nominal("n0", categories),
        Attribute.nominal("n1", categories),
        Attribute.numeric("x0"),
        Attribute.numeric("x1"),
    ]
    rows, labels = [], []
    for klass in range(2):
        for _ in range(50):
            nominal = [klass if rng.random() > 0.2 else rng.integers(0, 3)
                       for _ in range(2)]
            numeric = rng.normal(klass * 3.0, 1.0, size=2)
            rows.append(list(map(float, nominal)) + numeric.tolist())
            labels.append(f"c{klass}")
    return MLDataset(attributes, np.asarray(rows), labels)
