"""Property-based tests (hypothesis) for the ML substrate invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ml import (
    Attribute,
    MLDataset,
    NaiveBayesClassifier,
    accuracy,
    confusion_matrix,
    from_arff,
    mean_absolute_error,
    precision_recall_f1,
    root_mean_squared_error,
    to_arff,
    weighted_f_measure,
)

label_arrays = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60)
value_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

#: Pairs of equally-long label / value lists (predictions aligned with truth).
label_pairs = st.integers(min_value=1, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n),
        st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n),
    )
)
value_pairs = st.integers(min_value=1, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                           allow_infinity=False), min_size=n, max_size=n),
        st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                           allow_infinity=False), min_size=n, max_size=n),
    )
)


class TestMetricProperties:
    @given(y=label_arrays)
    @settings(max_examples=60, deadline=None)
    def test_perfect_prediction_scores_one(self, y):
        assert accuracy(y, y) == 1.0
        assert weighted_f_measure(y, y) == 1.0

    @given(pair=label_pairs)
    @settings(max_examples=60, deadline=None)
    def test_scores_bounded(self, pair):
        y_true, y_pred = pair
        f = weighted_f_measure(y_true, y_pred)
        a = accuracy(y_true, y_pred)
        assert 0.0 <= f <= 1.0
        assert 0.0 <= a <= 1.0

    @given(pair=label_pairs)
    @settings(max_examples=60, deadline=None)
    def test_confusion_matrix_totals(self, pair):
        y_true, y_pred = pair
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.sum() == len(y_true)
        assert np.all(matrix >= 0)

    @given(y_true=label_arrays)
    @settings(max_examples=60, deadline=None)
    def test_f1_zero_when_no_true_positives(self, y_true):
        # Shift every label so no prediction is ever correct.
        y_pred = [(t + 1) % 5 for t in y_true]
        assert weighted_f_measure(y_true, y_pred) == 0.0
        assert accuracy(y_true, y_pred) == 0.0

    @given(values=value_arrays)
    @settings(max_examples=60, deadline=None)
    def test_regression_metrics_zero_on_identity(self, values):
        assert mean_absolute_error(values, values) == 0.0
        assert root_mean_squared_error(values, values) == 0.0

    @given(pair=value_pairs)
    @settings(max_examples=60, deadline=None)
    def test_rmse_dominates_mae(self, pair):
        y_true, y_pred = pair
        assert root_mean_squared_error(y_true, y_pred) >= mean_absolute_error(
            y_true, y_pred
        ) - 1e-9


def _dataset_strategy():
    """Small random mixed-schema datasets with at least two classes."""
    n_rows = st.integers(min_value=4, max_value=25)
    n_nominal = st.integers(min_value=1, max_value=3)
    n_numeric = st.integers(min_value=0, max_value=3)
    return st.tuples(n_rows, n_nominal, n_numeric, st.integers(min_value=0, max_value=10_000))


@given(shape=_dataset_strategy())
@settings(max_examples=40, deadline=None)
def test_arff_round_trip_property(shape):
    n_rows, n_nominal, n_numeric, seed = shape
    rng = np.random.default_rng(seed)
    attributes = [
        Attribute.nominal(f"n{i}", ("a", "b", "c")) for i in range(n_nominal)
    ] + [Attribute.numeric(f"x{i}") for i in range(n_numeric)]
    nominal_part = rng.integers(0, 3, size=(n_rows, n_nominal)).astype(float)
    numeric_part = rng.normal(0.0, 100.0, size=(n_rows, n_numeric))
    X = np.hstack([nominal_part, numeric_part]) if n_numeric else nominal_part
    labels = [f"c{int(i)}" for i in rng.integers(0, 2, size=n_rows)]
    labels[0] = "c0"
    labels[-1] = "c1"
    dataset = MLDataset(attributes, X, labels, class_names=["c0", "c1"])

    restored = from_arff(to_arff(dataset))
    assert restored.attributes == dataset.attributes
    assert restored.class_names == dataset.class_names
    assert np.allclose(restored.X, dataset.X)
    assert np.array_equal(restored.y, dataset.y)


@given(shape=_dataset_strategy())
@settings(max_examples=30, deadline=None)
def test_naive_bayes_predictions_always_valid(shape):
    """Whatever the (small, random) training data, predictions are valid class
    indices and probabilities sum to one."""
    n_rows, n_nominal, n_numeric, seed = shape
    rng = np.random.default_rng(seed)
    attributes = [
        Attribute.nominal(f"n{i}", ("a", "b", "c")) for i in range(n_nominal)
    ] + [Attribute.numeric(f"x{i}") for i in range(n_numeric)]
    nominal_part = rng.integers(0, 3, size=(n_rows, n_nominal)).astype(float)
    numeric_part = rng.normal(0.0, 10.0, size=(n_rows, n_numeric))
    X = np.hstack([nominal_part, numeric_part]) if n_numeric else nominal_part
    labels = [f"c{int(i)}" for i in rng.integers(0, 2, size=n_rows)]
    labels[0] = "c0"
    labels[-1] = "c1"
    dataset = MLDataset(attributes, X, labels, class_names=["c0", "c1"])

    model = NaiveBayesClassifier().fit(dataset)
    predictions = model.predict(dataset)
    assert predictions.shape == (n_rows,)
    assert set(predictions.tolist()) <= {0, 1}
    probabilities = model.predict_proba(dataset)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(probabilities >= 0.0)
