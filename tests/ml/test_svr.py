"""Unit tests for repro.ml.svr (the raw-value forecasting baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml import KernelSVR, LinearSVR, mean_absolute_error


def _linear_problem(rng, n=120, d=4, noise=0.05):
    X = rng.uniform(-1, 1, size=(n, d))
    weights = np.array([2.0, -1.0, 0.5, 3.0][:d])
    y = X @ weights + 5.0 + rng.normal(0, noise, size=n)
    return X, y


def _nonlinear_problem(rng, n=150):
    X = rng.uniform(-2, 2, size=(n, 1))
    y = np.sin(2.0 * X[:, 0]) * 10.0 + rng.normal(0, 0.2, size=n)
    return X, y


class TestLinearSVR:
    def test_fits_linear_relationship(self, rng):
        X, y = _linear_problem(rng)
        model = LinearSVR(n_iterations=800, learning_rate=0.05)
        predictions = model.fit(X, y).predict(X)
        assert mean_absolute_error(y, predictions) < 0.5

    def test_generalises(self, rng):
        X, y = _linear_problem(rng, n=200)
        model = LinearSVR(n_iterations=800, learning_rate=0.05).fit(X[:150], y[:150])
        assert mean_absolute_error(y[150:], model.predict(X[150:])) < 0.8

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            LinearSVR(c=0.0)
        with pytest.raises(DatasetError):
            LinearSVR(epsilon=-0.1)

    def test_shape_validation(self, rng):
        model = LinearSVR()
        with pytest.raises(DatasetError):
            model.fit(rng.normal(size=(5, 2)), rng.normal(size=4))
        with pytest.raises(DatasetError):
            model.fit(np.zeros((0, 2)), np.zeros(0))

    def test_unfitted_prediction_rejected(self, rng):
        with pytest.raises(NotFittedError):
            LinearSVR().predict(rng.normal(size=(3, 2)))


class TestKernelSVR:
    def test_rbf_fits_nonlinear_relationship(self, rng):
        X, y = _nonlinear_problem(rng)
        model = KernelSVR(kernel="rbf", gamma=2.0, n_iterations=600)
        predictions = model.fit(X, y).predict(X)
        assert mean_absolute_error(y, predictions) < 2.0

    def test_rbf_beats_linear_on_nonlinear_data(self, rng):
        X, y = _nonlinear_problem(rng)
        rbf = KernelSVR(kernel="rbf", gamma=2.0, n_iterations=600).fit(X, y)
        linear = LinearSVR(n_iterations=600).fit(X, y)
        rbf_error = mean_absolute_error(y, rbf.predict(X))
        linear_error = mean_absolute_error(y, linear.predict(X))
        assert rbf_error < linear_error

    def test_linear_kernel_option(self, rng):
        X, y = _linear_problem(rng)
        model = KernelSVR(kernel="linear", n_iterations=800)
        predictions = model.fit(X, y).predict(X)
        assert mean_absolute_error(y, predictions) < 1.5

    def test_invalid_kernel_rejected(self):
        with pytest.raises(DatasetError):
            KernelSVR(kernel="poly")
        with pytest.raises(DatasetError):
            KernelSVR(c=-1.0)

    def test_prediction_shape(self, rng):
        X, y = _nonlinear_problem(rng, n=60)
        model = KernelSVR(n_iterations=100).fit(X, y)
        assert model.predict(X[:7]).shape == (7,)

    def test_scale_invariance_of_target(self, rng):
        # Internally standardised, so a target in kilowatts behaves like one
        # in watts (relative errors comparable).
        X, y = _linear_problem(rng)
        watts = KernelSVR(n_iterations=400).fit(X, y * 1000.0).predict(X)
        assert mean_absolute_error(y * 1000.0, watts) / 1000.0 < 1.0
