"""Unit tests for repro.ml.metrics and repro.ml.crossval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml import (
    NaiveBayesClassifier,
    accuracy,
    classification_report,
    confusion_matrix,
    cross_validate,
    mean_absolute_error,
    mean_absolute_percentage_error,
    precision_recall_f1,
    root_mean_squared_error,
    stratified_folds,
    weighted_f_measure,
)
from .conftest import make_nominal_dataset


class TestClassificationMetrics:
    def test_confusion_matrix_layout(self):
        y_true = [0, 0, 1, 1, 2]
        y_pred = [0, 1, 1, 1, 0]
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[2, 0] == 1

    def test_perfect_prediction(self):
        y = [0, 1, 2, 1, 0]
        assert accuracy(y, y) == 1.0
        assert weighted_f_measure(y, y) == 1.0

    def test_all_wrong_prediction(self):
        y_true = [0, 0, 1, 1]
        y_pred = [1, 1, 0, 0]
        assert accuracy(y_true, y_pred) == 0.0
        assert weighted_f_measure(y_true, y_pred) == 0.0

    def test_hand_computed_f_measure(self):
        # Class 0: precision 2/3, recall 2/2 -> F1 = 0.8 (support 2)
        # Class 1: precision 1/1, recall 1/2 -> F1 = 2/3 (support 2)
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 1]
        scores = precision_recall_f1(y_true, y_pred)
        assert scores["f1"][0] == pytest.approx(0.8)
        assert scores["f1"][1] == pytest.approx(2.0 / 3.0)
        assert weighted_f_measure(y_true, y_pred) == pytest.approx(0.5 * 0.8 + 0.5 * 2 / 3)

    def test_missing_class_gets_zero_f1(self):
        y_true = [0, 0, 1]
        y_pred = [0, 0, 0]
        scores = precision_recall_f1(y_true, y_pred, n_classes=2)
        assert scores["f1"][1] == 0.0

    def test_classification_report_bundle(self):
        y_true = [0, 1, 1, 0]
        y_pred = [0, 1, 0, 0]
        report = classification_report(y_true, y_pred)
        assert 0.0 < report.f_measure <= 1.0
        assert report.accuracy == 0.75
        assert report.confusion.shape == (2, 2)
        assert "F-measure" in str(report)

    def test_empty_and_mismatched_inputs_rejected(self):
        with pytest.raises(DatasetError):
            accuracy([], [])
        with pytest.raises(DatasetError):
            accuracy([1, 2], [1])


class TestRegressionMetrics:
    def test_mae_rmse_mape(self):
        y_true = [100.0, 200.0, 300.0]
        y_pred = [110.0, 190.0, 330.0]
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(50.0 / 3.0)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt((100 + 100 + 900) / 3.0)
        )
        assert mean_absolute_percentage_error(y_true, y_pred) == pytest.approx(
            (0.1 + 0.05 + 0.1) / 3.0
        )

    def test_perfect_forecast(self):
        y = [5.0, 6.0]
        assert mean_absolute_error(y, y) == 0.0
        assert root_mean_squared_error(y, y) == 0.0


class TestCrossValidation:
    def test_stratified_folds_partition_all_instances(self, nominal_data, rng):
        folds = stratified_folds(nominal_data, 10, rng)
        assert len(folds) == 10
        all_indices = np.concatenate(folds)
        assert sorted(all_indices.tolist()) == list(range(len(nominal_data)))

    def test_folds_are_class_balanced(self, nominal_data, rng):
        folds = stratified_folds(nominal_data, 4, rng)
        for fold in folds:
            labels = nominal_data.y[fold]
            counts = np.bincount(labels, minlength=3)
            assert counts.max() - counts.min() <= 1

    def test_too_many_folds_rejected(self, rng):
        tiny = make_nominal_dataset(n_per_class=1, n_classes=2)
        with pytest.raises(DatasetError):
            stratified_folds(tiny, 10, rng)
        with pytest.raises(DatasetError):
            stratified_folds(tiny, 1, rng)

    def test_cross_validate_scores_and_timing(self, nominal_data):
        result = cross_validate(lambda: NaiveBayesClassifier(), nominal_data,
                                n_folds=5, seed=1)
        assert result.n_folds == 5
        assert 0.8 < result.f_measure <= 1.0
        assert len(result.fold_f_measures) == 5
        assert result.fit_seconds > 0.0
        assert result.predict_seconds > 0.0
        assert result.total_seconds == pytest.approx(
            result.fit_seconds + result.predict_seconds
        )
        assert "F-measure" in str(result)

    def test_cross_validate_is_deterministic_given_seed(self, nominal_data):
        a = cross_validate(lambda: NaiveBayesClassifier(), nominal_data, 5, seed=3)
        b = cross_validate(lambda: NaiveBayesClassifier(), nominal_data, 5, seed=3)
        assert a.f_measure == b.f_measure
