"""Regenerate the ML parity golden files.

Run from the repository root::

    PYTHONPATH=src python tests/ml/_generate_goldens.py

The checked-in goldens were produced by the **pre-vectorization**
implementations (PR 1 state of ``repro.ml`` / ``repro.analytics``); the
vectorized engine must reproduce them exactly.  Only regenerate if the
*intended semantics* of a learner change, and say so in the commit message.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.analytics.forecasting import raw_forecast, symbolic_forecast
from repro.analytics.segmentation import KMeans
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    NaiveBayesClassifier,
    RandomForestClassifier,
)
from repro.ml.crossval import cross_validate, stratified_folds
from repro.ml.svr import KernelSVR, LinearSVR

try:
    from ._parity_cases import (
        GOLDEN_DIR,
        blob_matrix,
        classification_cases,
        hourly_series,
        regression_data,
    )
except ImportError:  # executed directly as a script
    from _parity_cases import (
        GOLDEN_DIR,
        blob_matrix,
        classification_cases,
        hourly_series,
        regression_data,
    )

CLASSIFIER_BUILDERS = {
    "tree_default": lambda: DecisionTreeClassifier(),
    "tree_limited": lambda: DecisionTreeClassifier(max_depth=4, min_samples_split=4),
    "tree_subspace": lambda: DecisionTreeClassifier(max_features=3, random_state=7),
    "forest": lambda: RandomForestClassifier(n_trees=10, random_state=3),
    "naive_bayes": lambda: NaiveBayesClassifier(),
    "logistic": lambda: LogisticRegressionClassifier(n_iterations=150),
}

CROSSVAL_BUILDERS = {
    "naive_bayes": lambda: NaiveBayesClassifier(),
    "j48": lambda: DecisionTreeClassifier(),
    "random_forest": lambda: RandomForestClassifier(n_trees=8, random_state=1),
}


def classifier_goldens() -> Dict:
    out: Dict = {}
    for case_name, dataset in classification_cases().items():
        case: Dict = {}
        for model_name, build in CLASSIFIER_BUILDERS.items():
            model = build().fit(dataset)
            entry: Dict = {"predictions": model.predict(dataset).tolist()}
            if hasattr(model, "depth"):
                entry["depth"] = int(model.depth)
                entry["n_nodes"] = int(model.n_nodes)
            case[model_name] = entry
        out[case_name] = case
    return out


def crossval_goldens() -> Dict:
    out: Dict = {}
    for case_name in ("day_vectors", "lag_symbols"):
        dataset = classification_cases()[case_name]
        folds = stratified_folds(dataset, 10, np.random.default_rng(0))
        entry: Dict = {"folds": [fold.tolist() for fold in folds], "models": {}}
        for model_name, build in CROSSVAL_BUILDERS.items():
            result = cross_validate(build, dataset, n_folds=10, seed=0)
            entry["models"][model_name] = {
                "f_measure": result.f_measure,
                "accuracy": result.accuracy,
                "fold_f_measures": result.fold_f_measures,
            }
        out[case_name] = entry
    return out


def svr_goldens() -> Dict:
    X_train, y_train = regression_data(seed=10)
    X_test, _ = regression_data(seed=11)
    out: Dict = {}
    for name, model in (
        ("linear", LinearSVR()),
        ("rbf", KernelSVR(kernel="rbf")),
        ("kernel_linear", KernelSVR(kernel="linear")),
    ):
        model.fit(X_train, y_train)
        out[name] = {
            "train_predictions": model.predict(X_train).tolist(),
            "test_predictions": model.predict(X_test).tolist(),
        }
    return out


def kmeans_goldens() -> Dict:
    X = blob_matrix(seed=12)
    model = KMeans(n_clusters=3, seed=0)
    assignments = model.fit_predict(X)
    return {
        "assignments": assignments.tolist(),
        "inertia": model.inertia_,
        "centroids": model.centroids.tolist(),
    }


def forecast_goldens() -> Dict:
    series = hourly_series(seed=20)
    out: Dict = {}
    for classifier in ("naive_bayes", "random_forest"):
        result = symbolic_forecast(series, method="median", classifier=classifier)
        out[f"symbolic_{classifier}"] = {
            "mae": result.mae,
            "rmse": result.rmse,
            "predictions": list(result.predictions),
        }
    raw = raw_forecast(series)
    out["raw_svr"] = {
        "mae": raw.mae,
        "rmse": raw.rmse,
        "predictions": list(raw.predictions),
    }
    return out


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    groups = {
        "classifiers": classifier_goldens(),
        "crossval": crossval_goldens(),
        "svr": svr_goldens(),
        "kmeans": kmeans_goldens(),
        "forecast": forecast_goldens(),
    }
    for name, payload in groups.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
