"""Unit tests for repro.ml.arff (Weka interoperability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml import Attribute, MLDataset, from_arff, read_arff, to_arff, write_arff
from .conftest import make_nominal_dataset, make_numeric_dataset


class TestExport:
    def test_header_declares_all_attributes(self, mixed_data):
        text = to_arff(mixed_data, relation="mixed")
        assert text.startswith("@relation mixed")
        assert text.count("@attribute") == mixed_data.n_attributes + 1
        assert "@attribute class {c0,c1}" in text
        assert "@data" in text

    def test_nominal_cells_use_category_names(self, nominal_data):
        text = to_arff(nominal_data)
        data_section = text.split("@data\n", 1)[1]
        first_row = data_section.splitlines()[0]
        assert first_row.endswith(",c0")
        assert all(cell.startswith("v") or cell.startswith("c")
                   for cell in first_row.split(","))

    def test_quoting_of_special_names(self):
        attributes = [Attribute.nominal("slot 0", ["low value", "high"])]
        dataset = MLDataset(attributes, [[0.0]], ["house 1"])
        text = to_arff(dataset)
        assert "'slot 0'" in text
        assert "'low value'" in text
        assert "'house 1'" in text


class TestRoundTrip:
    def _assert_equal(self, a: MLDataset, b: MLDataset) -> None:
        assert a.attributes == b.attributes
        assert a.class_names == b.class_names
        assert np.allclose(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_nominal_round_trip(self, nominal_data):
        self._assert_equal(nominal_data, from_arff(to_arff(nominal_data)))

    def test_numeric_round_trip(self, numeric_data):
        self._assert_equal(numeric_data, from_arff(to_arff(numeric_data)))

    def test_mixed_round_trip(self, mixed_data):
        self._assert_equal(mixed_data, from_arff(to_arff(mixed_data)))

    def test_quoted_round_trip(self):
        attributes = [Attribute.nominal("slot 0", ["low value", "high"]),
                      Attribute.numeric("power, W")]
        dataset = MLDataset(attributes, [[0.0, 1.5], [1.0, 2.5]],
                            ["house 1", "house 2"])
        self._assert_equal(dataset, from_arff(to_arff(dataset)))

    def test_file_round_trip(self, tmp_path, nominal_data):
        path = write_arff(nominal_data, tmp_path / "data.arff")
        loaded = read_arff(path)
        self._assert_equal(nominal_data, loaded)

    def test_day_vectors_round_trip(self, small_redd):
        from repro.analytics import DayVectorConfig, build_day_vectors

        vectors = build_day_vectors(small_redd, DayVectorConfig("median", 3600.0, 4))
        self._assert_equal(vectors, from_arff(to_arff(vectors)))


class TestParsingErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_arff(tmp_path / "absent.arff")

    def test_no_attributes(self):
        with pytest.raises(DatasetError):
            from_arff("@relation x\n@data\n")

    def test_numeric_class_rejected(self):
        text = "@relation x\n@attribute a numeric\n@attribute class numeric\n@data\n1,2\n"
        with pytest.raises(DatasetError):
            from_arff(text)

    def test_row_arity_checked(self):
        text = ("@relation x\n@attribute a numeric\n@attribute class {p,q}\n"
                "@data\n1.0,p,extra\n")
        with pytest.raises(DatasetError):
            from_arff(text)

    def test_unsupported_attribute_type(self):
        with pytest.raises(DatasetError):
            from_arff("@relation x\n@attribute a string\n@attribute class {p}\n@data\n")

    def test_comments_and_blank_lines_ignored(self):
        text = ("% comment\n\n@relation x\n@attribute a numeric\n"
                "@attribute class {p,q}\n\n@data\n% another\n1.0,p\n")
        dataset = from_arff(text)
        assert len(dataset) == 1
        assert dataset.label_of(0) == "p"
