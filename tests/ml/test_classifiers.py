"""Unit tests for the four Weka stand-in classifiers.

Each classifier must (a) learn separable data well above chance, (b) handle
nominal, numeric and mixed schemas, (c) refuse prediction before fitting and
(d) reject mismatched schemas at prediction time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml import (
    Attribute,
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    MLDataset,
    NaiveBayesClassifier,
    RandomForestClassifier,
    accuracy,
)
from .conftest import make_nominal_dataset, make_numeric_dataset

ALL_CLASSIFIERS = [
    ("naive_bayes", lambda: NaiveBayesClassifier()),
    ("j48", lambda: DecisionTreeClassifier()),
    ("random_forest", lambda: RandomForestClassifier(n_trees=15, random_state=0)),
    ("logistic", lambda: LogisticRegressionClassifier(n_iterations=200)),
]


@pytest.mark.parametrize("name,factory", ALL_CLASSIFIERS)
class TestAllClassifiers:
    def test_learns_nominal_data(self, name, factory, nominal_data):
        model = factory().fit(nominal_data)
        predictions = model.predict(nominal_data)
        assert accuracy(nominal_data.y, predictions) > 0.9

    def test_learns_numeric_data(self, name, factory, numeric_data):
        model = factory().fit(numeric_data)
        predictions = model.predict(numeric_data)
        assert accuracy(numeric_data.y, predictions) > 0.9

    def test_learns_mixed_data(self, name, factory, mixed_data):
        model = factory().fit(mixed_data)
        predictions = model.predict(mixed_data)
        assert accuracy(mixed_data.y, predictions) > 0.85

    def test_generalises_to_unseen_split(self, name, factory):
        train = make_nominal_dataset(seed=1)
        test = make_nominal_dataset(seed=2)
        model = factory().fit(train)
        predictions = model.predict(test)
        assert accuracy(test.y, predictions) > 0.8

    def test_unfitted_prediction_rejected(self, name, factory, nominal_data):
        with pytest.raises(NotFittedError):
            factory().predict(nominal_data)

    def test_predict_labels_returns_class_names(self, name, factory, nominal_data):
        model = factory().fit(nominal_data)
        labels = model.predict_labels(nominal_data)
        assert set(labels) <= set(nominal_data.class_names)
        assert len(labels) == len(nominal_data)


class TestNaiveBayes:
    def test_predict_proba_rows_sum_to_one(self, mixed_data):
        model = NaiveBayesClassifier().fit(mixed_data)
        probabilities = model.predict_proba(mixed_data)
        assert probabilities.shape == (len(mixed_data), 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_laplace_smoothing_handles_unseen_categories(self):
        categories = ["a", "b", "c"]
        attributes = [Attribute.nominal("f", categories)]
        train = MLDataset(attributes, [[0.0], [0.0], [1.0], [1.0]],
                          ["x", "x", "y", "y"])
        model = NaiveBayesClassifier().fit(train)
        # Category "c" never appeared during training; prediction must not fail.
        test = MLDataset(attributes, [[2.0]], ["x"], class_names=["x", "y"])
        assert model.predict(test).shape == (1,)

    def test_schema_mismatch_rejected(self, nominal_data, numeric_data):
        model = NaiveBayesClassifier().fit(nominal_data)
        with pytest.raises(DatasetError):
            model.predict(numeric_data)

    def test_negative_laplace_rejected(self):
        with pytest.raises(DatasetError):
            NaiveBayesClassifier(laplace=-1.0)

    def test_priors_influence_prediction_on_uninformative_data(self):
        attributes = [Attribute.nominal("f", ["a"])]
        rows = [[0.0]] * 10
        labels = ["major"] * 8 + ["minor"] * 2
        model = NaiveBayesClassifier().fit(MLDataset(attributes, rows, labels))
        test = MLDataset(attributes, [[0.0]], ["major"], class_names=["major", "minor"])
        assert model.predict_labels(test) == ["major"]


class TestDecisionTree:
    def test_tree_introspection(self, nominal_data):
        model = DecisionTreeClassifier().fit(nominal_data)
        assert model.depth >= 2
        assert model.n_nodes >= 3

    def test_max_depth_limits_tree(self, nominal_data):
        stump = DecisionTreeClassifier(max_depth=2).fit(nominal_data)
        deep = DecisionTreeClassifier().fit(nominal_data)
        assert stump.depth <= 2
        assert deep.depth >= stump.depth

    def test_min_samples_split_validation(self):
        with pytest.raises(DatasetError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_single_class_data_gives_leaf(self):
        attributes = [Attribute.numeric("x")]
        data = MLDataset(attributes, [[1.0], [2.0], [3.0]], ["only"] * 3)
        model = DecisionTreeClassifier().fit(data)
        assert model.depth == 1
        assert model.predict(data).tolist() == [0, 0, 0]

    def test_empty_dataset_rejected(self):
        attributes = [Attribute.numeric("x")]
        empty = MLDataset(attributes, np.zeros((0, 1)), [], class_names=["a"])
        with pytest.raises(DatasetError):
            DecisionTreeClassifier().fit(empty)

    def test_numeric_threshold_split_found(self):
        attributes = [Attribute.numeric("x")]
        rows = [[float(i)] for i in range(20)]
        labels = ["low"] * 10 + ["high"] * 10
        model = DecisionTreeClassifier().fit(MLDataset(attributes, rows, labels))
        test = MLDataset(attributes, [[2.0], [17.0]], ["low", "high"],
                         class_names=["high", "low"])
        assert model.predict_labels(test) == ["low", "high"]


class TestRandomForest:
    def test_forest_beats_or_matches_single_tree_on_noisy_data(self):
        train = make_nominal_dataset(noise=0.35, seed=10)
        test = make_nominal_dataset(noise=0.35, seed=11)
        tree_accuracy = accuracy(
            test.y, DecisionTreeClassifier(random_state=1).fit(train).predict(test)
        )
        forest_accuracy = accuracy(
            test.y,
            RandomForestClassifier(n_trees=25, random_state=1).fit(train).predict(test),
        )
        assert forest_accuracy >= tree_accuracy - 0.05

    def test_deterministic_given_seed(self, nominal_data):
        a = RandomForestClassifier(n_trees=5, random_state=3).fit(nominal_data)
        b = RandomForestClassifier(n_trees=5, random_state=3).fit(nominal_data)
        assert np.array_equal(a.predict(nominal_data), b.predict(nominal_data))

    def test_n_trees_validation(self):
        with pytest.raises(DatasetError):
            RandomForestClassifier(n_trees=0)

    def test_trees_property_exposes_fitted_trees(self, nominal_data):
        model = RandomForestClassifier(n_trees=7, random_state=0).fit(nominal_data)
        assert len(model.trees) == 7

    def test_predict_proba_shape(self, nominal_data):
        model = RandomForestClassifier(n_trees=5, random_state=0).fit(nominal_data)
        probabilities = model.predict_proba(nominal_data)
        assert probabilities.shape == (len(nominal_data), 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0)


class TestLogisticRegression:
    def test_probabilities_sum_to_one(self, numeric_data):
        model = LogisticRegressionClassifier().fit(numeric_data)
        probabilities = model.predict_proba(numeric_data)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            LogisticRegressionClassifier(learning_rate=0.0)
        with pytest.raises(DatasetError):
            LogisticRegressionClassifier(n_iterations=0)
        with pytest.raises(DatasetError):
            LogisticRegressionClassifier(regularization=-1.0)

    def test_regularisation_shrinks_confidence(self, numeric_data):
        loose = LogisticRegressionClassifier(regularization=1e-6, n_iterations=300)
        tight = LogisticRegressionClassifier(regularization=1.0, n_iterations=300)
        p_loose = loose.fit(numeric_data).predict_proba(numeric_data).max(axis=1).mean()
        p_tight = tight.fit(numeric_data).predict_proba(numeric_data).max(axis=1).mean()
        assert p_tight < p_loose

    def test_schema_mismatch_rejected(self, numeric_data, nominal_data):
        model = LogisticRegressionClassifier().fit(numeric_data)
        with pytest.raises(DatasetError):
            model.predict(nominal_data)
