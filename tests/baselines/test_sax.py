"""Unit tests for repro.baselines.sax."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SAXEncoder, gaussian_breakpoints, mindist, znormalize
from repro.errors import SegmentationError


class TestBreakpoints:
    def test_tabulated_values(self):
        # Classic SAX table values.
        assert gaussian_breakpoints(2) == pytest.approx([0.0], abs=1e-9)
        assert gaussian_breakpoints(3) == pytest.approx([-0.4307, 0.4307], abs=1e-3)
        assert gaussian_breakpoints(4) == pytest.approx([-0.6745, 0.0, 0.6745], abs=1e-3)

    def test_breakpoints_sorted_and_symmetric(self):
        for k in (2, 4, 8, 16):
            beta = gaussian_breakpoints(k)
            assert beta == sorted(beta)
            assert beta == pytest.approx([-b for b in reversed(beta)], abs=1e-9)

    def test_invalid_size(self):
        with pytest.raises(SegmentationError):
            gaussian_breakpoints(1)


class TestZNormalize:
    def test_zero_mean_unit_variance(self, rng):
        values = rng.normal(100.0, 20.0, size=1000)
        normed = znormalize(values)
        assert normed.mean() == pytest.approx(0.0, abs=1e-9)
        assert normed.std() == pytest.approx(1.0, abs=1e-9)

    def test_constant_series_maps_to_zeros(self):
        assert znormalize(np.full(10, 5.0)).tolist() == [0.0] * 10


class TestSAXEncoder:
    def test_equiprobable_symbols_on_gaussian_data(self, rng):
        values = rng.normal(0.0, 1.0, size=8000)
        encoder = SAXEncoder(alphabet_size=8, normalize=True)
        word = encoder.transform_values(values)
        counts = np.bincount(np.asarray(word.indices), minlength=8)
        assert counts.min() > 0.8 * len(values) / 8
        assert counts.max() < 1.2 * len(values) / 8

    def test_paa_reduces_word_length(self, house1_series):
        encoder = SAXEncoder(alphabet_size=8, segments=24)
        word = encoder.transform(house1_series)
        assert len(word) == 24
        assert len(word.letters) == 24
        assert set(word.letters) <= set("abcdefgh")

    def test_normalization_erases_consumption_level(self):
        # The paper's Figure 3 argument: after z-normalisation a big consumer
        # and a small consumer with the same shape become identical, whereas
        # the paper's shared (un-normalised) lookup table keeps them apart.
        from repro.core import LookupTable

        small = np.array([100.0, 120.0, 100.0, 130.0] * 6)
        big = small * 10.0
        encoder = SAXEncoder(alphabet_size=4, segments=8, normalize=True)
        assert encoder.transform_values(small).indices == encoder.transform_values(big).indices
        shared = LookupTable.fit(np.concatenate([small, big]), 4, method="median")
        assert (
            shared.indices_for_values(small).tolist()
            != shared.indices_for_values(big).tolist()
        )

    def test_reconstruct_shape(self, rng):
        values = rng.normal(0.0, 1.0, size=64)
        encoder = SAXEncoder(alphabet_size=8, segments=16)
        word = encoder.transform_values(values)
        recon = encoder.reconstruct(word)
        assert recon.shape == (16,)

    def test_empty_input_rejected(self):
        with pytest.raises(SegmentationError):
            SAXEncoder().transform_values(np.array([]))


class TestMindist:
    def test_identical_words_distance_zero(self, rng):
        values = rng.normal(size=64)
        encoder = SAXEncoder(alphabet_size=8, segments=8)
        word = encoder.transform_values(values)
        assert mindist(word, word, 64) == 0.0

    def test_adjacent_symbols_contribute_zero(self):
        encoder = SAXEncoder(alphabet_size=4, segments=4)
        a = encoder.transform_values(np.array([0.0, 0.0, 1.0, 1.0] * 4))
        b = encoder.transform_values(np.array([0.1, 0.1, 0.9, 0.9] * 4))
        assert mindist(a, b, 16) <= mindist(a, a, 16) + 1.0

    def test_lower_bounds_euclidean_distance(self, rng):
        # MINDIST must lower-bound the true Euclidean distance of the
        # z-normalised series (the SAX contract).
        for _ in range(10):
            x = rng.normal(size=64)
            y = rng.normal(size=64)
            encoder = SAXEncoder(alphabet_size=8, segments=8)
            wx, wy = encoder.transform_values(x), encoder.transform_values(y)
            true_distance = float(np.linalg.norm(znormalize(x) - znormalize(y)))
            assert mindist(wx, wy, 64) <= true_distance + 1e-6

    def test_mismatched_words_rejected(self, rng):
        encoder8 = SAXEncoder(alphabet_size=8, segments=8)
        encoder4 = SAXEncoder(alphabet_size=4, segments=8)
        x = rng.normal(size=64)
        with pytest.raises(SegmentationError):
            mindist(encoder8.transform_values(x), encoder4.transform_values(x), 64)
