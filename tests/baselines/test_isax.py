"""Unit tests for repro.baselines.isax."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ISAXEncoder,
    ISAXIndex,
    ISAXSymbol,
    ISAXWord,
    isax_mindist,
    znormalize,
)
from repro.errors import SegmentationError


class TestISAXSymbol:
    def test_word_and_bits(self):
        symbol = ISAXSymbol(index=5, cardinality=8)
        assert symbol.bits == 3
        assert symbol.word == "101"

    def test_invalid_cardinality_or_index(self):
        with pytest.raises(SegmentationError):
            ISAXSymbol(index=0, cardinality=3)
        with pytest.raises(SegmentationError):
            ISAXSymbol(index=8, cardinality=8)

    def test_promote_demote_round_trip(self):
        symbol = ISAXSymbol(index=2, cardinality=4)
        promoted = symbol.promote(16)
        assert promoted.cardinality == 16
        assert promoted.demote(4) == symbol

    def test_promote_demote_direction_guards(self):
        symbol = ISAXSymbol(index=2, cardinality=4)
        with pytest.raises(SegmentationError):
            symbol.promote(2)
        with pytest.raises(SegmentationError):
            symbol.demote(8)

    def test_containment(self):
        coarse = ISAXSymbol(index=1, cardinality=2)  # upper half
        fine_inside = ISAXSymbol(index=3, cardinality=4)
        fine_outside = ISAXSymbol(index=0, cardinality=4)
        assert coarse.contains(fine_inside)
        assert not coarse.contains(fine_outside)


class TestISAXEncoderAndWord:
    def test_word_length_and_cardinality(self, rng):
        encoder = ISAXEncoder(segments=8, cardinality=16)
        word = encoder.transform_values(rng.normal(size=128))
        assert len(word) == 8
        assert set(word.cardinalities) == {16}

    def test_demote_whole_word(self, rng):
        encoder = ISAXEncoder(segments=8, cardinality=16)
        word = encoder.transform_values(rng.normal(size=128))
        coarse = word.demote(4)
        assert set(coarse.cardinalities) == {4}
        assert coarse.contains(word)

    def test_str_contains_cardinalities(self, rng):
        encoder = ISAXEncoder(segments=4, cardinality=8)
        word = encoder.transform_values(rng.normal(size=64))
        assert "(8)" in str(word)

    def test_invalid_parameters(self):
        with pytest.raises(SegmentationError):
            ISAXEncoder(segments=0)
        with pytest.raises(SegmentationError):
            ISAXEncoder(cardinality=5)
        with pytest.raises(SegmentationError):
            ISAXEncoder().transform_values(np.array([]))


class TestMindist:
    def test_identical_words(self, rng):
        encoder = ISAXEncoder(segments=8, cardinality=16)
        word = encoder.transform_values(rng.normal(size=128))
        assert isax_mindist(word, word, 128) == 0.0

    def test_mixed_cardinality_lower_bounds_distance(self, rng):
        for _ in range(5):
            x, y = rng.normal(size=64), rng.normal(size=64)
            fine = ISAXEncoder(segments=8, cardinality=16)
            wx = fine.transform_values(x)
            wy = fine.transform_values(y).demote(4)  # coarser second word
            true_distance = float(np.linalg.norm(znormalize(x) - znormalize(y)))
            assert isax_mindist(wx, wy, 64) <= true_distance + 1e-6

    def test_length_mismatch_rejected(self, rng):
        a = ISAXEncoder(segments=8).transform_values(rng.normal(size=64))
        b = ISAXEncoder(segments=4).transform_values(rng.normal(size=64))
        with pytest.raises(SegmentationError):
            isax_mindist(a, b, 64)


class TestISAXIndex:
    def _patterns(self, rng, n=60, length=96):
        # Three distinct daily shapes so approximate search has structure.
        base_shapes = [
            np.sin(np.linspace(0, 2 * np.pi, length)),
            np.concatenate([np.zeros(length // 2), np.ones(length - length // 2)]),
            np.linspace(0, 1, length),
        ]
        data = []
        for i in range(n):
            shape = base_shapes[i % 3]
            data.append(shape * 100 + rng.normal(0, 5, size=length), )
        return data

    def test_insert_and_size(self, rng):
        index = ISAXIndex(segments=8, leaf_capacity=4)
        for i, series in enumerate(self._patterns(rng, n=30)):
            index.insert(series, payload=i % 3)
        assert len(index) == 30

    def test_approximate_search_finds_same_shape(self, rng):
        index = ISAXIndex(segments=8, leaf_capacity=4)
        patterns = self._patterns(rng, n=60)
        for i, series in enumerate(patterns):
            index.insert(series, payload=i % 3)
        hits = 0
        for shape_id in range(3):
            query = patterns[shape_id] + rng.normal(0, 5, size=len(patterns[shape_id]))
            results = index.approximate_search(query, k=1)
            assert results
            if results[0][0] == shape_id:
                hits += 1
        assert hits >= 2  # approximate search should usually find the right shape

    def test_empty_index_returns_nothing(self, rng):
        index = ISAXIndex()
        assert index.approximate_search(rng.normal(size=96)) == []

    def test_invalid_cardinality_combination(self):
        with pytest.raises(SegmentationError):
            ISAXIndex(base_cardinality=32, max_cardinality=16)
