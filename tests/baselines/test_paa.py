"""Unit tests for repro.baselines.paa."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import paa, paa_series
from repro.core import TimeSeries
from repro.errors import SegmentationError


class TestPAA:
    def test_exact_division(self):
        values = np.array([1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
        assert paa(values, 3).tolist() == [2.0, 6.0, 10.0]

    def test_single_segment_is_mean(self):
        values = np.array([2.0, 4.0, 6.0])
        assert paa(values, 1).tolist() == [4.0]

    def test_segments_greater_than_length_returns_copy(self):
        values = np.array([1.0, 2.0])
        result = paa(values, 5)
        assert result.tolist() == [1.0, 2.0]
        result[0] = 99.0
        assert values[0] == 1.0  # original untouched

    def test_fractional_frames_weighted_correctly(self):
        # 5 samples into 2 frames: frame width 2.5 samples.
        values = np.array([0.0, 0.0, 10.0, 10.0, 10.0])
        result = paa(values, 2)
        # First frame: samples 0,1 and half of sample 2 -> (0+0+5)/2.5 = 2.
        assert result[0] == pytest.approx(2.0)
        assert result[1] == pytest.approx(10.0)

    def test_overall_mean_preserved(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=97)
        result = paa(values, 10)
        # PAA is a weighted partition of the samples, so the weighted mean of
        # the frames equals the global mean.
        assert result.mean() == pytest.approx(values.mean(), rel=0.02)

    def test_errors(self):
        with pytest.raises(SegmentationError):
            paa(np.array([]), 2)
        with pytest.raises(SegmentationError):
            paa(np.array([1.0]), 0)
        with pytest.raises(SegmentationError):
            paa(np.ones((2, 2)), 2)


class TestPAASeries:
    def test_timestamps_cover_duration(self, simple_series):
        reduced = paa_series(simple_series, 5)
        assert len(reduced) == 5
        assert reduced.timestamps[0] == simple_series.timestamps[0]
        assert reduced.timestamps[-1] < simple_series.timestamps[-1] + 1e-9

    def test_name_preserved(self, simple_series):
        assert paa_series(simple_series, 2).name == simple_series.name
