"""Unit tests for the experiment grid, dataset defaults and result rendering."""

from __future__ import annotations

import pytest

from repro.analytics import DayVectorConfig
from repro.errors import ExperimentError
from repro.experiments import ExperimentGrid, GridRunner, default_dataset, render_table
from repro.experiments.config import (
    PAPER_AGGREGATIONS,
    PAPER_ALPHABET_SIZES,
    PAPER_CLASSIFIERS,
    PAPER_METHODS,
)


class TestExperimentGrid:
    def test_paper_grid_size(self):
        grid = ExperimentGrid.paper()
        # 3 methods x 2 aggregations x 4 alphabet sizes = 24 symbolic cells
        assert len(grid.symbolic_configs()) == 24
        # plus 2 raw baselines
        assert len(grid) == 26

    def test_quick_grid_is_smaller(self):
        assert len(ExperimentGrid.quick()) < len(ExperimentGrid.paper())

    def test_global_table_flag_propagates(self):
        grid = ExperimentGrid.paper(global_table=True)
        assert all(config.global_table for config in grid.symbolic_configs())

    def test_raw_configs_excluded_when_disabled(self):
        grid = ExperimentGrid(include_raw=False)
        assert grid.raw_configs() == []

    def test_paper_constants(self):
        assert PAPER_METHODS == ("distinctmedian", "median", "uniform")
        assert PAPER_AGGREGATIONS == (3600.0, 900.0)
        assert PAPER_ALPHABET_SIZES == (2, 4, 8, 16)
        assert len(PAPER_CLASSIFIERS) == 4

    def test_iteration_yields_day_vector_configs(self):
        for config in ExperimentGrid.quick():
            assert isinstance(config, DayVectorConfig)


class TestDefaultDataset:
    def test_shape(self):
        dataset = default_dataset(days=4, sampling_interval=600.0, seed=1)
        assert len(dataset) == 6
        assert dataset.mains(1).duration <= 4 * 86400

    def test_minimum_days_enforced(self):
        with pytest.raises(ExperimentError):
            default_dataset(days=2)


class TestRenderTable:
    def test_alignment_and_float_formatting(self):
        rows = [
            {"name": "median", "f": 0.912345, "n": 3},
            {"name": "uniform", "f": 0.5, "n": 30},
        ]
        text = render_table(rows, float_digits=2)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.91" in text and "0.50" in text
        assert lines[0].startswith("name")

    def test_empty_rows(self):
        assert render_table([]) == "(no rows)"

    def test_column_subset_and_missing_values(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]


class TestGridRunner:
    def test_vector_cache_reused(self, small_redd):
        runner = GridRunner(small_redd, n_folds=4)
        config = DayVectorConfig("median", 3600.0, 4)
        first = runner.vectors_for(config)
        second = runner.vectors_for(config)
        assert first is second

    def test_run_grid_produces_cell_per_config_and_classifier(self, small_redd):
        runner = GridRunner(small_redd, n_folds=4)
        grid = ExperimentGrid(methods=("median",), aggregations=(3600.0,),
                              alphabet_sizes=(4,), include_raw=False)
        results = runner.run_grid(grid, ["naive_bayes", "j48"])
        assert len(results) == 2
        assert {r.classifier for r in results} == {"naive_bayes", "j48"}

    def test_run_grid_requires_classifiers(self, small_redd):
        runner = GridRunner(small_redd)
        with pytest.raises(ExperimentError):
            runner.run_grid(ExperimentGrid.quick(), [])

    def test_results_as_rows(self, small_redd):
        runner = GridRunner(small_redd, n_folds=4)
        result = runner.run_cell(DayVectorConfig("uniform", 3600.0, 4), "naive_bayes")
        rows = GridRunner.results_as_rows([result])
        assert rows[0]["configuration"] == "uniform 1h 4s"
        assert 0.0 <= rows[0]["f_measure"] <= 1.0
