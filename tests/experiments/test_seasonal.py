"""Unit tests for the seasonal-drift study (Section 4 extension)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import SeasonalReport, seasonal_drift_study


@pytest.fixture(scope="module")
def report():
    # Four months keeps the test fast while still crossing a seasonal swing;
    # the tighter 10% threshold makes the drift monitor fire within that span.
    return seasonal_drift_study(days=120, drift_threshold=0.1, seed=3)


class TestSeasonalDriftStudy:
    def test_monthly_series_lengths_match(self, report):
        assert report.months >= 3
        assert len(report.monthly_static_mae) == len(report.monthly_adaptive_mae)

    def test_adaptive_encoding_not_worse_on_average(self, report):
        assert report.adaptive_mae <= report.static_mae * 1.05

    def test_rebuilds_happen_and_cost_bandwidth(self, report):
        assert report.table_rebuilds >= 1
        assert report.table_bits_shipped > 0

    def test_rows_structure(self, report):
        rows = report.rows()
        assert len(rows) == report.months
        assert {"month", "static_mae_w", "adaptive_mae_w"} <= set(rows[0])

    def test_zero_threshold_never_rebuilds(self):
        static_only = seasonal_drift_study(days=90, drift_threshold=0.0, seed=3)
        assert static_only.table_rebuilds == 0
        assert static_only.improvement == pytest.approx(0.0, abs=1e-9)

    def test_too_short_study_rejected(self):
        with pytest.raises(ExperimentError):
            seasonal_drift_study(days=30)
