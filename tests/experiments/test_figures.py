"""Unit tests for the per-figure experiment modules (reduced grids for speed)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentGrid,
    compression_sweep,
    figure5_naive_bayes,
    figure7_global_table,
    figure8_naive_bayes,
    paper_example_report,
    power_distribution,
    reproduce_table1,
    statistics_convergence,
)


@pytest.fixture(scope="module")
def quick_grid():
    return ExperimentGrid(methods=("median", "uniform"), aggregations=(3600.0,),
                          alphabet_sizes=(4, 16))


class TestFigure2:
    def test_histogram_and_lognormal_fit(self, small_redd):
        report = power_distribution(small_redd, bin_width=100.0, max_power=2400.0)
        assert len(report.counts) == 24
        assert sum(report.counts) > 0
        assert report.lognormal_fits_better
        assert len(report.rows()) == 24

    def test_invalid_parameters(self, small_redd):
        with pytest.raises(ExperimentError):
            power_distribution(small_redd, bin_width=0.0)


class TestFigure4:
    def test_statistics_converge_within_three_days(self, small_redd):
        report = statistics_convergence(small_redd, house_id=1, days=3,
                                        tolerance=0.2)
        assert len(report.statistics) >= 24
        assert set(report.convergence_seconds) == {"mean", "median", "distinctmedian"}
        assert report.converges_within_days <= 3.0
        rows = report.rows()
        assert {"hours", "mean", "median", "distinctmedian"} <= set(rows[0])

    def test_invalid_days(self, small_redd):
        with pytest.raises(ExperimentError):
            statistics_convergence(small_redd, days=0)


class TestClassificationFigures:
    def test_figure5_report_structure(self, small_redd, quick_grid):
        report = figure5_naive_bayes(small_redd, grid=quick_grid, n_folds=4)
        assert report.classifier == "naive_bayes"
        # 2 methods x 1 aggregation x 2 sizes + 1 raw baseline
        assert len(report.results) == 5
        assert set(report.by_encoding()) == {"median", "uniform", "raw"}
        assert 0.0 <= report.best().f_measure <= 1.0
        rows = report.rows()
        assert all("f_measure" in row and "processing_seconds" in row for row in rows)

    def test_figure7_uses_global_tables(self, small_redd, quick_grid):
        report = figure7_global_table(small_redd, grid=quick_grid, n_folds=4)
        symbolic = [r for r in report.results if r.config.encoding != "raw"]
        assert symbolic and all(r.config.global_table for r in symbolic)


class TestTable1:
    def test_reduced_matrix_layout(self, small_redd):
        grid = ExperimentGrid(methods=("median",), aggregations=(3600.0,),
                              alphabet_sizes=(4,))
        report = reproduce_table1(small_redd, grid=grid,
                                  classifiers=("naive_bayes", "j48"), n_folds=4)
        matrix = report.matrix()
        configurations = [row["configuration"] for row in matrix]
        assert "median 1h 4s" in configurations
        assert "raw 1h" in configurations
        rendered = report.render()
        assert "Naive Bayes" in rendered and "Naive Bayes+" in rendered
        value = report.f_measure("median", "1h", 4, "naive_bayes")
        assert 0.0 <= value <= 1.0
        with pytest.raises(ExperimentError):
            report.f_measure("median", "15m", 4, "naive_bayes")

    def test_average_by_encoding(self, small_redd):
        grid = ExperimentGrid(methods=("median", "uniform"), aggregations=(3600.0,),
                              alphabet_sizes=(8,), include_raw=False)
        report = reproduce_table1(small_redd, grid=grid, classifiers=("naive_bayes",),
                                  n_folds=4)
        averages = report.average_by_encoding()
        assert set(averages) == {"median", "uniform"}


class TestForecastFigures:
    def test_figure8_structure(self, gapless_redd):
        report = figure8_naive_bayes(gapless_redd, methods=("raw", "median"),
                                     house_ids=[1, 2])
        assert report.houses() == [1, 2]
        assert report.mae(1, "median") >= 0.0
        wins = report.symbolic_wins()
        assert set(wins) == {1, 2}
        rows = report.rows()
        assert rows[0]["house"] == "house 1"
        with pytest.raises(ExperimentError):
            report.mae(1, "wavelet")


class TestCompression:
    def test_paper_example(self):
        report = paper_example_report()
        assert report.symbolic_bits_per_day == pytest.approx(384.0)
        assert report.orders_of_magnitude >= 3.0

    def test_sweep_rows_and_lookup(self):
        sweep = compression_sweep(alphabet_sizes=(4, 16), aggregation_seconds=(900.0,))
        assert len(sweep.rows()) == 2
        assert sweep.report(16, 900.0).ratio > sweep.report(4, 900.0).ratio / 10
        with pytest.raises(ExperimentError):
            sweep.report(8, 900.0)
