"""``.rsymx`` sidecar tests: statistics, persistence, banding, staleness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import QueryIndex, build_query_index, query_index_path
from repro.query.index import band_of_windows
from repro.store import RLE, write_fleet_store


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    rng = np.random.default_rng(3)
    values = np.abs(rng.lognormal(4.0, 1.0, size=(12, 192)))
    path = tmp_path_factory.mktemp("idx") / "fleet.rsym"
    return write_fleet_store(
        path, values, alphabet_size=8, method="median", window=1,
        shared_table=True, sampling_interval=900.0,
    )


class TestStatistics:
    def test_histograms_match_bincount(self, store):
        index = build_query_index(store)
        matrix = store.matrix()
        for row in range(store.n_meters):
            expected = np.bincount(matrix[row], minlength=store.alphabet_size)
            np.testing.assert_array_equal(index.histograms[row], expected)

    def test_band_histograms_partition_the_total(self, store):
        index = build_query_index(store)
        np.testing.assert_array_equal(
            index.band_histograms.sum(axis=1), index.histograms
        )
        # Each band's counts come from that band's window positions only.
        matrix = store.matrix()
        bands = index.bands_for(matrix.shape[1])
        for band in range(index.n_bands):
            cols = matrix[:, bands == band]
            for row in range(store.n_meters):
                expected = np.bincount(cols[row], minlength=store.alphabet_size)
                np.testing.assert_array_equal(
                    index.band_histograms[row, band], expected
                )

    def test_first_min_max_symbols(self, store):
        index = build_query_index(store)
        matrix = store.matrix()
        np.testing.assert_array_equal(index.first_symbols, matrix[:, 0])
        np.testing.assert_array_equal(index.min_symbols, matrix.min(axis=1))
        np.testing.assert_array_equal(index.max_symbols, matrix.max(axis=1))

    def test_rle_store_same_statistics(self, store, tmp_path):
        rng = np.random.default_rng(3)
        values = np.abs(rng.lognormal(4.0, 1.0, size=(12, 192)))
        rle = write_fleet_store(
            tmp_path / "rle.rsym", values, alphabet_size=8, method="median",
            window=1, shared_table=True, sampling_interval=900.0, layout=RLE,
        )
        dense_index = build_query_index(store)
        rle_index = build_query_index(rle)
        np.testing.assert_array_equal(
            dense_index.band_histograms, rle_index.band_histograms
        )


class TestBanding:
    def test_folded_bands_follow_time_of_day(self):
        # 2 days of 8 windows/day folded into 4 bands: window t and t + 8
        # land in the same band.
        bands = band_of_windows(16, 4, windows_per_day=8)
        np.testing.assert_array_equal(bands[:8], bands[8:])
        np.testing.assert_array_equal(bands[:8], [0, 0, 1, 1, 2, 2, 3, 3])

    def test_contiguous_fallback(self):
        bands = band_of_windows(8, 4, windows_per_day=None)
        np.testing.assert_array_equal(bands, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_index_uses_store_windows_per_day(self, store):
        index = build_query_index(store)
        assert index.windows_per_day == store.metadata["windows_per_day"]


class TestPersistence:
    def test_round_trip(self, store, tmp_path):
        index = build_query_index(store)
        path = index.write(tmp_path / "x.rsymx")
        loaded = QueryIndex.open(path)
        np.testing.assert_array_equal(loaded.band_histograms, index.band_histograms)
        np.testing.assert_array_equal(loaded.first_symbols, index.first_symbols)
        np.testing.assert_array_equal(loaded.min_symbols, index.min_symbols)
        np.testing.assert_array_equal(loaded.max_symbols, index.max_symbols)
        assert loaded.fingerprint == index.fingerprint
        assert loaded.windows_per_day == index.windows_per_day
        loaded.check_store(store)  # does not raise

    def test_default_sidecar_path(self):
        from pathlib import Path

        assert query_index_path("a/fleet.rsym") == Path("a/fleet.rsymx")
        assert query_index_path("noext") == Path("noext.rsymx")

    def test_truncated_file_is_refused(self, store, tmp_path):
        index = build_query_index(store)
        path = index.write(tmp_path / "x.rsymx")
        blob = path.read_bytes()
        path.write_bytes(blob[:-4])
        with pytest.raises(QueryError):
            QueryIndex.open(path)

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(QueryError, match="no such"):
            QueryIndex.open(tmp_path / "absent.rsymx")

    def test_stale_fingerprint_is_refused(self, store, tmp_path):
        rng = np.random.default_rng(9)
        other = write_fleet_store(
            tmp_path / "other.rsym",
            np.abs(rng.lognormal(4.0, 1.0, size=(5, 64))),
            alphabet_size=8, method="median", window=1, shared_table=True,
        )
        index = build_query_index(store)
        with pytest.raises(QueryError, match="stale"):
            index.check_store(other)
