"""The scan-plan layer: ColumnSource accounting, the one shard driver, stages.

These tests pin the plan layer's contracts directly — every query kind's
parity with brute force is pinned by its own suite; here we prove the shared
machinery: counted reads, cached fleet statistics, index-backed zero-read
stats, and that ONE driver produces bit-identical merges for every worker
count even for an operator the engine has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.query import (
    ColumnSource,
    QueryEngine,
    ScanPlan,
    SymbolCountPrune,
    build_query_index,
)
from repro.query.ops import Operator
from repro.store import RLE, open_store, write_fleet_store, write_segmented_fleet


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(29)
    values = np.abs(rng.lognormal(4.2, 0.9, size=(10, 192)))
    values[:, 40:80] = 12.0  # standby plateau: real runs for RLE paths
    return values


@pytest.fixture(scope="module")
def file_store(tmp_path_factory, fleet_values):
    path = tmp_path_factory.mktemp("plan-file") / "fleet.rsym"
    return write_fleet_store(
        path, fleet_values, alphabet_size=8, method="median", window=1,
        shared_table=True, sampling_interval=900.0,
    )


@pytest.fixture(scope="module")
def seg_dir(tmp_path_factory, fleet_values):
    directory = tmp_path_factory.mktemp("plan-seg") / "fleet.rsyms"
    write_segmented_fleet(
        directory, fleet_values, alphabet_size=8, window=1,
        sampling_interval=900.0, segment_windows=48,
    ).close()
    return directory


@dataclass(frozen=True)
class SymbolSumOperator(Operator):
    """Toy third-party operator: per-column symbol sums, merged in task order."""

    def run_shard(self, source, items):
        cols = [int(c) for c in items]
        if not cols:
            return np.zeros(0, dtype=np.int64)
        matrix = source.matrix(meters=[source.ids[c] for c in cols])
        return matrix.sum(axis=1)

    def merge(self, parts, source, items, kept):
        return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


class TestColumnSource:
    def test_counted_matrix_and_run_reads(self, file_store):
        source = ColumnSource(file_store)
        assert source.stats.columns_decoded == 0
        source.matrix(meters=[file_store.ids[0], file_store.ids[3]])
        assert source.stats.columns_decoded == 2
        source.matrix_block(1, 4)
        assert source.stats.columns_decoded == 5
        source.runs(file_store.ids[0])
        assert source.stats.runs_read == 1

    def test_fleet_column_stats_computed_once(self, file_store):
        source = ColumnSource(file_store)
        hist, peaks = source.column_stats()
        decoded = source.stats.columns_decoded
        assert decoded == file_store.n_meters
        again_h, again_p = source.column_stats()
        sub_h, sub_p = source.column_stats([1, 4])
        assert source.stats.columns_decoded == decoded  # served from cache
        np.testing.assert_array_equal(hist, again_h)
        np.testing.assert_array_equal(sub_h, hist[[1, 4]])
        np.testing.assert_array_equal(sub_p, peaks[[1, 4]])

    def test_index_backed_stats_read_nothing(self, file_store):
        index = build_query_index(file_store)
        source = ColumnSource(file_store, index=index)
        hist, peaks = source.column_stats()
        sub_h, _ = source.column_stats([2, 7])
        assert source.stats.columns_decoded == 0
        np.testing.assert_array_equal(hist, index.histograms)
        np.testing.assert_array_equal(sub_h, index.histograms[[2, 7]])
        np.testing.assert_array_equal(peaks, index.max_symbols)

    def test_run_counts_cached_and_sliced(self, file_store):
        source = ColumnSource(file_store)
        full = source.run_counts()
        decoded = source.stats.columns_decoded
        sub = source.run_counts([0, 5])
        assert source.stats.columns_decoded == decoded
        np.testing.assert_array_equal(sub, full[[0, 5]])

    def test_matrix_block_matches_meter_list(self, file_store, seg_dir):
        with open_store(seg_dir) as seg:
            for store in (file_store, seg):
                block = store.matrix_block(2, 6)
                listed = store.matrix(
                    meters=[store.ids[c] for c in range(2, 6)]
                )
                np.testing.assert_array_equal(block, listed)
                assert store.matrix_block(4, 4).shape[0] == 0
                np.testing.assert_array_equal(
                    store.matrix_block(0, store.n_meters), store.matrix()
                )


class TestScanPlanDriver:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_custom_operator_identical_for_every_worker_count(
        self, file_store, seg_dir, workers
    ):
        serial = ScanPlan(
            ColumnSource(file_store), SymbolSumOperator()
        ).run(workers=1)
        sharded = ScanPlan(
            ColumnSource(file_store), SymbolSumOperator()
        ).run(workers=workers)
        np.testing.assert_array_equal(serial, sharded)
        with open_store(seg_dir) as seg:
            seg_result = ScanPlan(
                ColumnSource(seg), SymbolSumOperator()
            ).run(workers=workers)
        np.testing.assert_array_equal(serial, seg_result)

    def test_items_subset_and_stage_pruning(self, file_store):
        index = build_query_index(file_store)
        source = ColumnSource(file_store, index=index)
        # A needed-count above every histogram cell prunes every column.
        needed = np.full(file_store.alphabet_size, 10**9, dtype=np.int64)
        plan = ScanPlan(
            source, SymbolSumOperator(), items=[0, 3, 5],
            stages=[SymbolCountPrune(needed=needed, index=index)],
        )
        assert plan.run(workers=2).size == 0
        assert source.stats.columns_decoded == 0  # pruned before any read
        none_needed = np.zeros(file_store.alphabet_size, dtype=np.int64)
        kept = ScanPlan(
            source, SymbolSumOperator(), items=[0, 3, 5],
            stages=[SymbolCountPrune(needed=none_needed, index=index)],
        ).run(workers=1)
        np.testing.assert_array_equal(
            kept,
            ScanPlan(source, SymbolSumOperator(), items=[0, 3, 5]).run(),
        )

    def test_explain_names_the_pipeline(self, file_store):
        index = build_query_index(file_store)
        source = ColumnSource(file_store, index=index)
        needed = np.zeros(file_store.alphabet_size, dtype=np.int64)
        plan = ScanPlan(
            source, SymbolSumOperator(),
            stages=[SymbolCountPrune(needed=needed, index=index)],
        )
        text = plan.explain()
        assert "SymbolSumOperator" in text
        assert "SymbolCountPrune" in text
        assert "ColumnSource" in text


class TestEngineSourceCache:
    def test_engine_keeps_one_source_per_store(self, file_store):
        engine = QueryEngine(file_store)
        assert engine.source is engine.source

    def test_rle_store_round_trips_through_plan(self, tmp_path, fleet_values):
        rle = write_fleet_store(
            tmp_path / "rle.rsym", fleet_values, alphabet_size=8,
            method="median", window=1, shared_table=True,
            sampling_interval=900.0, layout=RLE,
        )
        dense_sums = None
        for workers in (1, 3):
            sums = ScanPlan(
                ColumnSource(rle), SymbolSumOperator()
            ).run(workers=workers)
            if dense_sums is None:
                dense_sums = sums
            np.testing.assert_array_equal(sums, dense_sums)
