"""Aggregation-pushdown tests: symbol stats equal the decoded ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import QueryEngine, aggregate_store, build_query_index
from repro.store import RLE, write_fleet_store


@pytest.fixture(scope="module")
def agg_store(tmp_path_factory):
    rng = np.random.default_rng(17)
    values = np.abs(rng.lognormal(4.5, 1.0, size=(8, 192)))
    path = tmp_path_factory.mktemp("agg") / "fleet.rsym"
    return write_fleet_store(
        path, values, alphabet_size=8, method="median", window=1,
        shared_table=True, sampling_interval=900.0,
    )


class TestAggregates:
    def test_counts_peak_duty_match_matrix(self, agg_store):
        report = aggregate_store(agg_store, level=4)
        matrix = agg_store.matrix()
        for row in range(agg_store.n_meters):
            np.testing.assert_array_equal(
                report.symbol_counts[row],
                np.bincount(matrix[row], minlength=8),
            )
        np.testing.assert_array_equal(report.peak_level, matrix.max(axis=1))
        np.testing.assert_allclose(report.duty_cycle, (matrix >= 4).mean(axis=1))

    def test_run_stats(self, agg_store):
        report = aggregate_store(agg_store)
        assert np.all(report.run_count >= 1)
        np.testing.assert_allclose(
            report.mean_run_length,
            agg_store.counts / report.run_count,
        )

    def test_rle_layout_matches_dense(self, agg_store, tmp_path):
        rng = np.random.default_rng(17)
        values = np.abs(rng.lognormal(4.5, 1.0, size=(8, 192)))
        rle = write_fleet_store(
            tmp_path / "rle.rsym", values, alphabet_size=8, method="median",
            window=1, shared_table=True, sampling_interval=900.0, layout=RLE,
        )
        dense_report = aggregate_store(agg_store, level=5)
        rle_report = aggregate_store(rle, level=5)
        np.testing.assert_array_equal(
            dense_report.symbol_counts, rle_report.symbol_counts
        )
        np.testing.assert_array_equal(dense_report.run_count, rle_report.run_count)
        np.testing.assert_array_equal(dense_report.peak_level, rle_report.peak_level)

    def test_index_backed_aggregation(self, agg_store):
        index = build_query_index(agg_store)
        engine = QueryEngine(agg_store, index=index)
        with_index = engine.aggregate(level=4)
        without = aggregate_store(agg_store, level=4)
        np.testing.assert_array_equal(
            with_index.symbol_counts, without.symbol_counts
        )
        np.testing.assert_array_equal(with_index.peak_level, without.peak_level)

    def test_meter_subset(self, agg_store):
        picked = [agg_store.ids[1], agg_store.ids[4]]
        report = aggregate_store(agg_store, meters=picked)
        full = aggregate_store(agg_store)
        assert report.ids == picked
        np.testing.assert_array_equal(
            report.symbol_counts, full.symbol_counts[[1, 4]]
        )
        np.testing.assert_array_equal(report.run_count, full.run_count[[1, 4]])

    def test_meter_subset_with_index(self, agg_store):
        # Regression: a supplied index was ignored for meter subsets.
        index = build_query_index(agg_store)
        picked = [agg_store.ids[2], agg_store.ids[5]]
        with_index = aggregate_store(agg_store, meters=picked, index=index)
        without = aggregate_store(agg_store, meters=picked)
        np.testing.assert_array_equal(
            with_index.symbol_counts, without.symbol_counts
        )
        np.testing.assert_array_equal(with_index.peak_level, without.peak_level)

    def test_per_day(self, agg_store):
        report = aggregate_store(agg_store, level=4, per_day=True)
        per = int(agg_store.metadata["windows_per_day"])
        matrix = agg_store.matrix()
        days = matrix.shape[1] // per
        shaped = matrix[:, : days * per].reshape(agg_store.n_meters, days, per)
        np.testing.assert_array_equal(report.daily_peak, shaped.max(axis=2))
        np.testing.assert_allclose(report.daily_duty, (shaped >= 4).mean(axis=2))

    def test_per_day_requires_metadata(self, tmp_path, rng):
        store = write_fleet_store(
            tmp_path / "bare.rsym",
            np.abs(rng.lognormal(4.0, 1.0, size=(3, 64))),
            alphabet_size=4, method="median", window=1, shared_table=True,
        )
        with pytest.raises(QueryError, match="windows_per_day"):
            aggregate_store(store, per_day=True)

    def test_level_validation(self, agg_store):
        with pytest.raises(QueryError, match="level"):
            aggregate_store(agg_store, level=99)

    def test_rows_render(self, agg_store):
        rows = aggregate_store(agg_store, level=4).rows()
        assert len(rows) == agg_store.n_meters
        assert {"meter", "windows", "runs", "mean_run", "peak_level"} <= set(rows[0])


class TestWorkersParity:
    """Satellite: sharded aggregation is bit-identical for every worker count."""

    @pytest.fixture(scope="class")
    def seg_dir(self, tmp_path_factory):
        from repro.store import write_segmented_fleet

        rng = np.random.default_rng(17)
        values = np.abs(rng.lognormal(4.5, 1.0, size=(8, 192)))
        directory = tmp_path_factory.mktemp("agg-seg") / "fleet.rsyms"
        write_segmented_fleet(
            directory, values, alphabet_size=8, window=1,
            sampling_interval=900.0, segment_windows=48,
        ).close()
        return directory

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_file_store_sharded_matches_serial(self, agg_store, workers):
        serial = aggregate_store(agg_store, level=4)
        sharded = aggregate_store(agg_store, level=4, workers=workers)
        assert serial.ids == sharded.ids
        np.testing.assert_array_equal(
            serial.symbol_counts, sharded.symbol_counts
        )
        np.testing.assert_array_equal(serial.peak_level, sharded.peak_level)
        np.testing.assert_array_equal(serial.run_count, sharded.run_count)
        np.testing.assert_array_equal(serial.duty_cycle, sharded.duty_cycle)
        np.testing.assert_array_equal(
            serial.mean_run_length, sharded.mean_run_length
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_segmented_store_sharded_matches_file(
        self, agg_store, seg_dir, workers
    ):
        from repro.store import open_store

        serial = aggregate_store(agg_store, level=4)
        with open_store(seg_dir) as seg:
            sharded = aggregate_store(seg, level=4, workers=workers)
        np.testing.assert_array_equal(
            serial.symbol_counts, sharded.symbol_counts
        )
        np.testing.assert_array_equal(serial.peak_level, sharded.peak_level)
        np.testing.assert_array_equal(serial.duty_cycle, sharded.duty_cycle)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_engine_aggregate_workers_flag(self, agg_store, workers):
        engine = QueryEngine(agg_store)
        serial = engine.aggregate(level=4)
        sharded = engine.aggregate(level=4, workers=workers)
        np.testing.assert_array_equal(
            serial.symbol_counts, sharded.symbol_counts
        )
        np.testing.assert_array_equal(serial.run_count, sharded.run_count)


class TestSourceCache:
    """Satellite: repeated aggregates on an open engine never re-decode."""

    def test_second_aggregate_reads_zero_columns(self, tmp_path, rng):
        store = write_fleet_store(
            tmp_path / "cache.rsym",
            np.abs(rng.lognormal(4.0, 1.0, size=(6, 128))),
            alphabet_size=8, method="median", window=1, shared_table=True,
            sampling_interval=900.0,
        )
        engine = QueryEngine(store)
        calls = {"matrix": 0, "matrix_block": 0}
        real_matrix, real_block = store.matrix, store.matrix_block

        def spy_matrix(*args, **kwargs):
            calls["matrix"] += 1
            return real_matrix(*args, **kwargs)

        def spy_block(*args, **kwargs):
            calls["matrix_block"] += 1
            return real_block(*args, **kwargs)

        store.matrix, store.matrix_block = spy_matrix, spy_block
        try:
            first = engine.aggregate(level=4)
            decodes = sum(calls.values())
            assert decodes > 0  # the first pass really scanned payload bytes
            second = engine.aggregate(level=2)  # different level, same stats
            assert sum(calls.values()) == decodes
        finally:
            store.matrix, store.matrix_block = real_matrix, real_block
        np.testing.assert_array_equal(first.symbol_counts, second.symbol_counts)
        np.testing.assert_array_equal(first.run_count, second.run_count)
        assert engine.source.stats.columns_decoded > 0

    def test_fresh_source_decodes_again(self, tmp_path, rng):
        # Control: aggregate_store without the engine's source re-scans.
        store = write_fleet_store(
            tmp_path / "fresh.rsym",
            np.abs(rng.lognormal(4.0, 1.0, size=(4, 96))),
            alphabet_size=8, method="median", window=1, shared_table=True,
            sampling_interval=900.0,
        )
        from repro.query import ColumnSource

        first = ColumnSource(store)
        aggregate_store(store, source=first)
        second = ColumnSource(store)
        aggregate_store(store, source=second)
        assert first.stats.columns_decoded > 0
        assert second.stats.columns_decoded == first.stats.columns_decoded
