"""Fleet monitoring operators: anomaly, drift, private aggregates.

Correctness is pinned against decoded-matrix references; the determinism
contract (bit-identical for every worker count) and the drift operator's
"zero columns decoded" guarantee are asserted explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lookup import LookupTable
from repro.errors import QueryError
from repro.query import QueryEngine, write_query_index
from repro.store import (
    append_segment,
    create_segmented_store,
    open_store,
    write_segmented_fleet,
)


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(41)
    values = np.abs(rng.normal(2.0, 0.6, size=(12, 192)))
    values[:, 30:70] = 0.5            # shared standby plateau
    values[11, 96:] = 8.0             # meter 11 drifts high in the second half
    return values


@pytest.fixture(scope="module")
def seg_dir(tmp_path_factory, fleet_values):
    directory = tmp_path_factory.mktemp("monitoring") / "fleet.rsyms"
    store = write_segmented_fleet(
        directory, fleet_values, alphabet_size=8, window=2,
        sampling_interval=900.0, segment_windows=24,
    )
    write_query_index(store)
    store.close()
    return directory


def _reference_transition_counts(matrix: np.ndarray, k: int) -> np.ndarray:
    """(N, k*k) transition counts of the expanded symbol rows."""
    counts = np.zeros((matrix.shape[0], k * k), dtype=np.int64)
    for row in range(matrix.shape[0]):
        pairs = matrix[row, :-1] * k + matrix[row, 1:]
        counts[row] = np.bincount(pairs, minlength=k * k)
    return counts


class TestAnomaly:
    def test_scores_match_expanded_reference(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.anomaly()
            matrix = engine.store.matrix()
            k = engine.store.alphabet_size
        counts = _reference_transition_counts(matrix, k)
        pooled = counts.sum(axis=0).reshape(k, k).astype(np.float64) + 1.0
        model = pooled / pooled.sum(axis=1, keepdims=True)
        log_model = np.log(model).reshape(k * k)
        transitions = counts.sum(axis=1)
        expected = -(counts @ log_model) / np.maximum(transitions, 1)
        np.testing.assert_array_equal(report.transitions, transitions)
        np.testing.assert_allclose(report.scores, expected)
        assert report.model.shape == (k, k)
        np.testing.assert_allclose(report.model.sum(axis=1), 1.0)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_for_every_worker_count(self, seg_dir, workers):
        with QueryEngine.open(seg_dir) as engine:
            serial = engine.anomaly(workers=1)
            sharded = engine.anomaly(workers=workers)
        assert serial.ids == sharded.ids
        np.testing.assert_array_equal(serial.scores, sharded.scores)
        np.testing.assert_array_equal(serial.transitions, sharded.transitions)

    def test_top_orders_by_score(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.anomaly()
        top = report.top(3)
        assert len(top) == 3
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        assert {"meter", "score", "transitions"} <= set(report.rows()[0])

    def test_meter_subset(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            sub = engine.anomaly(meters=[1, 4, 7])
        assert sub.ids == [1, 4, 7]
        # Subset scores use the subset's pooled model, not the fleet's.
        np.testing.assert_array_equal(
            sub.transitions,
            np.array([int(t) for t in sub.transitions]),
        )


class TestDrift:
    def test_reads_zero_columns_with_sidecar(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            assert engine._index is not None
            report = engine.drift()
            assert engine.source.stats.columns_decoded == 0
        assert report.columns_decoded == 0
        assert report.reference == "fleet-mean"
        assert np.all(report.distances >= 0.0)
        assert np.all(report.distances <= 1.0)

    def test_drifted_meter_tops_the_fleet_mean_report(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.drift()
        assert report.top(1)[0][0] == 11
        assert 11 in report.shifted(0.1)

    def test_self_baseline_is_zero(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.drift(baseline=seg_dir)
        assert report.reference == "baseline"
        np.testing.assert_allclose(report.distances, 0.0)

    def test_snapshot_baseline_sees_appended_drift(
        self, tmp_path, fleet_values
    ):
        directory = tmp_path / "drifting.rsyms"
        store = write_segmented_fleet(
            directory, fleet_values, alphabet_size=8, window=2,
            sampling_interval=900.0, segment_windows=48,
        )
        snapshot = tmp_path / "baseline.rsymx"
        write_query_index(store, path=snapshot)
        # Meter 0 pins to its top symbol for a whole appended span.
        span = store.matrix(window_range=(0, 48))
        span[0, :] = store.alphabet_size - 1
        append_segment(directory, span, tables=store.shared_table)
        store.close()
        with QueryEngine.open(directory) as engine:
            report = engine.drift(baseline=snapshot)
        assert report.reference == "baseline"
        assert report.top(1)[0][0] == 0
        assert report.distances[0] > 0.2

    def test_tv_distance_matches_histogram_reference(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.drift()
            matrix = engine.store.matrix()
            k = engine.store.alphabet_size
        hist = np.stack(
            [np.bincount(matrix[r], minlength=k) for r in range(matrix.shape[0])]
        ).astype(np.float64)
        current = hist / hist.sum(axis=1, keepdims=True)
        fleet = hist.sum(axis=0) / hist.sum()
        expected = 0.5 * np.abs(current - fleet[None, :]).sum(axis=1)
        np.testing.assert_allclose(report.distances, expected)


class TestPrivateAggregate:
    @pytest.fixture(scope="class")
    def rare_symbol_dir(self, tmp_path_factory):
        """12 meters whose pooled counts leave symbol 7 below any sane k."""
        directory = tmp_path_factory.mktemp("private") / "rare.rsyms"
        rng = np.random.default_rng(5)
        indices = rng.integers(0, 4, size=(12, 96))
        indices[0, :3] = 7  # exactly three windows at the top symbol
        table = LookupTable.fit(
            np.linspace(0.5, 8.0, 64), 8, method="median"
        )
        create_segmented_store(directory, alphabet_size=8,
                               ids=list(range(12))).close()
        append_segment(directory, indices, tables=table)
        return directory

    def test_suppression_zeroes_rare_cells(self, rare_symbol_dir):
        with QueryEngine.open(rare_symbol_dir) as engine:
            report = engine.private_aggregate(k_anon=6)
        assert bool(report.suppressed[7])
        assert report.symbol_counts[7] == 0.0
        assert not report.suppressed[0]
        assert report.n_meters == 12

    def test_released_counts_match_pooled_reference(self, rare_symbol_dir):
        with QueryEngine.open(rare_symbol_dir) as engine:
            report = engine.private_aggregate(k_anon=6)
            pooled = np.bincount(
                engine.store.matrix().ravel(),
                minlength=engine.store.alphabet_size,
            )
        expected = pooled.astype(np.float64)
        expected[(pooled > 0) & (pooled < 6)] = 0.0
        np.testing.assert_array_equal(report.symbol_counts, expected)

    def test_noise_is_deterministic_per_seed(self, rare_symbol_dir):
        with QueryEngine.open(rare_symbol_dir) as engine:
            first = engine.private_aggregate(k_anon=5, epsilon=1.0, seed=9)
            again = engine.private_aggregate(k_anon=5, epsilon=1.0, seed=9)
            other = engine.private_aggregate(k_anon=5, epsilon=1.0, seed=10)
            clean = engine.private_aggregate(k_anon=5)
        np.testing.assert_array_equal(first.symbol_counts, again.symbol_counts)
        np.testing.assert_array_equal(first.band_profile, again.band_profile)
        assert not np.array_equal(first.symbol_counts, other.symbol_counts)
        assert not np.array_equal(first.symbol_counts, clean.symbol_counts)
        assert np.all(first.symbol_counts >= 0.0)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_for_every_worker_count(self, seg_dir, workers):
        with QueryEngine.open(seg_dir) as engine:
            serial = engine.private_aggregate(k_anon=5, epsilon=2.0, seed=3)
            sharded = engine.private_aggregate(
                k_anon=5, epsilon=2.0, seed=3, workers=workers
            )
        np.testing.assert_array_equal(
            serial.symbol_counts, sharded.symbol_counts
        )
        np.testing.assert_array_equal(
            serial.band_profile, sharded.band_profile
        )
        assert serial.duty_cycle == sharded.duty_cycle

    def test_small_group_refused(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            with pytest.raises(QueryError, match="smaller than k_anon"):
                engine.private_aggregate(meters=[0, 1, 2], k_anon=5)
            with pytest.raises(QueryError, match="k_anon"):
                engine.private_aggregate(k_anon=0)
            with pytest.raises(QueryError, match="level"):
                engine.private_aggregate(level=99)

    def test_band_profile_within_reconstruction_range(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            report = engine.private_aggregate(k_anon=5)
            recon = engine.table.reconstruction_array
        assert report.band_profile.shape[0] >= 1
        assert np.all(report.band_profile >= 0.0)
        assert np.all(report.band_profile <= recon.max() + 1e-9)
        rows = report.rows()
        assert {"symbol", "count", "suppressed"} <= set(rows[0])

    def test_index_backed_group_aggregate_reads_nothing(self, seg_dir):
        with QueryEngine.open(seg_dir) as engine:
            assert engine._index is not None
            report = engine.private_aggregate(k_anon=5)
            assert engine.source.stats.columns_decoded == 0
        assert report.symbol_counts.sum() > 0


class TestSegmentedVsFileParity:
    def test_monitoring_matches_single_file(
        self, tmp_path, seg_dir, fleet_values
    ):
        from repro.store import write_fleet_store

        path = tmp_path / "flat.rsym"
        write_fleet_store(
            path, fleet_values, alphabet_size=8, window=2,
            sampling_interval=900.0,
        ).close()
        with QueryEngine.open(seg_dir) as seg, QueryEngine.open(path) as ref:
            seg_anom, ref_anom = seg.anomaly(), ref.anomaly()
            np.testing.assert_array_equal(seg_anom.scores, ref_anom.scores)
            seg_drift, ref_drift = seg.drift(), ref.drift()
            np.testing.assert_allclose(
                seg_drift.distances, ref_drift.distances
            )
            seg_priv = seg.private_aggregate(k_anon=5, epsilon=1.0, seed=2)
            ref_priv = ref.private_aggregate(k_anon=5, epsilon=1.0, seed=2)
            np.testing.assert_array_equal(
                seg_priv.symbol_counts, ref_priv.symbol_counts
            )
