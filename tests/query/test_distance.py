"""MINDIST kernel tests: the lower-bound property and SAX parity.

The satellite acceptance: ``MINDIST(a, b) <= exact_distance(a, b)``
property-tested across alphabet sizes {2, 4, 8, 16, 27, 32} — powers of two
through fitted :class:`LookupTable` separators (the paper's encoder),
non-powers through raw Gaussian breakpoints (the SAX baseline), both via
the same kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sax import SAXWord, gaussian_breakpoints
from repro.baselines.sax import mindist as sax_mindist
from repro.core import LookupTable
from repro.errors import QueryError
from repro.query import (
    banded_min_cells,
    cell_bounds,
    gathered_squared_distances,
    histogram_bound,
    mindist,
    rle_squared_distances,
    value_cell_bounds,
)

ALPHABETS = [2, 4, 8, 16, 27, 32]
POWER_ALPHABETS = [2, 4, 8, 16, 32]


def _reconstruction_for(alphabet_size: int, rng: np.random.Generator):
    """(breakpoints, reconstruction values) for any alphabet size.

    Powers of two fit a real :class:`LookupTable` on non-negative power
    data; other sizes use Gaussian breakpoints with true interval centres
    (mirrored outer widths) — both constructions keep every reconstruction
    value inside its symbol's range, the premise of the lower bound.
    """
    if alphabet_size in POWER_ALPHABETS:
        data = rng.lognormal(mean=5.0, sigma=1.0, size=512)
        table = LookupTable.fit(data, alphabet_size, method="median")
        return table.breakpoints(), table.reconstruction_array
    beta = np.asarray(gaussian_breakpoints(alphabet_size))
    lows = np.concatenate([[beta[0] - 1.0], beta])
    highs = np.concatenate([beta, [beta[-1] + 1.0]])
    return beta, (lows + highs) / 2.0


class TestCellBounds:
    def test_shape_symmetry_and_zero_band(self):
        beta = gaussian_breakpoints(8)
        cells = cell_bounds(beta)
        assert cells.shape == (8, 8)
        np.testing.assert_array_equal(cells, cells.T)
        # Equal and adjacent symbols have touching ranges: bound is zero.
        for i in range(8):
            assert cells[i, i] == 0.0
            if i + 1 < 8:
                assert cells[i, i + 1] == 0.0

    def test_matches_sax_cell_formula(self):
        beta = gaussian_breakpoints(16)
        cells = cell_bounds(beta)
        for i in range(16):
            for j in range(16):
                expected = 0.0 if abs(i - j) <= 1 else beta[max(i, j) - 1] - beta[min(i, j)]
                assert cells[i, j] == pytest.approx(expected)

    def test_accepts_lookup_table(self, rng):
        table = LookupTable.fit(rng.uniform(0, 100, 256), 8, method="uniform")
        np.testing.assert_array_equal(
            cell_bounds(table), cell_bounds(table.breakpoints())
        )

    def test_rejects_decreasing_breakpoints(self):
        with pytest.raises(QueryError):
            cell_bounds([2.0, 1.0])


class TestMindistSAXParity:
    @pytest.mark.parametrize("alphabet_size", [3, 4, 8, 27])
    def test_equals_sax_mindist(self, alphabet_size, rng):
        """The vectorized kernel reproduces the baseline's scalar formula."""
        length, original = 16, 96
        a = rng.integers(0, alphabet_size, size=length)
        b = rng.integers(0, alphabet_size, size=length)
        ours = mindist(a, b, gaussian_breakpoints(alphabet_size),
                       original_length=original)
        reference = sax_mindist(
            SAXWord(tuple(a.tolist()), alphabet_size),
            SAXWord(tuple(b.tolist()), alphabet_size),
            original,
        )
        assert ours == pytest.approx(reference, rel=1e-12)

    def test_batched_candidates(self, rng):
        beta = gaussian_breakpoints(8)
        query = rng.integers(0, 8, size=24)
        candidates = rng.integers(0, 8, size=(10, 24))
        batch = mindist(query, candidates, beta)
        assert batch.shape == (10,)
        for row in range(10):
            assert batch[row] == pytest.approx(mindist(query, candidates[row], beta))

    def test_length_and_range_validation(self):
        beta = gaussian_breakpoints(4)
        with pytest.raises(QueryError):
            mindist([0, 1], [0, 1, 2], beta)
        with pytest.raises(QueryError):
            mindist([0, 7], [0, 1], beta)


class TestLowerBoundProperty:
    """MINDIST never exceeds the exact distance between reconstructions."""

    @pytest.mark.parametrize("alphabet_size", ALPHABETS)
    def test_seeded_sweep(self, alphabet_size, rng):
        beta, recon = _reconstruction_for(alphabet_size, rng)
        for _ in range(50):
            a = rng.integers(0, alphabet_size, size=48)
            b = rng.integers(0, alphabet_size, size=48)
            lb = mindist(a, b, beta)
            exact = float(np.sqrt(np.sum((recon[a] - recon[b]) ** 2)))
            assert lb <= exact + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        alphabet_size=st.sampled_from(ALPHABETS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        length=st.integers(min_value=1, max_value=64),
    )
    def test_property(self, alphabet_size, seed, length):
        rng = np.random.default_rng(seed)
        beta, recon = _reconstruction_for(alphabet_size, rng)
        a = rng.integers(0, alphabet_size, size=length)
        b = rng.integers(0, alphabet_size, size=length)
        lb = mindist(a, b, beta)
        exact = float(np.sqrt(np.sum((recon[a] - recon[b]) ** 2)))
        assert lb <= exact + 1e-9

    @pytest.mark.parametrize("alphabet_size", ALPHABETS)
    def test_value_bounds_property(self, alphabet_size, rng):
        """The raw-query bound never exceeds |q - reconstruction|."""
        beta, recon = _reconstruction_for(alphabet_size, rng)
        queries = rng.uniform(
            float(recon.min()) - 10.0, float(recon.max()) + 10.0, size=128
        )
        bounds = value_cell_bounds(queries, beta)
        assert bounds.shape == (128, alphabet_size)
        exact = np.abs(queries[:, None] - recon[None, :])
        assert np.all(bounds <= exact + 1e-9)

    def test_value_bounds_zero_inside_range(self):
        beta = [10.0, 20.0]
        bounds = value_cell_bounds([5.0, 15.0, 25.0], beta)
        # Each query value sits inside one symbol's range: bound is zero
        # there and positive for ranges it lies outside.
        assert bounds[0, 0] == 0.0 and bounds[1, 1] == 0.0 and bounds[2, 2] == 0.0
        assert bounds[0, 2] == pytest.approx(15.0)  # 5 is 15 below (20, inf)
        assert bounds[2, 0] == pytest.approx(15.0)  # 25 is 15 above (-inf, 10]


class TestBandedMinCells:
    """The batched per-(band, symbol) minima match the serial reduction."""

    @staticmethod
    def _serial(cells: np.ndarray, bands: np.ndarray, n_bands: int):
        band_min = np.full((n_bands, cells.shape[1]), np.inf)
        np.minimum.at(band_min, bands, cells)
        band_min[~np.isfinite(band_min)] = 0.0
        return band_min

    @pytest.mark.parametrize(
        "layout", ["folded", "contiguous", "shuffled", "one_band"]
    )
    def test_matches_serial_minimum(self, layout, rng):
        T, k, n_bands = 96, 16, 8
        t = np.arange(T)
        bands = {
            "folded": (t % 24) * n_bands // 24,       # periodic fast path
            "contiguous": t * n_bands // T,
            "shuffled": rng.permutation(t * n_bands // T),
            "one_band": np.full(T, 5),                # 7 empty bands
        }[layout]
        cells = rng.random((T, k))
        got = banded_min_cells(cells, bands, n_bands)
        np.testing.assert_array_equal(got, self._serial(cells, bands, n_bands))
        batch = rng.random((6, T, k))
        got_batch = banded_min_cells(batch, bands, n_bands)
        for q in range(6):
            np.testing.assert_array_equal(
                got_batch[q], self._serial(batch[q], bands, n_bands)
            )

    def test_trailing_empty_bands_keep_last_position(self, rng):
        # Regression: clipped reduceat boundaries once dropped the final
        # position's cells from the last *non-empty* band.
        T, k, n_bands = 50, 4, 8
        bands = np.full(T, 3)
        cells = rng.random((T, k))
        got = banded_min_cells(cells, bands, n_bands)
        np.testing.assert_array_equal(got[3], cells.min(axis=0))
        assert np.all(got[[0, 1, 2, 4, 5, 6, 7]] == 0.0)

    def test_rejects_bad_shapes_and_labels(self):
        with pytest.raises(QueryError, match="one entry per position"):
            banded_min_cells(np.zeros((4, 2)), np.zeros(3, dtype=int), 2)
        with pytest.raises(QueryError, match="out of range"):
            banded_min_cells(np.zeros((4, 2)), np.array([0, 1, 2, 5]), 3)
        with pytest.raises(QueryError, match="n_bands"):
            banded_min_cells(np.zeros((4, 2)), np.zeros(4, dtype=int), 0)


class TestHistogramBound:
    def test_batched_equals_per_query_matvec_values(self, rng):
        Q, C, B, k = 5, 17, 8, 16
        mins = rng.random((Q, B, k))
        hist = rng.integers(0, 9, size=(C, B, k))
        lb = histogram_bound(mins, hist)
        assert lb.shape == (Q, C)
        expect = np.einsum("qbk,cbk->qc", mins, hist.astype(np.float64))
        np.testing.assert_allclose(lb, expect, rtol=1e-12)
        one = histogram_bound(mins[2], hist)
        assert one.shape == (C,)
        np.testing.assert_allclose(one, expect[2], rtol=1e-12)

    def test_is_a_lower_bound_on_gathered_distance(self, rng):
        """hist @ band-min never exceeds the exact gathered distance."""
        T, k, n_bands, C = 48, 8, 6, 25
        bands = np.arange(T) * n_bands // T
        cells = rng.random((T, k))
        matrix = rng.integers(0, k, size=(C, T))
        hist = np.zeros((C, n_bands, k), dtype=np.int64)
        for c in range(C):
            np.add.at(hist[c], (bands, matrix[c]), 1)
        lb = histogram_bound(banded_min_cells(cells, bands, n_bands), hist)
        exact = gathered_squared_distances(cells, matrix)
        assert np.all(lb <= exact + 1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueryError, match="disagree"):
            histogram_bound(np.zeros((2, 3, 4)), np.zeros((5, 3, 5)))


class TestRunAwareDistances:
    def test_rle_matches_gathered_on_expanded_runs(self, rng):
        T, k, C = 96, 16, 30
        cells = rng.random((T, k))
        values, lengths, offsets, rows = [], [], [0], []
        for _ in range(C):
            cuts = np.sort(rng.choice(
                np.arange(1, T), size=int(rng.integers(0, 12)), replace=False
            ))
            seg = np.diff(np.concatenate([[0], cuts, [T]]))
            v = rng.integers(0, k, size=seg.size)
            values.append(v)
            lengths.append(seg)
            offsets.append(offsets[-1] + seg.size)
            rows.append(np.repeat(v, seg))
        values = np.concatenate(values)
        lengths = np.concatenate(lengths)
        offsets = np.asarray(offsets)
        d_runs = rle_squared_distances(cells, values, lengths, offsets)
        d_gather = gathered_squared_distances(cells, np.vstack(rows))
        np.testing.assert_allclose(d_runs, d_gather, rtol=1e-12, atol=1e-12)

    def test_single_candidate_without_offsets(self, rng):
        cells = rng.random((20, 4))
        values = np.array([1, 3, 0])
        lengths = np.array([5, 10, 5])
        expect = gathered_squared_distances(
            cells, np.repeat(values, lengths)[None, :]
        )[0]
        got = rle_squared_distances(cells, values, lengths)
        np.testing.assert_allclose(got, expect, rtol=1e-12)

    def test_work_is_run_proportional(self, rng):
        # A constant column scores exactly via one run.
        cells = rng.random((500, 8))
        got = rle_squared_distances(cells, np.array([5]), np.array([500]))
        np.testing.assert_allclose(got[0], cells[:, 5].sum(), rtol=1e-12)

    def test_bad_run_sums_rejected(self, rng):
        cells = rng.random((10, 4))
        with pytest.raises(QueryError, match="query length"):
            rle_squared_distances(cells, np.array([1]), np.array([9]))
        with pytest.raises(QueryError, match="query length"):
            rle_squared_distances(
                cells, np.array([1, 2, 3]), np.array([10, 3, 6]),
                np.array([0, 1, 3]),
            )
        with pytest.raises(QueryError, match="offsets"):
            rle_squared_distances(
                cells, np.array([1, 2]), np.array([5, 5]), np.array([0, 1]),
            )
        with pytest.raises(QueryError, match="out of range"):
            rle_squared_distances(cells, np.array([4]), np.array([10]))

    def test_gathered_accepts_narrow_dtypes(self, rng):
        cells = rng.random((30, 16))
        matrix = rng.integers(0, 16, size=(7, 30))
        wide = gathered_squared_distances(cells, matrix.astype(np.int64))
        narrow = gathered_squared_distances(cells, matrix.astype(np.uint8))
        np.testing.assert_array_equal(wide, narrow)
