"""MINDIST kernel tests: the lower-bound property and SAX parity.

The satellite acceptance: ``MINDIST(a, b) <= exact_distance(a, b)``
property-tested across alphabet sizes {2, 4, 8, 16, 27, 32} — powers of two
through fitted :class:`LookupTable` separators (the paper's encoder),
non-powers through raw Gaussian breakpoints (the SAX baseline), both via
the same kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sax import SAXWord, gaussian_breakpoints
from repro.baselines.sax import mindist as sax_mindist
from repro.core import LookupTable
from repro.errors import QueryError
from repro.query import cell_bounds, mindist, value_cell_bounds

ALPHABETS = [2, 4, 8, 16, 27, 32]
POWER_ALPHABETS = [2, 4, 8, 16, 32]


def _reconstruction_for(alphabet_size: int, rng: np.random.Generator):
    """(breakpoints, reconstruction values) for any alphabet size.

    Powers of two fit a real :class:`LookupTable` on non-negative power
    data; other sizes use Gaussian breakpoints with true interval centres
    (mirrored outer widths) — both constructions keep every reconstruction
    value inside its symbol's range, the premise of the lower bound.
    """
    if alphabet_size in POWER_ALPHABETS:
        data = rng.lognormal(mean=5.0, sigma=1.0, size=512)
        table = LookupTable.fit(data, alphabet_size, method="median")
        return table.breakpoints(), table.reconstruction_array
    beta = np.asarray(gaussian_breakpoints(alphabet_size))
    lows = np.concatenate([[beta[0] - 1.0], beta])
    highs = np.concatenate([beta, [beta[-1] + 1.0]])
    return beta, (lows + highs) / 2.0


class TestCellBounds:
    def test_shape_symmetry_and_zero_band(self):
        beta = gaussian_breakpoints(8)
        cells = cell_bounds(beta)
        assert cells.shape == (8, 8)
        np.testing.assert_array_equal(cells, cells.T)
        # Equal and adjacent symbols have touching ranges: bound is zero.
        for i in range(8):
            assert cells[i, i] == 0.0
            if i + 1 < 8:
                assert cells[i, i + 1] == 0.0

    def test_matches_sax_cell_formula(self):
        beta = gaussian_breakpoints(16)
        cells = cell_bounds(beta)
        for i in range(16):
            for j in range(16):
                expected = 0.0 if abs(i - j) <= 1 else beta[max(i, j) - 1] - beta[min(i, j)]
                assert cells[i, j] == pytest.approx(expected)

    def test_accepts_lookup_table(self, rng):
        table = LookupTable.fit(rng.uniform(0, 100, 256), 8, method="uniform")
        np.testing.assert_array_equal(
            cell_bounds(table), cell_bounds(table.breakpoints())
        )

    def test_rejects_decreasing_breakpoints(self):
        with pytest.raises(QueryError):
            cell_bounds([2.0, 1.0])


class TestMindistSAXParity:
    @pytest.mark.parametrize("alphabet_size", [3, 4, 8, 27])
    def test_equals_sax_mindist(self, alphabet_size, rng):
        """The vectorized kernel reproduces the baseline's scalar formula."""
        length, original = 16, 96
        a = rng.integers(0, alphabet_size, size=length)
        b = rng.integers(0, alphabet_size, size=length)
        ours = mindist(a, b, gaussian_breakpoints(alphabet_size),
                       original_length=original)
        reference = sax_mindist(
            SAXWord(tuple(a.tolist()), alphabet_size),
            SAXWord(tuple(b.tolist()), alphabet_size),
            original,
        )
        assert ours == pytest.approx(reference, rel=1e-12)

    def test_batched_candidates(self, rng):
        beta = gaussian_breakpoints(8)
        query = rng.integers(0, 8, size=24)
        candidates = rng.integers(0, 8, size=(10, 24))
        batch = mindist(query, candidates, beta)
        assert batch.shape == (10,)
        for row in range(10):
            assert batch[row] == pytest.approx(mindist(query, candidates[row], beta))

    def test_length_and_range_validation(self):
        beta = gaussian_breakpoints(4)
        with pytest.raises(QueryError):
            mindist([0, 1], [0, 1, 2], beta)
        with pytest.raises(QueryError):
            mindist([0, 7], [0, 1], beta)


class TestLowerBoundProperty:
    """MINDIST never exceeds the exact distance between reconstructions."""

    @pytest.mark.parametrize("alphabet_size", ALPHABETS)
    def test_seeded_sweep(self, alphabet_size, rng):
        beta, recon = _reconstruction_for(alphabet_size, rng)
        for _ in range(50):
            a = rng.integers(0, alphabet_size, size=48)
            b = rng.integers(0, alphabet_size, size=48)
            lb = mindist(a, b, beta)
            exact = float(np.sqrt(np.sum((recon[a] - recon[b]) ** 2)))
            assert lb <= exact + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        alphabet_size=st.sampled_from(ALPHABETS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        length=st.integers(min_value=1, max_value=64),
    )
    def test_property(self, alphabet_size, seed, length):
        rng = np.random.default_rng(seed)
        beta, recon = _reconstruction_for(alphabet_size, rng)
        a = rng.integers(0, alphabet_size, size=length)
        b = rng.integers(0, alphabet_size, size=length)
        lb = mindist(a, b, beta)
        exact = float(np.sqrt(np.sum((recon[a] - recon[b]) ** 2)))
        assert lb <= exact + 1e-9

    @pytest.mark.parametrize("alphabet_size", ALPHABETS)
    def test_value_bounds_property(self, alphabet_size, rng):
        """The raw-query bound never exceeds |q - reconstruction|."""
        beta, recon = _reconstruction_for(alphabet_size, rng)
        queries = rng.uniform(
            float(recon.min()) - 10.0, float(recon.max()) + 10.0, size=128
        )
        bounds = value_cell_bounds(queries, beta)
        assert bounds.shape == (128, alphabet_size)
        exact = np.abs(queries[:, None] - recon[None, :])
        assert np.all(bounds <= exact + 1e-9)

    def test_value_bounds_zero_inside_range(self):
        beta = [10.0, 20.0]
        bounds = value_cell_bounds([5.0, 15.0, 25.0], beta)
        # Each query value sits inside one symbol's range: bound is zero
        # there and positive for ranges it lies outside.
        assert bounds[0, 0] == 0.0 and bounds[1, 1] == 0.0 and bounds[2, 2] == 0.0
        assert bounds[0, 2] == pytest.approx(15.0)  # 5 is 15 below (20, inf)
        assert bounds[2, 0] == pytest.approx(15.0)  # 25 is 15 above (-inf, 10]
