"""Deadlines and thread safety in the query layer.

Two satellite contracts of the serving PR live here:

* cooperative deadlines — ``ScanPlan.run(deadline=...)`` chunks serial
  execution, checks between chunks and inside the kNN refine loop, and a
  deadline-bearing run is **bit-identical** to the deadline-free path;
* thread safety — ``ColumnSource`` caches and ``QueryEngine`` survive a
  multi-threaded hammer with every thread seeing exactly the
  single-threaded answers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import DeadlineExceeded
from repro.query import (
    ColumnSource,
    Deadline,
    QueryConfig,
    QueryEngine,
    ScanPlan,
    active_deadline,
    check_deadline,
)
from repro.query.ops import Operator
from repro.store import write_fleet_store


@pytest.fixture(scope="module")
def fleet_values():
    rng = np.random.default_rng(31)
    values = np.abs(rng.lognormal(4.0, 0.8, size=(40, 192)))
    values[:, 30:70] = 9.0
    return values


@pytest.fixture(scope="module")
def store(tmp_path_factory, fleet_values):
    path = tmp_path_factory.mktemp("deadline") / "fleet.rsym"
    return write_fleet_store(
        path, fleet_values, alphabet_size=8, method="median", window=1,
        shared_table=True, sampling_interval=900.0,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_accounting(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.now = 0.5
        assert deadline.elapsed() == 0.5
        assert deadline.remaining() == 1.5
        assert not deadline.expired()
        deadline.check(1, 10)            # not expired: free
        clock.now = 2.0
        assert deadline.expired()

    def test_check_raises_with_partial_work(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now = 1.5
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check(7, 40)
        error = info.value
        assert error.budget_ms == 1000.0
        assert error.elapsed_ms == 1500.0
        assert error.completed == 7
        assert error.total == 40
        assert "7 of 40" in str(error)
        assert error.code == "query.deadline-exceeded"

    def test_from_ms(self):
        assert Deadline.from_ms(250.0).budget == 0.25

    def test_check_deadline_free_when_inactive(self):
        assert active_deadline() is None
        check_deadline(0, 10)            # no-op, must not raise


@dataclass(frozen=True)
class RecordingOperator(Operator):
    """Observes the active deadline and the shard sizes the driver picks."""

    seen: list

    def run_shard(self, source, items):
        self.seen.append((len(items), active_deadline() is not None))
        matrix = source.matrix(meters=[source.ids[int(c)] for c in items])
        return matrix.sum(axis=1)

    def merge(self, parts, source, items, kept):
        return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


class TestPlanDeadline:
    def test_deadline_run_is_bit_identical(self, store):
        plain = ScanPlan(ColumnSource(store), RecordingOperator([])).run()
        timed = ScanPlan(ColumnSource(store), RecordingOperator([])).run(
            deadline=Deadline(3600.0)
        )
        np.testing.assert_array_equal(plain, timed)

    def test_deadline_chunks_serial_execution(self, store):
        seen: list = []
        ScanPlan(ColumnSource(store), RecordingOperator(seen)).run(
            deadline=Deadline(3600.0)
        )
        # 40 meters in chunks of 32: two shards, both under the deadline.
        assert [n for n, _ in seen] == [32, 8]
        assert all(active for _, active in seen)
        # Without a deadline: one shard, no ambient deadline.
        seen.clear()
        ScanPlan(ColumnSource(store), RecordingOperator(seen)).run()
        assert seen == [(40, False)]

    def test_expired_deadline_raises_before_any_read(self, store):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now = 2.0
        source = ColumnSource(store)
        with pytest.raises(DeadlineExceeded) as info:
            ScanPlan(source, RecordingOperator([])).run(deadline=deadline)
        assert info.value.completed == 0
        assert info.value.total == 40
        assert source.stats.columns_decoded == 0

    def test_mid_plan_expiry_reports_progress(self, store):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        @dataclass(frozen=True)
        class SlowOperator(RecordingOperator):
            def run_shard(self, source, items):
                clock.now += 1.2       # the first chunk blows the budget
                return super().run_shard(source, items)

        with pytest.raises(DeadlineExceeded) as info:
            ScanPlan(ColumnSource(store), SlowOperator([])).run(
                deadline=deadline
            )
        assert info.value.completed == 32
        assert info.value.total == 40

    def test_deadline_token_reset_after_run(self, store):
        ScanPlan(ColumnSource(store), RecordingOperator([])).run(
            deadline=Deadline(3600.0)
        )
        assert active_deadline() is None
        with pytest.raises(DeadlineExceeded):
            clock = FakeClock()
            expired = Deadline(1.0, clock=clock)
            clock.now = 2.0
            ScanPlan(ColumnSource(store), RecordingOperator([])).run(
                deadline=expired
            )
        assert active_deadline() is None


class TestEngineDeadline:
    def test_queries_with_roomy_deadline_match_without(
        self, store, fleet_values
    ):
        engine = QueryEngine(store)
        roomy = lambda: Deadline(3600.0)  # noqa: E731
        queries = fleet_values[:3]
        plain = engine.knn(queries, QueryConfig(k=5))
        timed = engine.knn(queries, QueryConfig(k=5), deadline=roomy())
        assert plain.ids == timed.ids
        assert plain.distances.tobytes() == timed.distances.tobytes()
        assert (
            engine.aggregate().symbol_counts.tobytes()
            == engine.aggregate(deadline=roomy()).symbol_counts.tobytes()
        )
        assert (
            engine.anomaly().scores.tobytes()
            == engine.anomaly(deadline=roomy()).scores.tobytes()
        )
        assert (
            engine.match("a{1,}").total_matches
            == engine.match("a{1,}", deadline=roomy()).total_matches
        )
        assert (
            engine.drift().distances.tobytes()
            == engine.drift(deadline=roomy()).distances.tobytes()
        )

    def test_each_query_kind_honours_expiry(self, store, fleet_values):
        engine = QueryEngine(store)
        clock = FakeClock()

        def expired():
            deadline = Deadline(1.0, clock=clock)
            clock.now += 2.0
            return deadline

        with pytest.raises(DeadlineExceeded):
            engine.knn(fleet_values[:2], QueryConfig(k=3),
                       deadline=expired())
        with pytest.raises(DeadlineExceeded):
            engine.aggregate(deadline=expired())
        with pytest.raises(DeadlineExceeded):
            engine.anomaly(deadline=expired())
        with pytest.raises(DeadlineExceeded):
            engine.match("a{1,}", deadline=expired())
        with pytest.raises(DeadlineExceeded):
            engine.drift(deadline=expired())

    def test_knn_refine_loop_checks_mid_item(self, store, fleet_values):
        """The refine loop must notice expiry even inside one query block."""
        engine = QueryEngine(store)
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        real_matrix = type(engine.source).matrix

        def slow_matrix(self, *args, **kwargs):
            clock.now += 2.0           # every decode burns the whole budget
            return real_matrix(self, *args, **kwargs)

        source_cls = type(engine.source)
        original = source_cls.matrix
        source_cls.matrix = slow_matrix
        try:
            with pytest.raises(DeadlineExceeded):
                engine.knn(fleet_values[:8], QueryConfig(k=3),
                           deadline=deadline)
        finally:
            source_cls.matrix = original


def _stats_bytes(source) -> bytes:
    histograms, peaks = source.column_stats()
    return histograms.tobytes() + peaks.tobytes()


class TestThreadSafety:
    def test_hammer_engine_from_many_threads(self, store, fleet_values):
        """Satellite stress test: shared engine, 8 threads, zero divergence."""
        engine = QueryEngine(store)
        reference = {
            "knn": engine.knn(fleet_values[:2], QueryConfig(k=4)),
            "agg": engine.aggregate(),
            "anomaly": engine.anomaly(),
            "stats": _stats_bytes(engine.source),
            "runs": engine.source.run_counts().tobytes(),
        }
        failures: list = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for _ in range(10):
                    knn = engine.knn(fleet_values[:2], QueryConfig(k=4))
                    assert knn.ids == reference["knn"].ids
                    assert (
                        knn.distances.tobytes()
                        == reference["knn"].distances.tobytes()
                    )
                    agg = engine.aggregate()
                    assert (
                        agg.symbol_counts.tobytes()
                        == reference["agg"].symbol_counts.tobytes()
                    )
                    scores = engine.anomaly().scores
                    assert (
                        scores.tobytes()
                        == reference["anomaly"].scores.tobytes()
                    )
                    assert _stats_bytes(engine.source) == reference["stats"]
                    assert (
                        engine.source.run_counts().tobytes()
                        == reference["runs"]
                    )
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads), "hung worker"
        assert not failures, f"thread-safety violation: {failures[:1]}"

    def test_cold_source_raced_by_threads(self, store, fleet_values):
        """First touch of every cache raced by 8 threads at once."""
        engine = QueryEngine(store)   # all caches cold
        expected = _stats_bytes(QueryEngine(store).source)
        results: list = []
        failures: list = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            try:
                barrier.wait(timeout=10.0)
                results.append(_stats_bytes(engine.source))
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not failures, f"cold-cache race: {failures[:1]}"
        assert len(results) == 8
        assert all(r == expected for r in results)
