"""Pattern-matching tests: parsing, run-level semantics, store integration.

The regex oracle cross-checks :func:`match_runs` against Python's ``re`` on
the expanded letter string: a symbol token is a *maximal* run
(``(?<!c)c{lo,hi}(?!c)``), a gap is a lazy ``.*?`` — leftmost
non-overlapping matches must agree span for span.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import QueryEngine, SymbolPattern, build_query_index, match_runs
from repro.store import RLE, write_fleet_store


def _runs_of(symbols) -> tuple:
    """Reference run-length encoding of a symbol list."""
    arr = np.asarray(symbols, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    change = np.flatnonzero(np.concatenate([[True], arr[1:] != arr[:-1]]))
    lengths = np.diff(np.append(change, arr.size))
    return arr[change], lengths


def _oracle_spans(symbols, pattern_text: str):
    """Leftmost non-overlapping spans via a regex over the letter string."""
    text = "".join(chr(ord("a") + s) for s in symbols)
    parts = []
    for raw in pattern_text.split():
        if raw == "*":
            parts.append(".*?")
            continue
        token = SymbolPattern.parse(raw).tokens[0]
        letter = chr(ord("a") + token.symbol)
        hi = "" if token.max_len is None else token.max_len
        parts.append(
            f"(?<!{letter}){letter}{{{token.min_len},{hi}}}(?!{letter})"
        )
    return [m.span() for m in re.finditer("".join(parts), text)]


class TestParsing:
    def test_letters_and_indices(self):
        pattern = SymbolPattern.parse("a 10{2,} * c{3}")
        symbols = [t.symbol for t in pattern.tokens]
        assert symbols == [0, 10, None, 2]
        assert pattern.tokens[1].min_len == 2 and pattern.tokens[1].max_len is None
        assert pattern.tokens[3].min_len == 3 and pattern.tokens[3].max_len == 3

    def test_range_bounds(self):
        token = SymbolPattern.parse("b{2,6}").tokens[0]
        assert (token.min_len, token.max_len) == (2, 6)

    def test_consecutive_gaps_collapse(self):
        pattern = SymbolPattern.parse("a * * b")
        assert sum(t.symbol is None for t in pattern.tokens) == 1

    @pytest.mark.parametrize("bad", ["a{0,}", "a{3,2}", "c{", "A", "-1", "a b{x}"])
    def test_bad_tokens(self, bad):
        with pytest.raises(QueryError):
            SymbolPattern.parse(f"a * {bad}" if bad != "a b{x}" else bad)

    def test_gap_only_pattern_rejected(self):
        with pytest.raises(QueryError, match="at least one symbol"):
            SymbolPattern.parse("* *")

    def test_adjacent_same_symbol_rejected(self):
        with pytest.raises(QueryError, match="maximal"):
            SymbolPattern.parse("a a")

    def test_alphabet_range_checked(self):
        with pytest.raises(QueryError, match="out of range"):
            SymbolPattern.parse("h", alphabet_size=4)

    def test_min_symbol_counts(self):
        pattern = SymbolPattern.parse("a{3,} * b a{2}")
        np.testing.assert_array_equal(
            pattern.min_symbol_counts(4), [5, 1, 0, 0]
        )


class TestMatchRuns:
    def test_simple_run_threshold(self):
        # "at least 3 windows at level 2"
        values, lengths = _runs_of([0, 2, 2, 2, 2, 1, 2, 2, 0])
        spans = match_runs(values, lengths, SymbolPattern.parse("c{3,}"))
        assert spans == [(1, 5)]

    def test_exact_run_is_maximal(self):
        values, lengths = _runs_of([2, 2, 2, 2, 0, 2, 2, 0])
        pattern = SymbolPattern.parse("c{2}")
        # The 4-run is not an exact-2 run; only the maximal run of 2 matches.
        assert match_runs(values, lengths, pattern) == [(5, 7)]

    def test_gap_chaining(self):
        values, lengths = _runs_of([3, 3, 0, 0, 1, 1, 1, 0, 2])
        pattern = SymbolPattern.parse("d{2} * c")
        assert match_runs(values, lengths, pattern) == [(0, 9)]

    def test_adjacent_groups_without_gap(self):
        values, lengths = _runs_of([1, 1, 2, 2, 2, 1])
        pattern = SymbolPattern.parse("b{2} c{3,}")
        assert match_runs(values, lengths, pattern) == [(0, 5)]

    def test_multiple_non_overlapping(self):
        values, lengths = _runs_of([1, 0, 1, 0, 1])
        spans = match_runs(values, lengths, SymbolPattern.parse("b"))
        assert spans == [(0, 1), (2, 3), (4, 5)]

    def test_no_match(self):
        values, lengths = _runs_of([0, 1, 0, 1])
        assert match_runs(values, lengths, SymbolPattern.parse("c")) == []
        assert match_runs(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            SymbolPattern.parse("a"),
        ) == []

    @pytest.mark.parametrize("pattern_text", [
        "a", "b{2,}", "c{2,3}", "a * b", "b{2} * a{1,2}", "a b", "c{1,} * c{2,}",
    ])
    def test_regex_oracle_agreement(self, pattern_text, rng):
        for _ in range(25):
            symbols = rng.integers(0, 3, size=40)
            values, lengths = _runs_of(symbols)
            ours = match_runs(values, lengths, SymbolPattern.parse(pattern_text))
            assert ours == _oracle_spans(symbols, pattern_text), (
                pattern_text, symbols.tolist()
            )


@pytest.fixture(scope="module")
def pattern_store(tmp_path_factory):
    rng = np.random.default_rng(21)
    values = np.abs(rng.lognormal(4.0, 0.8, size=(10, 240)))
    path = tmp_path_factory.mktemp("match") / "fleet.rsym"
    return write_fleet_store(
        path, values, alphabet_size=8, method="median", window=1,
        shared_table=True, sampling_interval=900.0, query_index=True,
    )


class TestStoreMatching:
    def test_spans_equal_per_column_match_runs(self, pattern_store):
        engine = QueryEngine.open(pattern_store.path)
        pattern = SymbolPattern.parse("h{1,} * a")
        result = engine.match(pattern)
        for meter_id in pattern_store.ids:
            values, lengths = pattern_store.runs(meter_id)
            expected = match_runs(values, lengths, pattern)
            assert result.spans.get(meter_id, []) == expected

    def test_dense_and_rle_agree(self, pattern_store, tmp_path):
        rng = np.random.default_rng(21)
        values = np.abs(rng.lognormal(4.0, 0.8, size=(10, 240)))
        rle = write_fleet_store(
            tmp_path / "rle.rsym", values, alphabet_size=8, method="median",
            window=1, shared_table=True, sampling_interval=900.0, layout=RLE,
        )
        a = QueryEngine.open(pattern_store.path).match("e{2,} * b")
        b = QueryEngine(rle).match("e{2,} * b")
        assert a.spans == b.spans

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_identical(self, pattern_store, workers):
        engine = QueryEngine.open(pattern_store.path)
        serial = engine.match("e{2,} * b", workers=1)
        sharded = engine.match("e{2,} * b", workers=workers)
        assert serial.spans == sharded.spans
        assert serial.runs_scanned == sharded.runs_scanned

    def test_constructed_pattern_survives_sharding(self, pattern_store):
        # Regression: a SymbolPattern built from tokens (no text) used to
        # crash worker-side, where the pattern was re-parsed from its text.
        from repro.query import PatternToken

        pattern = SymbolPattern(
            (PatternToken(4, 2, None), PatternToken(None, 0, None),
             PatternToken(1, 1, None))
        )
        engine = QueryEngine.open(pattern_store.path)
        serial = engine.match(pattern, workers=1)
        sharded = engine.match(pattern, workers=2)
        assert serial.spans == sharded.spans

    def test_index_prefilter_only_skips_impossible(self, pattern_store):
        engine = QueryEngine.open(pattern_store.path)
        with_index = engine.match("h{200,}")
        without = QueryEngine(pattern_store, index=None).match("h{200,}")
        assert with_index.spans == without.spans
        # 200 windows of the top symbol can never fit a 240-window column
        # with other symbols present: the prefilter rejects without scanning.
        assert with_index.columns_skipped > 0

    def test_pushdown_scans_fewer_elements(self, pattern_store):
        engine = QueryEngine.open(pattern_store.path)
        result = engine.match("e * b")
        assert 0 < result.runs_scanned
        assert result.windows_total == pattern_store.n_symbols
        assert result.scan_fraction < 1.0

    def test_pattern_symbol_out_of_alphabet(self, pattern_store):
        engine = QueryEngine.open(pattern_store.path)
        with pytest.raises(QueryError, match="out of range"):
            engine.match("9")
