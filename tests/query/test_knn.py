"""kNN engine tests: pruned == brute force, bit for bit, for every worker count.

Acceptance: ``knn`` with lower-bound pruning returns bit-identical neighbour
sets to brute-force exact search on the session fixture, for workers
{1, 2, 4}.  Plus the bugfix satellite: a store written with genuinely
per-meter tables is refused with a clear :class:`QueryError` instead of
returning nonsense distances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import DayVectorConfig
from repro.errors import QueryError
from repro.query import (
    QueryConfig,
    QueryEngine,
    build_query_index,
    query_index_path,
    resolve_shared_table,
    write_query_index,
)
from repro.store import RLE, SymbolStore, write_day_vector_store, write_fleet_store


def _fleet_matrix(dataset) -> np.ndarray:
    houses = list(dataset)
    n_samples = min(len(house.mains) for house in houses)
    return np.vstack([house.mains.values[:n_samples] for house in houses])


@pytest.fixture(scope="module")
def fixture_store(small_redd, tmp_path_factory):
    """The session fixture's fleet as a shared-table store with sidecar."""
    path = tmp_path_factory.mktemp("knn") / "fleet.rsym"
    matrix = _fleet_matrix(small_redd)
    store = write_fleet_store(
        path, matrix, alphabet_size=8, method="median", window=15,
        shared_table=True, sampling_interval=120.0,
        meter_ids=[house.house_id for house in list(small_redd)],
        query_index=True,
    )
    return store


@pytest.fixture(scope="module")
def synthetic_store(tmp_path_factory):
    """A wider fleet (64 meters) where pruning actually engages."""
    rng = np.random.default_rng(11)
    levels = np.exp(rng.normal(5.0, 1.0, size=64))[:, None]
    day = 1.0 + 0.5 * np.sin(np.linspace(0, 6 * np.pi, 288))[None, :]
    values = np.abs(levels * day * (1 + rng.normal(0, 0.1, size=(64, 288))))
    path = tmp_path_factory.mktemp("knn_synth") / "fleet.rsym"
    return write_fleet_store(
        path, values, alphabet_size=16, method="median", window=1,
        shared_table=True, sampling_interval=900.0, query_index=True,
    )


def _queries_from(store, seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    picks = rng.choice(store.n_meters, size=min(n, store.n_meters), replace=False)
    decoded = store.decode(meters=[store.ids[p] for p in picks])
    return decoded * (1.0 + rng.normal(0.0, 0.03, size=decoded.shape))


class TestExactness:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pruned_equals_brute_force_on_fixture(self, fixture_store, workers):
        engine = QueryEngine.open(fixture_store.path)
        queries = _queries_from(fixture_store, seed=3, n=6)
        pruned = engine.knn(queries, QueryConfig(k=3, workers=workers))
        brute = engine.brute_force_knn(queries, k=3)
        np.testing.assert_array_equal(pruned.positions, brute.positions)
        np.testing.assert_array_equal(pruned.distances, brute.distances)
        assert pruned.ids == brute.ids

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pruned_equals_brute_force_synthetic(self, synthetic_store, workers):
        engine = QueryEngine.open(synthetic_store.path)
        queries = _queries_from(synthetic_store, seed=5, n=16)
        pruned = engine.knn(queries, QueryConfig(k=5, workers=workers))
        brute = engine.brute_force_knn(queries, k=5)
        np.testing.assert_array_equal(pruned.positions, brute.positions)
        np.testing.assert_array_equal(pruned.distances, brute.distances)

    def test_pruning_engages(self, synthetic_store):
        engine = QueryEngine.open(synthetic_store.path)
        queries = _queries_from(synthetic_store, seed=7, n=16)
        result = engine.knn(queries, QueryConfig(k=3, refine_chunk=8))
        assert result.stats.index_used
        assert result.stats.decoded_fraction < 1.0
        assert result.stats.refined >= result.stats.n_queries * 3

    def test_self_query_distance_zero(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        query = fixture_store.decode(meters=[fixture_store.ids[2]])[0]
        result = engine.knn(query, QueryConfig(k=1))
        assert result.positions[0, 0] == 2
        assert result.distances[0, 0] == 0.0

    def test_exclude_ids(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        query_id = fixture_store.ids[2]
        query = fixture_store.decode(meters=[query_id])[0]
        result = engine.knn(query, QueryConfig(k=2), exclude_ids=[query_id])
        assert query_id not in result.ids[0]
        assert result.stats.n_candidates == fixture_store.n_meters - 1

    def test_rle_store_matches_dense(self, small_redd, tmp_path):
        matrix = _fleet_matrix(small_redd)
        dense = write_fleet_store(
            tmp_path / "d.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=True, query_index=True,
        )
        rle = write_fleet_store(
            tmp_path / "r.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=True, layout=RLE, query_index=True,
        )
        queries = _queries_from(dense, seed=1, n=4)
        a = QueryEngine.open(dense.path).knn(queries, QueryConfig(k=3))
        b = QueryEngine.open(rle.path).knn(queries, QueryConfig(k=3))
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_tie_break_is_by_column_position(self, tmp_path):
        # Three identical meters: ties resolve by position, deterministically.
        values = np.vstack([np.linspace(1, 100, 64)] * 3 + [np.full(64, 500.0)])
        store = write_fleet_store(
            tmp_path / "ties.rsym", values, alphabet_size=4, method="uniform",
            shared_table=True, query_index=True,
        )
        engine = QueryEngine(store, index=build_query_index(store))
        query = store.decode(meters=[0])[0]
        result = engine.knn(query, QueryConfig(k=3))
        np.testing.assert_array_equal(result.positions[0], [0, 1, 2])
        brute = engine.brute_force_knn(query, k=3)
        np.testing.assert_array_equal(result.positions, brute.positions)

    def test_k_larger_than_fleet(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        query = fixture_store.decode(meters=[fixture_store.ids[0]])[0]
        result = engine.knn(query, QueryConfig(k=100))
        assert result.positions.shape == (1, fixture_store.n_meters)
        # All candidates refined, sorted ascending by distance.
        assert np.all(np.diff(result.distances[0]) >= 0)


class TestValidation:
    def test_wrong_query_length(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        with pytest.raises(QueryError, match="query length"):
            engine.knn(np.zeros(3), QueryConfig(k=1))

    def test_nan_query(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        width = int(fixture_store.counts[0])
        bad = np.full(width, np.nan)
        with pytest.raises(QueryError, match="NaN"):
            engine.knn(bad, QueryConfig(k=1))

    def test_unknown_exclude_id(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        query = fixture_store.decode(meters=[fixture_store.ids[0]])[0]
        with pytest.raises(Exception):
            engine.knn(query, QueryConfig(k=1), exclude_ids=["nope"])

    def test_nonpositive_refine_chunk_rejected_at_construction(self):
        # Regression: refine_chunk <= 0 used to surface as a confusing
        # downstream failure; now it's a QueryError before any query runs.
        with pytest.raises(QueryError, match="refine_chunk"):
            QueryConfig(k=1, refine_chunk=0)
        with pytest.raises(QueryError, match="refine_chunk"):
            QueryConfig(k=1, refine_chunk=-4)

    def test_nonpositive_k_rejected_at_construction(self):
        with pytest.raises(QueryError, match="k must be"):
            QueryConfig(k=0)
        with pytest.raises(QueryError, match="k must be"):
            QueryConfig(k=-1)

    def test_negative_workers_rejected_at_construction(self):
        with pytest.raises(QueryError, match="workers"):
            QueryConfig(k=1, workers=-1)
        # 0 stays legal: the CLI convention for "one worker per CPU".
        assert QueryConfig(k=1, workers=0).workers == 0


class TestPerMeterTableRefusal:
    """Bugfix satellite: mismatched per-meter tables must refuse loudly."""

    def test_per_meter_fleet_store_is_refused(self, small_redd, tmp_path):
        matrix = _fleet_matrix(small_redd)
        store = write_fleet_store(
            tmp_path / "local.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=False,
        )
        engine = QueryEngine(store)
        query = np.zeros(int(store.counts[0]))
        with pytest.raises(QueryError, match="distinct per-meter lookup"):
            engine.knn(query, QueryConfig(k=1))
        # mindist between columns needs the shared table too.
        with pytest.raises(QueryError, match="distinct per-meter lookup"):
            engine.mindist_columns(store.ids[0], store.ids[1])

    def test_local_day_vector_store_is_refused(self, small_redd, tmp_path):
        config = DayVectorConfig(
            encoding="median", aggregation_seconds=3600.0, alphabet_size=4,
            global_table=False,
        )
        write_day_vector_store(tmp_path / "dv.rsym", small_redd, config)
        store = SymbolStore.open(tmp_path / "dv.rsym")
        with pytest.raises(QueryError, match="distinct per-meter lookup"):
            resolve_shared_table(store)

    def test_global_day_vector_store_renormalises(self, small_redd, tmp_path):
        """All-equal by-label tables collapse to one shared table: kNN over
        (house, day) rows works on global-table day-vector stores."""
        config = DayVectorConfig(
            encoding="median", aggregation_seconds=3600.0, alphabet_size=4,
            global_table=True,
        )
        write_day_vector_store(tmp_path / "dvg.rsym", small_redd, config)
        store = SymbolStore.open(tmp_path / "dvg.rsym")
        table = resolve_shared_table(store)
        assert table.size == 4
        engine = QueryEngine(store, index=build_query_index(store))
        query = store.decode(meters=[store.ids[0]])[0]
        result = engine.knn(query, QueryConfig(k=3))
        brute = engine.brute_force_knn(query, k=3)
        np.testing.assert_array_equal(result.positions, brute.positions)
        np.testing.assert_array_equal(result.distances, brute.distances)


class TestSidecarIntegration:
    def test_query_index_written_by_fleet_writer(self, fixture_store):
        assert query_index_path(fixture_store.path).exists()

    def test_open_picks_up_sidecar(self, fixture_store):
        engine = QueryEngine.open(fixture_store.path)
        assert engine.index(build=False) is not None

    def test_missing_sidecar_builds_in_memory(self, small_redd, tmp_path):
        matrix = _fleet_matrix(small_redd)
        store = write_fleet_store(
            tmp_path / "bare.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=True,
        )
        engine = QueryEngine.open(store.path)
        assert engine.index(build=False) is None
        queries = _queries_from(store, seed=2, n=2)
        result = engine.knn(queries, QueryConfig(k=2))
        assert result.stats.index_used
        brute = engine.brute_force_knn(queries, k=2)
        np.testing.assert_array_equal(result.positions, brute.positions)

    def test_stale_sidecar_is_refused(self, small_redd, tmp_path):
        matrix = _fleet_matrix(small_redd)
        first = write_fleet_store(
            tmp_path / "a.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=True, query_index=True,
        )
        other = write_fleet_store(
            tmp_path / "b.rsym", matrix[:4], alphabet_size=8, method="median",
            window=15, shared_table=True,
        )
        index = build_query_index(first)
        with pytest.raises(QueryError, match="stale"):
            QueryEngine(other, index=index)

    def test_sidecar_bytes_identical_across_workers(self, synthetic_store, tmp_path):
        paths = []
        for workers in (1, 2, 4):
            path = tmp_path / f"w{workers}.rsymx"
            index = build_query_index(synthetic_store, workers=workers)
            index.write(path)
            paths.append(path)
        blobs = [p.read_bytes() for p in paths]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_write_query_index_default_path(self, small_redd, tmp_path):
        matrix = _fleet_matrix(small_redd)
        store = write_fleet_store(
            tmp_path / "c.rsym", matrix, alphabet_size=8, method="median",
            window=15, shared_table=True,
        )
        sidecar = write_query_index(store)
        assert sidecar == tmp_path / "c.rsymx"
        assert sidecar.exists()
