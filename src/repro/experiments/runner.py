"""Result containers and plain-text rendering for the reproduction harness.

Every experiment module returns structured results; this module renders them
as aligned text tables (the closest offline analogue of the paper's figures)
and provides a tiny orchestration helper that runs a grid of classification
cells while reusing day vectors across classifiers, like the paper's Weka
runs reuse one ARFF file per configuration.

Day-vector symbolisation is delegated to the vectorized
:class:`repro.pipeline.FleetEncoder` (one call per configuration encodes
every (house, day) row at once — see
:func:`repro.analytics.vectors.build_day_vectors`), so grid cells spend
their time in the classifiers, not in per-value encoding loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..analytics.classification import ClassificationResult, classify_households
from ..analytics.vectors import RAW_ENCODING, DayVectorConfig, build_day_vectors
from ..datasets.base import MeterDataset
from ..errors import ExperimentError
from ..ml.dataset import MLDataset
from ..parallel.executor import ParallelExecutor
from .config import ExperimentGrid

__all__ = ["render_table", "GridRunner", "format_float"]


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point formatting used across the result tables."""
    return f"{value:.{digits}f}"


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 2,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                line.append(format_float(value, float_digits))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [
        max(len(column), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class GridRunner:
    """Run a classification grid, reusing day vectors across classifiers.

    Parameters
    ----------
    dataset:
        The multi-house dataset to evaluate on.
    n_folds:
        Cross-validation folds (10 in the paper).
    seed:
        Seed shared by fold shuffling across cells, so cells are comparable.
    workers:
        Process count for :meth:`run_grid`.  ``1`` (default) is the plain
        serial loop; ``> 1`` shards the grid one configuration row (all its
        classifiers) per task through
        :class:`~repro.parallel.ParallelExecutor` — results are returned in
        the same stable order and are bit-identical to the serial run (the
        ``tests/parallel`` parity suite pins this).  Workers rebuild the
        dataset from its :class:`~repro.datasets.DatasetDescriptor` when it
        has one, so no raw sample arrays are pickled.
    store_dir:
        Optional directory of bit-packed day-vector stores
        (:mod:`repro.store`).  Symbolic configurations are then read from
        ``<store_dir>/dayvec_<encoding>....rsym`` when the file exists and
        written there the first time they are built — so grid cells sharing
        an encoding share one store across runner instances *and* across
        processes, instead of re-encoding the fleet per cell.
    """

    dataset: MeterDataset
    n_folds: int = 10
    seed: int = 0
    workers: int = 1
    store_dir: Optional[Union[str, Path]] = None
    _vector_cache: Dict[DayVectorConfig, MLDataset] = field(
        default_factory=dict, repr=False
    )
    _executor: Optional[ParallelExecutor] = field(default=None, repr=False)

    def vectors_for(self, config: DayVectorConfig) -> MLDataset:
        """Day vectors for ``config``, memoized per encoding.

        The cache key is the full (frozen) :class:`DayVectorConfig` — every
        field that shapes the encoded matrix — so two configs share one
        dataset exactly when their encodings agree, and configs that differ
        only in fields the display label omits (``bootstrap_days``,
        ``min_hours``) can never collide.
        """
        vectors = self._vector_cache.get(config)
        if vectors is None:
            vectors = self._load_or_build(config)
            self._vector_cache[config] = vectors
        return vectors

    def _load_or_build(self, config: DayVectorConfig) -> MLDataset:
        if self.store_dir is None or config.encoding == RAW_ENCODING:
            return build_day_vectors(self.dataset, config)
        from ..store.day_vectors import (
            day_vector_store_path,
            load_day_vectors,
            write_day_vector_store,
        )

        path = day_vector_store_path(self.store_dir, config)
        if path.exists():
            return load_day_vectors(path, config=config)
        return write_day_vector_store(path, self.dataset, config)

    def run_cell(self, config: DayVectorConfig, classifier: str) -> ClassificationResult:
        """One (configuration, classifier) cell."""
        return classify_households(
            self.dataset,
            config,
            classifier=classifier,
            n_folds=self.n_folds,
            seed=self.seed,
            vectors=self.vectors_for(config),
        )

    def run_grid(
        self, grid: ExperimentGrid, classifiers: Sequence[str]
    ) -> List[ClassificationResult]:
        """Every cell of ``grid`` for every classifier, in a stable order.

        With ``workers > 1`` the cells are distributed over a process pool,
        chunked so one configuration's classifiers land on one worker (its
        day vectors are built once there, mirroring the serial cache); the
        result list order and every score are identical to the serial run.
        """
        if not classifiers:
            raise ExperimentError("at least one classifier is required")
        cells = [
            (config, classifier) for config in grid for classifier in classifiers
        ]
        # A single-configuration grid has only one chunk, which the executor
        # would run in-process anyway — take the serial path outright so the
        # dataset is never rebuilt from its descriptor in the parent.
        if self.workers == 1 or len(cells) <= len(classifiers):
            return [self.run_cell(config, classifier) for config, classifier in cells]

        from ..parallel.worker import GridChunkTask, run_grid_chunk

        source = self.dataset.descriptor or self.dataset
        # One chunk per configuration (its full classifier row): day vectors
        # are built once per chunk wherever it lands, and a descriptor-less
        # dataset is pickled once per chunk instead of once per cell.
        width = len(classifiers)
        tasks = [
            GridChunkTask(
                source, tuple(cells[lo:lo + width]), self.n_folds, self.seed,
                str(self.store_dir) if self.store_dir is not None else None,
            )
            for lo in range(0, len(cells), width)
        ]
        if self._executor is None:
            self._executor = ParallelExecutor(self.workers)
        chunks = self._executor.map(run_grid_chunk, tasks)
        return [result for chunk in chunks for result in chunk]

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "GridRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def results_as_rows(results: Iterable[ClassificationResult]) -> List[Dict[str, object]]:
        """Flatten results for :func:`render_table`."""
        return [
            {
                "configuration": result.config.label(),
                "classifier": result.classifier,
                "f_measure": result.f_measure,
                "time_s": result.processing_seconds,
            }
            for result in results
        ]
