"""Experiment grids and dataset defaults for the reproduction harness.

The paper's evaluation sweeps three axes: separator method (distinctmedian,
median, uniform), temporal aggregation (1 hour, 15 minutes) and alphabet size
(2, 4, 8, 16), evaluated with four classifiers, with per-house and global
lookup tables, against raw-value baselines.  :class:`ExperimentGrid` encodes
that sweep; :func:`default_dataset` builds the synthetic REDD-like dataset the
benchmarks run on (coarser than 1 Hz so the full grid completes in minutes —
the analytics aggregate to 15-minute/1-hour windows anyway, so this does not
change the shape of the results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..analytics.vectors import DayVectorConfig
from ..datasets.base import MeterDataset
from ..datasets.redd import generate_redd
from ..errors import ExperimentError

__all__ = [
    "ExperimentGrid",
    "default_dataset",
    "PAPER_METHODS",
    "PAPER_AGGREGATIONS",
    "PAPER_ALPHABET_SIZES",
    "PAPER_CLASSIFIERS",
]

#: The separator methods of the paper, in the order of its figures.
PAPER_METHODS: Tuple[str, ...] = ("distinctmedian", "median", "uniform")

#: Aggregation windows (seconds): 1 hour and 15 minutes.
PAPER_AGGREGATIONS: Tuple[float, ...] = (3600.0, 900.0)

#: Alphabet sizes 2..16 (powers of two), as in the paper.
PAPER_ALPHABET_SIZES: Tuple[int, ...] = (2, 4, 8, 16)

#: The four Weka classifiers of Table 1 and their stand-ins here.
PAPER_CLASSIFIERS: Tuple[str, ...] = ("random_forest", "j48", "naive_bayes", "logistic")


@dataclass(frozen=True)
class ExperimentGrid:
    """A sweep over encodings × aggregations × alphabet sizes.

    ``global_table`` adds the single-lookup-table variants; ``include_raw``
    adds the aggregated raw baselines (one per aggregation window).
    """

    methods: Tuple[str, ...] = PAPER_METHODS
    aggregations: Tuple[float, ...] = PAPER_AGGREGATIONS
    alphabet_sizes: Tuple[int, ...] = PAPER_ALPHABET_SIZES
    global_table: bool = False
    include_raw: bool = True
    bootstrap_days: int = 2
    min_hours: float = 20.0

    @classmethod
    def paper(cls, global_table: bool = False) -> "ExperimentGrid":
        """The full grid of Table 1 (one table scope at a time)."""
        return cls(global_table=global_table)

    @classmethod
    def quick(cls) -> "ExperimentGrid":
        """A reduced grid for tests: one aggregation, two alphabet sizes."""
        return cls(
            methods=("median", "uniform"),
            aggregations=(3600.0,),
            alphabet_sizes=(4, 16),
        )

    def symbolic_configs(self) -> List[DayVectorConfig]:
        """All symbolic :class:`DayVectorConfig` cells of the grid."""
        configs: List[DayVectorConfig] = []
        for method in self.methods:
            for aggregation in self.aggregations:
                for size in self.alphabet_sizes:
                    configs.append(
                        DayVectorConfig(
                            encoding=method,
                            aggregation_seconds=aggregation,
                            alphabet_size=size,
                            global_table=self.global_table,
                            bootstrap_days=self.bootstrap_days,
                            min_hours=self.min_hours,
                        )
                    )
        return configs

    def raw_configs(self) -> List[DayVectorConfig]:
        """Raw-value baseline cells (one per aggregation window)."""
        if not self.include_raw:
            return []
        return [
            DayVectorConfig(
                encoding="raw",
                aggregation_seconds=aggregation,
                bootstrap_days=self.bootstrap_days,
                min_hours=self.min_hours,
            )
            for aggregation in self.aggregations
        ]

    def all_configs(self) -> List[DayVectorConfig]:
        """Symbolic cells followed by raw baselines."""
        return self.symbolic_configs() + self.raw_configs()

    def __iter__(self) -> Iterator[DayVectorConfig]:
        return iter(self.all_configs())

    def __len__(self) -> int:
        return len(self.all_configs())


def default_dataset(
    days: int = 10,
    sampling_interval: float = 60.0,
    seed: int = 42,
    with_gaps: bool = True,
) -> MeterDataset:
    """The synthetic REDD-like dataset the benchmarks use.

    REDD samples at 1 Hz; the default here is 60 s so the full Table 1 grid
    runs in minutes on a laptop.  Pass ``sampling_interval=1.0`` for the
    faithful (much slower) setting — results only shift in absolute timing,
    not in which method wins.
    """
    if days < 4:
        raise ExperimentError(
            "need at least 4 days (2 bootstrap + enough evaluation days)"
        )
    return generate_redd(
        days=days, sampling_interval=sampling_interval, seed=seed, with_gaps=with_gaps
    )
