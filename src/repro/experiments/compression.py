"""Section 2.3 — compression-ratio analysis.

The paper's example: 1 Hz doubles are ~680 kB per day, while 16 symbols at a
15-minute aggregation are 384 bits — about three orders of magnitude less.
This experiment reproduces that number and sweeps the alphabet-size ×
aggregation-window plane so the trade-off surface can be tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.compression import CompressionModel, CompressionReport
from ..errors import ExperimentError

__all__ = ["CompressionSweep", "compression_sweep", "paper_example_report"]


@dataclass(frozen=True)
class CompressionSweep:
    """Compression reports over a grid of (alphabet size, aggregation window)."""

    sampling_interval: float
    reports: Dict[Tuple[int, float], CompressionReport]

    def rows(self) -> List[Dict[str, object]]:
        """One row per configuration with sizes and ratios."""
        rows: List[Dict[str, object]] = []
        for (alphabet, window), report in sorted(self.reports.items()):
            rows.append(
                {
                    "alphabet_size": alphabet,
                    "aggregation_minutes": window / 60.0,
                    "raw_kB_per_day": report.raw_bits_per_day / 8.0 / 1024.0,
                    "symbolic_bits_per_day": report.symbolic_bits_per_day,
                    "ratio": report.ratio,
                    "orders_of_magnitude": report.orders_of_magnitude,
                }
            )
        return rows

    def report(self, alphabet_size: int, aggregation_seconds: float) -> CompressionReport:
        """Look up one configuration."""
        try:
            return self.reports[(alphabet_size, aggregation_seconds)]
        except KeyError:
            raise ExperimentError(
                f"no report for alphabet {alphabet_size}, window {aggregation_seconds}"
            ) from None


def _compression_cell(task) -> CompressionReport:
    """One (alphabet, window) report (module-level for process-pool pickling)."""
    alphabet, window, sampling_interval, value_bits = task
    model = CompressionModel(sampling_interval=sampling_interval, value_bits=value_bits)
    return model.report(alphabet, window)


def compression_sweep(
    alphabet_sizes: Sequence[int] = (2, 4, 8, 16),
    aggregation_seconds: Sequence[float] = (60.0, 900.0, 3600.0),
    sampling_interval: float = 1.0,
    value_bits: int = 64,
    workers: int = 1,
) -> CompressionSweep:
    """Compression reports over the full grid.

    ``workers > 1`` shards the grid one cell per process-pool task (the cells
    are closed-form arithmetic, so this mainly exercises the shared
    ``--workers`` plumbing; outputs are identical for every worker count).
    """
    cells = [
        (int(alphabet), float(window), sampling_interval, value_bits)
        for alphabet in alphabet_sizes
        for window in aggregation_seconds
    ]
    if workers == 1:
        cell_reports = [_compression_cell(cell) for cell in cells]
    else:
        from ..parallel.executor import ParallelExecutor

        with ParallelExecutor(workers) as executor:
            cell_reports = executor.map(_compression_cell, cells)
    reports = {
        (alphabet, window): report
        for (alphabet, window, _, _), report in zip(cells, cell_reports)
    }
    return CompressionSweep(sampling_interval=sampling_interval, reports=reports)


def paper_example_report() -> CompressionReport:
    """The exact Section 2.3 example (1 Hz doubles vs 16 symbols @ 15 min)."""
    return CompressionModel.paper_example()
