"""Section 2.3 — compression-ratio analysis.

The paper's example: 1 Hz doubles are ~680 kB per day, while 16 symbols at a
15-minute aggregation are 384 bits — about three orders of magnitude less.
This experiment reproduces that number and sweeps the alphabet-size ×
aggregation-window plane so the trade-off surface can be tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.compression import CompressionModel, CompressionReport, MeasuredCompression
from ..errors import ExperimentError

__all__ = ["CompressionSweep", "compression_sweep", "paper_example_report"]


@dataclass(frozen=True)
class CompressionSweep:
    """Compression reports over a grid of (alphabet size, aggregation window).

    ``measured`` holds the real on-disk rates of any
    :class:`~repro.store.SymbolStore` passed to :func:`compression_sweep`,
    keyed like ``reports`` — those cells render the analytic and measured
    bits per day side by side, with a ``!`` flag past the 5% tolerance.
    """

    sampling_interval: float
    reports: Dict[Tuple[int, float], CompressionReport]
    measured: Dict[Tuple[int, float], MeasuredCompression] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """One row per configuration with sizes and ratios."""
        rows: List[Dict[str, object]] = []
        for (alphabet, window), report in sorted(self.reports.items()):
            row: Dict[str, object] = {
                "alphabet_size": alphabet,
                "aggregation_minutes": window / 60.0,
                "raw_kB_per_day": report.raw_bits_per_day / 8.0 / 1024.0,
                "symbolic_bits_per_day": report.symbolic_bits_per_day,
                "ratio": report.ratio,
                "orders_of_magnitude": report.orders_of_magnitude,
            }
            if self.measured:
                cell = self.measured.get((alphabet, window))
                if cell is None:
                    row["measured_bits_per_day"] = "-"
                    row["divergence_pct"] = "-"
                    row["check"] = "-"
                else:
                    row["measured_bits_per_day"] = cell.measured_bits_per_day
                    row["divergence_pct"] = 100.0 * cell.divergence
                    row["check"] = "!" if cell.flagged else "ok"
            rows.append(row)
        return rows

    def report(self, alphabet_size: int, aggregation_seconds: float) -> CompressionReport:
        """Look up one configuration."""
        try:
            return self.reports[(alphabet_size, aggregation_seconds)]
        except KeyError:
            raise ExperimentError(
                f"no report for alphabet {alphabet_size}, window {aggregation_seconds}"
            ) from None


def _compression_cell(task) -> CompressionReport:
    """One (alphabet, window) report (module-level for process-pool pickling)."""
    alphabet, window, sampling_interval, value_bits = task
    model = CompressionModel(sampling_interval=sampling_interval, value_bits=value_bits)
    return model.report(alphabet, window)


def compression_sweep(
    alphabet_sizes: Sequence[int] = (2, 4, 8, 16),
    aggregation_seconds: Sequence[float] = (60.0, 900.0, 3600.0),
    sampling_interval: float = 1.0,
    value_bits: int = 64,
    workers: int = 1,
    store=None,
) -> CompressionSweep:
    """Compression reports over the full grid.

    ``workers > 1`` shards the grid one cell per process-pool task (the cells
    are closed-form arithmetic, so this mainly exercises the shared
    ``--workers`` plumbing; outputs are identical for every worker count).

    ``store`` — a :class:`~repro.store.SymbolStore` or a path to one — adds
    the store's *measured* bits per day next to the analytic number for its
    (alphabet, window) cell; the cell is added to the grid when missing so
    the cross-check always appears.
    """
    alphabet_sizes = [int(a) for a in alphabet_sizes]
    aggregation_seconds = [float(w) for w in aggregation_seconds]
    measured: Dict[Tuple[int, float], MeasuredCompression] = {}
    if store is not None:
        from ..store.format import SymbolStore
        from ..store.segments import SegmentedStore, open_store

        already_open = isinstance(store, (SymbolStore, SegmentedStore))
        opened = store if already_open else open_store(store)
        model = CompressionModel(
            sampling_interval=sampling_interval, value_bits=value_bits
        )
        try:
            cell = model.measured_report(opened)
        finally:
            if opened is not store:  # close only what this call opened
                opened.close()
        key = (opened.alphabet_size, cell.aggregation_seconds)
        measured[key] = cell
        if key[0] not in alphabet_sizes:
            alphabet_sizes.append(key[0])
        if key[1] not in aggregation_seconds:
            aggregation_seconds.append(key[1])
    cells = [
        (int(alphabet), float(window), sampling_interval, value_bits)
        for alphabet in alphabet_sizes
        for window in aggregation_seconds
    ]
    if workers == 1:
        cell_reports = [_compression_cell(cell) for cell in cells]
    else:
        from ..parallel.executor import ParallelExecutor

        with ParallelExecutor(workers) as executor:
            cell_reports = executor.map(_compression_cell, cells)
    reports = {
        (alphabet, window): report
        for (alphabet, window, _, _), report in zip(cells, cell_reports)
    }
    return CompressionSweep(
        sampling_interval=sampling_interval, reports=reports, measured=measured
    )


def paper_example_report() -> CompressionReport:
    """The exact Section 2.3 example (1 Hz doubles vs 16 symbols @ 15 min)."""
    return CompressionModel.paper_example()
