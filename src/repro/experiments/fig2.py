"""Figure 2 — distribution of power levels follows a log-normal distribution.

The paper plots the histogram of 1-second power readings of the REDD data
(0–2400 W) and observes it is log-normal, which motivates the median /
distinctmedian separators over SAX's Gaussian assumption.  This experiment
computes the histogram over the synthetic dataset, fits a log-normal and a
normal distribution to the positive readings and reports which fits better
(Kolmogorov–Smirnov statistic — lower is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..datasets.base import MeterDataset
from ..errors import ExperimentError

__all__ = ["DistributionReport", "power_distribution"]


@dataclass(frozen=True)
class DistributionReport:
    """Histogram plus goodness-of-fit of log-normal vs normal models."""

    bin_edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    lognormal_ks: float
    normal_ks: float
    lognormal_params: Tuple[float, float, float]

    @property
    def lognormal_fits_better(self) -> bool:
        """The paper's claim: the log-normal model fits the readings better."""
        return self.lognormal_ks < self.normal_ks

    def rows(self) -> List[Dict[str, object]]:
        """Histogram rows for table rendering (Figure 2's bars)."""
        return [
            {"power_w": f"{int(low)}-{int(high)}", "count": count}
            for low, high, count in zip(self.bin_edges[:-1], self.bin_edges[1:], self.counts)
        ]


def power_distribution(
    dataset: MeterDataset,
    bin_width: float = 100.0,
    max_power: float = 2400.0,
    sample_limit: int = 500_000,
    seed: int = 0,
) -> DistributionReport:
    """Histogram of raw readings across all houses plus distribution fits."""
    if bin_width <= 0 or max_power <= 0:
        raise ExperimentError("bin_width and max_power must be positive")
    values: List[np.ndarray] = [house.mains.values for house in dataset]
    pooled = np.concatenate(values)
    pooled = pooled[pooled > 0]
    if pooled.size == 0:
        raise ExperimentError("dataset holds no positive readings")
    if pooled.size > sample_limit:
        rng = np.random.default_rng(seed)
        pooled = rng.choice(pooled, size=sample_limit, replace=False)

    edges = np.arange(0.0, max_power + bin_width, bin_width)
    counts, _ = np.histogram(pooled, bins=edges)

    log_shape, log_loc, log_scale = scipy_stats.lognorm.fit(pooled, floc=0.0)
    lognormal_ks = scipy_stats.kstest(
        pooled, "lognorm", args=(log_shape, log_loc, log_scale)
    ).statistic
    normal_ks = scipy_stats.kstest(
        pooled, "norm", args=(pooled.mean(), pooled.std())
    ).statistic
    return DistributionReport(
        bin_edges=tuple(float(e) for e in edges),
        counts=tuple(int(c) for c in counts),
        lognormal_ks=float(lognormal_ks),
        normal_ks=float(normal_ks),
        lognormal_params=(float(log_shape), float(log_loc), float(log_scale)),
    )
