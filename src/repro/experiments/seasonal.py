"""Seasonal-change study on CER-like data (paper Section 4, future work).

The paper suggests using the Irish CER dataset (1.5 years, strong seasonal
cycle) to study when the lookup table should be rebuilt "on the fly".  This
experiment quantifies that: a household with a pronounced annual cycle is
encoded for a full year with

* a **static** table learned once from the two-day bootstrap window, and
* an **adaptive** table maintained by the :class:`~repro.core.OnlineEncoder`
  drift monitor (rebuild + re-ship whenever the running median drifts by more
  than a threshold),

and the per-month reconstruction error of both is compared, together with the
extra bandwidth spent on shipping rebuilt tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.lookup import LookupTable
from ..core.streaming import OnlineEncoder
from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..datasets.cer import CERGenerator
from ..errors import ExperimentError

__all__ = ["SeasonalReport", "seasonal_drift_study"]


@dataclass(frozen=True)
class SeasonalReport:
    """Monthly reconstruction error for static vs adaptive lookup tables."""

    monthly_static_mae: List[float]
    monthly_adaptive_mae: List[float]
    table_rebuilds: int
    table_bits_shipped: float

    @property
    def months(self) -> int:
        return len(self.monthly_static_mae)

    @property
    def static_mae(self) -> float:
        """Year-average MAE of the static-table encoding."""
        return float(np.mean(self.monthly_static_mae)) if self.monthly_static_mae else 0.0

    @property
    def adaptive_mae(self) -> float:
        """Year-average MAE of the drift-adaptive encoding."""
        return (
            float(np.mean(self.monthly_adaptive_mae))
            if self.monthly_adaptive_mae
            else 0.0
        )

    @property
    def improvement(self) -> float:
        """Relative MAE reduction achieved by adapting the table."""
        if self.static_mae == 0:
            return 0.0
        return 1.0 - self.adaptive_mae / self.static_mae

    def rows(self) -> List[Dict[str, object]]:
        """One row per month for table rendering."""
        return [
            {
                "month": month + 1,
                "static_mae_w": static,
                "adaptive_mae_w": adaptive,
            }
            for month, (static, adaptive) in enumerate(
                zip(self.monthly_static_mae, self.monthly_adaptive_mae)
            )
        ]


def _monthly_mae(
    actual: np.ndarray, decoded: np.ndarray, timestamps: np.ndarray
) -> List[float]:
    month_index = (timestamps // (30 * SECONDS_PER_DAY)).astype(int)
    maes: List[float] = []
    for month in range(int(month_index.max()) + 1):
        mask = month_index == month
        if not np.any(mask):
            continue
        maes.append(float(np.mean(np.abs(actual[mask] - decoded[mask]))))
    return maes


def seasonal_drift_study(
    days: int = 360,
    alphabet_size: int = 8,
    window_seconds: float = 3 * 1800.0,
    drift_threshold: float = 0.2,
    seasonal_amplitude: float = 0.45,
    seed: int = 3,
) -> SeasonalReport:
    """Compare static vs drift-adaptive lookup tables over a seasonal year."""
    if days < 60:
        raise ExperimentError("need at least two months of data for the study")
    dataset = CERGenerator(
        n_houses=1, days=days, seasonal_amplitude=seasonal_amplitude, seed=seed
    ).generate()
    series = dataset.mains(1)

    # Adaptive encoder: bootstrap two days, rebuild on drift.
    adaptive = OnlineEncoder(
        alphabet_size=alphabet_size,
        method="median",
        window_seconds=window_seconds,
        bootstrap_seconds=2 * SECONDS_PER_DAY,
        drift_threshold=drift_threshold,
    )
    adaptive_decoded: List[float] = []
    adaptive_actual: List[float] = []
    adaptive_times: List[float] = []
    for point in series:
        for window in adaptive.push(point.timestamp, point.value):
            table = adaptive.table
            adaptive_decoded.append(table.value_for_symbol(window.symbol))
            adaptive_actual.append(window.aggregated_value)
            adaptive_times.append(window.timestamp)
    for window in adaptive.flush():
        table = adaptive.table
        adaptive_decoded.append(table.value_for_symbol(window.symbol))
        adaptive_actual.append(window.aggregated_value)
        adaptive_times.append(window.timestamp)

    # Static encoder: one table from the first two days, never rebuilt.
    static_encoder = OnlineEncoder(
        alphabet_size=alphabet_size,
        method="median",
        window_seconds=window_seconds,
        bootstrap_seconds=2 * SECONDS_PER_DAY,
        drift_threshold=0.0,
    )
    static_decoded: List[float] = []
    static_actual: List[float] = []
    static_times: List[float] = []
    for point in series:
        for window in static_encoder.push(point.timestamp, point.value):
            table = static_encoder.table
            static_decoded.append(table.value_for_symbol(window.symbol))
            static_actual.append(window.aggregated_value)
            static_times.append(window.timestamp)
    for window in static_encoder.flush():
        table = static_encoder.table
        static_decoded.append(table.value_for_symbol(window.symbol))
        static_actual.append(window.aggregated_value)
        static_times.append(window.timestamp)

    monthly_static = _monthly_mae(
        np.asarray(static_actual), np.asarray(static_decoded), np.asarray(static_times)
    )
    monthly_adaptive = _monthly_mae(
        np.asarray(adaptive_actual),
        np.asarray(adaptive_decoded),
        np.asarray(adaptive_times),
    )
    months = min(len(monthly_static), len(monthly_adaptive))
    table_bits = float(
        sum(update.table.size_in_bits() for update in adaptive.table_updates)
    )
    return SeasonalReport(
        monthly_static_mae=monthly_static[:months],
        monthly_adaptive_mae=monthly_adaptive[:months],
        table_rebuilds=max(len(adaptive.table_updates) - 1, 0),
        table_bits_shipped=table_bits,
    )
