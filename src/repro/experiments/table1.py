"""Table 1 — F-measure of every method × aggregation × alphabet × classifier.

The paper's Table 1 has one row per (method, aggregation window, alphabet
size) plus raw baselines, and one column per classifier: Random Forest, J48,
Naive Bayes, Logistic — each twice, once with per-house lookup tables and
once (marked "+") with a single global lookup table.  This experiment
reproduces the whole matrix and renders it in the same layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analytics.classification import ClassificationResult
from ..datasets.base import MeterDataset
from ..errors import ExperimentError
from .config import PAPER_CLASSIFIERS, ExperimentGrid
from .runner import GridRunner, render_table

__all__ = ["Table1Report", "reproduce_table1"]

_CLASSIFIER_HEADERS = {
    "random_forest": "Random Forest",
    "j48": "J48",
    "naive_bayes": "Naive Bayes",
    "logistic": "Logistic",
}


@dataclass(frozen=True)
class Table1Report:
    """The reproduced Table 1: per-house and global-table result sets."""

    per_house: List[ClassificationResult]
    global_table: List[ClassificationResult]
    classifiers: Tuple[str, ...]

    def _row_key(self, result: ClassificationResult) -> str:
        config = result.config
        if config.encoding == "raw":
            window = "1h" if config.aggregation_seconds == 3600 else "15m"
            return f"raw {window}"
        window = "1h" if config.aggregation_seconds == 3600 else "15m"
        return f"{config.encoding} {window} {config.alphabet_size}s"

    def matrix(self) -> List[Dict[str, object]]:
        """One dict per Table 1 row; columns mirror the paper's header."""
        cells: Dict[str, Dict[str, float]] = {}
        order: List[str] = []

        def insert(results: List[ClassificationResult], suffix: str) -> None:
            for result in results:
                key = self._row_key(result)
                if key not in cells:
                    cells[key] = {}
                    order.append(key)
                column = _CLASSIFIER_HEADERS[result.classifier] + suffix
                cells[key][column] = result.f_measure

        insert(self.per_house, "")
        insert(self.global_table, "+")
        rows: List[Dict[str, object]] = []
        for key in order:
            row: Dict[str, object] = {"configuration": key}
            row.update(cells[key])
            rows.append(row)
        return rows

    def render(self) -> str:
        """Aligned text rendering of the reproduced Table 1."""
        columns = ["configuration"]
        columns += [_CLASSIFIER_HEADERS[c] for c in self.classifiers]
        columns += [_CLASSIFIER_HEADERS[c] + "+" for c in self.classifiers]
        return render_table(self.matrix(), columns=columns)

    def f_measure(self, encoding: str, aggregation: str, alphabet: int,
                  classifier: str, global_table: bool = False) -> float:
        """Look up one cell, e.g. ``("median", "1h", 16, "naive_bayes")``."""
        source = self.global_table if global_table else self.per_house
        for result in source:
            config = result.config
            window = "1h" if config.aggregation_seconds == 3600 else "15m"
            if (
                config.encoding == encoding
                and window == aggregation
                and (encoding == "raw" or config.alphabet_size == alphabet)
                and result.classifier == classifier
            ):
                return result.f_measure
        raise ExperimentError(
            f"no cell for {encoding} {aggregation} {alphabet} {classifier} "
            f"(global={global_table})"
        )

    def average_by_encoding(self, global_table: bool = False) -> Dict[str, float]:
        """Mean F-measure per encoding, used for the paper's ordering claim."""
        source = self.global_table if global_table else self.per_house
        sums: Dict[str, List[float]] = {}
        for result in source:
            sums.setdefault(result.config.encoding, []).append(result.f_measure)
        return {
            encoding: sum(values) / len(values) for encoding, values in sums.items()
        }


def reproduce_table1(
    dataset: MeterDataset,
    grid: Optional[ExperimentGrid] = None,
    classifiers: Sequence[str] = PAPER_CLASSIFIERS,
    n_folds: int = 10,
    seed: int = 0,
    workers: int = 1,
    store_dir=None,
) -> Table1Report:
    """Run the full Table 1 matrix (per-house and global-table scopes).

    ``workers > 1`` shards the 208 cells over a process pool (one pool reused
    for both table scopes); scores are bit-identical to the serial run.
    ``store_dir`` reads/writes each configuration's day vectors as a
    bit-packed :class:`~repro.store.SymbolStore` (workers included — one
    configuration per chunk means one writer per store file), so replaying
    the table from existing stores never re-encodes the fleet.
    """
    per_house_grid = grid or ExperimentGrid.paper(global_table=False)
    global_grid = ExperimentGrid(
        methods=per_house_grid.methods,
        aggregations=per_house_grid.aggregations,
        alphabet_sizes=per_house_grid.alphabet_sizes,
        global_table=True,
        include_raw=per_house_grid.include_raw,
        bootstrap_days=per_house_grid.bootstrap_days,
        min_hours=per_house_grid.min_hours,
    )
    runner = GridRunner(
        dataset, n_folds=n_folds, seed=seed, workers=workers, store_dir=store_dir
    )
    try:
        per_house = runner.run_grid(per_house_grid, list(classifiers))
        global_results = runner.run_grid(global_grid, list(classifiers))
    finally:
        runner.close()
    return Table1Report(
        per_house=per_house,
        global_table=global_results,
        classifiers=tuple(classifiers),
    )
