"""Figure 4 — convergence of the accumulative statistics of house 1.

The paper plots the accumulative mean, median and median-of-distinct-values
over three consecutive days of house 1 and observes they "start to converge
after day one", which justifies the two-day bootstrap window.  This
experiment reproduces the series and reports the convergence time of each
statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.stats import AccumulativeStatistics, accumulative_statistics, convergence_time
from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..datasets.base import MeterDataset
from ..errors import ExperimentError

__all__ = ["ConvergenceReport", "statistics_convergence"]


@dataclass(frozen=True)
class ConvergenceReport:
    """The Figure 4 series plus per-statistic convergence times (seconds)."""

    statistics: AccumulativeStatistics
    convergence_seconds: Dict[str, float]

    @property
    def converges_within_days(self) -> float:
        """Latest convergence time among the three statistics, in days."""
        worst = max(self.convergence_seconds.values())
        return worst / SECONDS_PER_DAY

    def rows(self) -> List[Dict[str, object]]:
        """One row per evaluation step (time, mean, median, distinctmedian)."""
        data = self.statistics.as_dict()
        return [
            {
                "hours": data["time"][i] / 3600.0,
                "mean": data["mean"][i],
                "median": data["median"][i],
                "distinctmedian": data["distinctmedian"][i],
            }
            for i in range(len(self.statistics))
        ]


def statistics_convergence(
    dataset: MeterDataset,
    house_id: int = 1,
    days: int = 3,
    step_seconds: float = 3600.0,
    tolerance: float = 0.05,
) -> ConvergenceReport:
    """Accumulative statistics of one house over its first ``days`` days."""
    if days < 1:
        raise ExperimentError("days must be >= 1")
    series: TimeSeries = dataset.mains(house_id)
    if len(series) == 0:
        raise ExperimentError(f"house {house_id} has no data")
    start = float(series.timestamps[0])
    window = series.between(start, start + days * SECONDS_PER_DAY)
    stats = accumulative_statistics(window, step_seconds=step_seconds)
    convergence = {
        name: convergence_time(stats, name, tolerance=tolerance)
        for name in ("mean", "median", "distinctmedian")
    }
    return ConvergenceReport(statistics=stats, convergence_seconds=convergence)
