"""Reproduction harness: one module per table/figure of the paper.

* :mod:`repro.experiments.fig2` — power-level distribution (Figure 2).
* :mod:`repro.experiments.fig4` — accumulative statistics convergence (Figure 4).
* :mod:`repro.experiments.classification_figures` — Figures 5, 6 and 7.
* :mod:`repro.experiments.table1` — the full Table 1 matrix.
* :mod:`repro.experiments.forecasting_figures` — Figures 8 and 9.
* :mod:`repro.experiments.compression` — the Section 2.3 compression ratios.
* :mod:`repro.experiments.config` / :mod:`repro.experiments.runner` — grids,
  dataset defaults and result rendering.
"""

from .classification_figures import (
    FigureReport,
    figure5_naive_bayes,
    figure6_random_forest,
    figure7_global_table,
)
from .compression import CompressionSweep, compression_sweep, paper_example_report
from .config import (
    PAPER_AGGREGATIONS,
    PAPER_ALPHABET_SIZES,
    PAPER_CLASSIFIERS,
    PAPER_METHODS,
    ExperimentGrid,
    default_dataset,
)
from .fig2 import DistributionReport, power_distribution
from .fig4 import ConvergenceReport, statistics_convergence
from .forecasting_figures import (
    ForecastFigureReport,
    figure8_naive_bayes,
    figure9_random_forest,
)
from .runner import GridRunner, render_table
from .seasonal import SeasonalReport, seasonal_drift_study
from .table1 import Table1Report, reproduce_table1

__all__ = [
    "CompressionSweep",
    "ConvergenceReport",
    "DistributionReport",
    "ExperimentGrid",
    "FigureReport",
    "ForecastFigureReport",
    "GridRunner",
    "PAPER_AGGREGATIONS",
    "PAPER_ALPHABET_SIZES",
    "PAPER_CLASSIFIERS",
    "PAPER_METHODS",
    "SeasonalReport",
    "Table1Report",
    "compression_sweep",
    "default_dataset",
    "figure5_naive_bayes",
    "figure6_random_forest",
    "figure7_global_table",
    "figure8_naive_bayes",
    "figure9_random_forest",
    "paper_example_report",
    "power_distribution",
    "render_table",
    "reproduce_table1",
    "seasonal_drift_study",
    "statistics_convergence",
]
