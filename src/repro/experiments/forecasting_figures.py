"""Figures 8 and 9 — MAE of symbolic forecasting vs raw SVR forecasting.

Figure 8 uses Naive Bayes for the symbolic forecasters, Figure 9 uses Random
Forest; both compare against SVR on raw hourly values, per house, with 16
symbols, 12 lag attributes, one week of training and one day of testing.
House 5 is skipped in the paper because it lacks data; the synthetic house 5
is likewise the gap-heavy one and is skipped automatically when it lacks the
required contiguous hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analytics.forecasting import ForecastResult, forecast_dataset
from ..datasets.base import MeterDataset
from ..errors import ExperimentError

__all__ = ["ForecastFigureReport", "figure8_naive_bayes", "figure9_random_forest"]

_PAPER_FORECAST_METHODS = ("raw", "distinctmedian", "median", "uniform")


@dataclass(frozen=True)
class ForecastFigureReport:
    """Per-house MAE for every forecasting method (one figure)."""

    figure: str
    classifier: str
    results: Dict[int, Dict[str, ForecastResult]]

    def rows(self) -> List[Dict[str, object]]:
        """One row per house with one MAE column per method."""
        rows: List[Dict[str, object]] = []
        for house_id in sorted(self.results):
            row: Dict[str, object] = {"house": f"house {house_id}"}
            for method, result in self.results[house_id].items():
                row[f"mae_{method}"] = result.mae
            rows.append(row)
        return rows

    def mae(self, house_id: int, method: str) -> float:
        """MAE of one (house, method) bar."""
        try:
            return self.results[house_id][method].mae
        except KeyError:
            raise ExperimentError(
                f"no forecast for house {house_id} with method {method!r}"
            ) from None

    def houses(self) -> List[int]:
        """Houses that had enough data to forecast."""
        return sorted(self.results)

    def symbolic_wins(self) -> Dict[int, bool]:
        """Per house: does some symbolic method beat the raw SVR baseline?

        The paper reports symbolic forecasting winning for several houses;
        this is the qualitative check the benchmark asserts on.
        """
        wins: Dict[int, bool] = {}
        for house_id, methods in self.results.items():
            raw_mae = methods["raw"].mae if "raw" in methods else float("inf")
            symbolic = [
                result.mae for method, result in methods.items() if method != "raw"
            ]
            wins[house_id] = bool(symbolic) and min(symbolic) <= raw_mae
        return wins


def _run_forecast_figure(
    figure: str,
    dataset: MeterDataset,
    classifier: str,
    methods: Sequence[str],
    alphabet_size: int,
    train_days: int,
    test_days: int,
    house_ids: Optional[Sequence[int]],
    workers: int = 1,
) -> ForecastFigureReport:
    results = forecast_dataset(
        dataset,
        classifier=classifier,
        methods=methods,
        alphabet_size=alphabet_size,
        train_days=train_days,
        test_days=test_days,
        house_ids=house_ids,
        workers=workers,
    )
    return ForecastFigureReport(figure=figure, classifier=classifier, results=results)


def figure8_naive_bayes(
    dataset: MeterDataset,
    methods: Sequence[str] = _PAPER_FORECAST_METHODS,
    alphabet_size: int = 16,
    train_days: int = 7,
    test_days: int = 1,
    house_ids: Optional[Sequence[int]] = None,
    workers: int = 1,
) -> ForecastFigureReport:
    """Figure 8: symbolic forecasting with Naive Bayes vs raw SVR."""
    return _run_forecast_figure(
        "figure8", dataset, "naive_bayes", methods, alphabet_size,
        train_days, test_days, house_ids, workers,
    )


def figure9_random_forest(
    dataset: MeterDataset,
    methods: Sequence[str] = _PAPER_FORECAST_METHODS,
    alphabet_size: int = 16,
    train_days: int = 7,
    test_days: int = 1,
    house_ids: Optional[Sequence[int]] = None,
    workers: int = 1,
) -> ForecastFigureReport:
    """Figure 9: symbolic forecasting with Random Forest vs raw SVR."""
    return _run_forecast_figure(
        "figure9", dataset, "random_forest", methods, alphabet_size,
        train_days, test_days, house_ids, workers,
    )
