"""Figures 5, 6 and 7 — classification F-measure and processing time.

* Figure 5: Naive Bayes over symbolic (per-house tables) and raw data.
* Figure 6: Random Forest over the same grid.
* Figure 7: Random Forest with a *single global* lookup table.

Each experiment returns one row per configuration with the weighted
F-measure and the processing time, i.e. the two series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analytics.classification import ClassificationResult
from ..datasets.base import MeterDataset
from .config import ExperimentGrid
from .runner import GridRunner

__all__ = [
    "FigureReport",
    "figure5_naive_bayes",
    "figure6_random_forest",
    "figure7_global_table",
]


@dataclass(frozen=True)
class FigureReport:
    """All cells of one classification figure."""

    figure: str
    classifier: str
    results: List[ClassificationResult]

    def rows(self) -> List[Dict[str, object]]:
        """Rows matching the figure's x-axis labels."""
        return [
            {
                "configuration": result.config.label(),
                "f_measure": result.f_measure,
                "processing_seconds": result.processing_seconds,
            }
            for result in self.results
        ]

    def best(self) -> ClassificationResult:
        """Best-performing cell by F-measure."""
        return max(self.results, key=lambda result: result.f_measure)

    def by_encoding(self) -> Dict[str, List[ClassificationResult]]:
        """Group the cells by separator method (plus ``raw``)."""
        grouped: Dict[str, List[ClassificationResult]] = {}
        for result in self.results:
            grouped.setdefault(result.config.encoding, []).append(result)
        return grouped


def _run_figure(
    figure: str,
    dataset: MeterDataset,
    classifier: str,
    grid: Optional[ExperimentGrid],
    global_table: bool,
    n_folds: int,
    seed: int,
    workers: int = 1,
) -> FigureReport:
    grid = grid or ExperimentGrid.paper()
    if grid.global_table != global_table:
        # The figure's table scope (per-house vs global) overrides whatever a
        # caller-supplied grid says, so Figure 7 always uses the global table.
        grid = ExperimentGrid(
            methods=grid.methods,
            aggregations=grid.aggregations,
            alphabet_sizes=grid.alphabet_sizes,
            global_table=global_table,
            include_raw=grid.include_raw,
            bootstrap_days=grid.bootstrap_days,
            min_hours=grid.min_hours,
        )
    runner = GridRunner(dataset, n_folds=n_folds, seed=seed, workers=workers)
    try:
        results = runner.run_grid(grid, [classifier])
    finally:
        runner.close()
    return FigureReport(figure=figure, classifier=classifier, results=results)


def figure5_naive_bayes(
    dataset: MeterDataset,
    grid: Optional[ExperimentGrid] = None,
    n_folds: int = 10,
    seed: int = 0,
    workers: int = 1,
) -> FigureReport:
    """Figure 5: Naive Bayes, per-house lookup tables."""
    return _run_figure(
        "figure5", dataset, "naive_bayes", grid, False, n_folds, seed, workers
    )


def figure6_random_forest(
    dataset: MeterDataset,
    grid: Optional[ExperimentGrid] = None,
    n_folds: int = 10,
    seed: int = 0,
    workers: int = 1,
) -> FigureReport:
    """Figure 6: Random Forest, per-house lookup tables."""
    return _run_figure(
        "figure6", dataset, "random_forest", grid, False, n_folds, seed, workers
    )


def figure7_global_table(
    dataset: MeterDataset,
    grid: Optional[ExperimentGrid] = None,
    n_folds: int = 10,
    seed: int = 0,
    workers: int = 1,
) -> FigureReport:
    """Figure 7: Random Forest, one global lookup table for all houses."""
    return _run_figure(
        "figure7", dataset, "random_forest", grid, True, n_folds, seed, workers
    )
