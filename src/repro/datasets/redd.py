"""Synthetic REDD-like dataset generator.

The REDD dataset (Kolter & Johnson, 2011) that the paper evaluates on is not
redistributable, so this module generates a statistically similar substitute:

* 6 houses, each with its own appliance fleet (fridge, heating, lighting,
  kitchen appliances, electronics, ...) so houses have distinguishable
  consumption signatures — the property the classification experiment needs;
* 1 Hz sampling by default (configurable, because the analytics aggregate to
  15 minutes / 1 hour anyway and coarser sampling keeps benches fast);
* heavy-tailed, approximately log-normal marginal power distribution
  (paper Figure 2);
* day/night and weekday/weekend rhythms;
* data-collection gaps, so the paper's "at least 20 h per day" filter has
  something to do.

The houses are intentionally parameterised differently (consumption level,
appliance mix, schedule regularity); classification should therefore achieve
clearly-better-than-chance F-measures that improve with alphabet size, which
is the qualitative result the reproduction must show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..errors import DatasetError
from .appliances import (
    ActivityAppliance,
    Appliance,
    CyclicAppliance,
    StandbyLoad,
    default_profile,
)
from .base import House, MeterDataset
from .descriptors import DatasetDescriptor
from .gaps import inject_gaps

__all__ = ["HouseConfig", "REDDGenerator", "generate_redd", "default_house_configs"]


@dataclass
class HouseConfig:
    """Generator parameters for one synthetic house."""

    house_id: int
    appliances: List[Appliance]
    measurement_noise: float = 3.0
    gaps_per_day: float = 0.3
    mean_gap_minutes: float = 90.0

    def __post_init__(self) -> None:
        if not self.appliances:
            raise DatasetError("a house needs at least one appliance")


def _hour_profile(peaks: dict, base: float = 0.01) -> List[float]:
    """Build a 24-entry hourly start-probability profile from ``{hour: prob}``."""
    profile = [base] * 24
    for hour, probability in peaks.items():
        profile[hour % 24] = probability
    return profile


def default_house_configs() -> List[HouseConfig]:
    """Six house profiles with distinct consumption signatures.

    Real REDD houses differ not only in how much they consume but in *when*
    and *how* they consume (occupancy schedules, appliance fleets).  The
    classification experiment relies on those per-house signatures, so each
    synthetic house gets its own near-regular daily routine:

    * House 1 — family home: heavy cooking 18–20 h, laundry in the morning.
    * House 2 — night-owl apartment: late-evening/night electronics, tiny base.
    * House 3 — electric heating: long morning and evening heating blocks.
    * House 4 — home office: sustained 9–17 h load, little evening activity.
    * House 5 — irregular occupancy plus many metering outages (the paper's
      house 5 lacks data for forecasting).
    * House 6 — big consumer: morning and evening peaks plus a midday pool pump.
    """
    configs = [
        HouseConfig(
            house_id=1,
            appliances=[
                StandbyLoad(watts=70.0),
                CyclicAppliance("fridge", watts=130.0, period_minutes=45, duty_cycle=0.45),
                ActivityAppliance("oven", 1800.0,
                                  _hour_profile({18: 0.95, 19: 0.8}),
                                  mean_duration_minutes=50, duration_sigma=0.25),
                ActivityAppliance("washer", 650.0,
                                  _hour_profile({8: 0.7, 9: 0.5}),
                                  mean_duration_minutes=55, duration_sigma=0.25),
                ActivityAppliance("dishwasher", 1100.0,
                                  _hour_profile({20: 0.8, 21: 0.5}),
                                  mean_duration_minutes=50, duration_sigma=0.25),
                ActivityAppliance("lighting", 200.0,
                                  _hour_profile({17: 0.9, 18: 0.9, 19: 0.9, 20: 0.9, 21: 0.7}),
                                  mean_duration_minutes=70, duration_sigma=0.2),
            ],
        ),
        HouseConfig(
            house_id=2,
            appliances=[
                StandbyLoad(watts=90.0),
                CyclicAppliance("fridge", watts=95.0, period_minutes=35, duty_cycle=0.35),
                ActivityAppliance("space_heater", 1000.0,
                                  _hour_profile({23: 0.8, 0: 0.6}),
                                  mean_duration_minutes=70, duration_sigma=0.25),
                ActivityAppliance("tv_and_console", 340.0,
                                  _hour_profile({22: 0.9, 23: 0.85, 0: 0.7, 1: 0.5}),
                                  mean_duration_minutes=110, duration_sigma=0.25),
                ActivityAppliance("kettle", 1200.0,
                                  _hour_profile({11: 0.6, 23: 0.6}),
                                  mean_duration_minutes=5, duration_sigma=0.2),
                ActivityAppliance("lighting", 100.0,
                                  _hour_profile({21: 0.8, 22: 0.9, 23: 0.9, 0: 0.7}),
                                  mean_duration_minutes=80, duration_sigma=0.2),
            ],
            gaps_per_day=0.2,
        ),
        HouseConfig(
            house_id=3,
            appliances=[
                StandbyLoad(watts=55.0),
                CyclicAppliance("fridge", watts=110.0, period_minutes=40, duty_cycle=0.4),
                ActivityAppliance("electric_heating", 900.0,
                                  _hour_profile({5: 0.9, 6: 0.9, 7: 0.7,
                                                 17: 0.8, 18: 0.8, 19: 0.7}),
                                  mean_duration_minutes=100, duration_sigma=0.2,
                                  power_jitter=40.0),
                ActivityAppliance("stove", 1000.0,
                                  _hour_profile({12: 0.7}),
                                  mean_duration_minutes=35, duration_sigma=0.25),
                ActivityAppliance("lighting", 140.0,
                                  _hour_profile({6: 0.8, 7: 0.7, 18: 0.8, 19: 0.8, 20: 0.7}),
                                  mean_duration_minutes=70, duration_sigma=0.2),
            ],
        ),
        HouseConfig(
            house_id=4,
            appliances=[
                StandbyLoad(watts=90.0),
                CyclicAppliance("fridge", watts=100.0, period_minutes=50, duty_cycle=0.4),
                ActivityAppliance("office_equipment", 420.0,
                                  _hour_profile({9: 0.95, 10: 0.4, 13: 0.6}),
                                  mean_duration_minutes=220, duration_sigma=0.15,
                                  weekend_factor=0.3),
                ActivityAppliance("air_conditioner", 1100.0,
                                  _hour_profile({11: 0.7, 14: 0.7, 16: 0.5}),
                                  mean_duration_minutes=80, duration_sigma=0.25,
                                  weekend_factor=0.5),
                ActivityAppliance("microwave", 900.0,
                                  _hour_profile({12: 0.8}),
                                  mean_duration_minutes=8, duration_sigma=0.2),
            ],
        ),
        HouseConfig(
            house_id=5,
            appliances=[
                StandbyLoad(watts=70.0),
                CyclicAppliance("fridge", watts=105.0, period_minutes=38, duty_cycle=0.42),
                ActivityAppliance("lighting", 160.0,
                                  _hour_profile({19: 0.5, 20: 0.5, 21: 0.4}, base=0.05),
                                  mean_duration_minutes=90, duration_sigma=0.4),
                ActivityAppliance("dryer", 1500.0,
                                  _hour_profile({}, base=0.08),
                                  mean_duration_minutes=45, duration_sigma=0.4),
            ],
            gaps_per_day=2.0,
            mean_gap_minutes=260.0,
        ),
        HouseConfig(
            house_id=6,
            appliances=[
                StandbyLoad(watts=85.0),
                CyclicAppliance("fridge", watts=140.0, period_minutes=42, duty_cycle=0.5),
                CyclicAppliance("freezer", watts=110.0, period_minutes=55, duty_cycle=0.45),
                ActivityAppliance("breakfast_cooking", 1300.0,
                                  _hour_profile({7: 0.9, 8: 0.5}),
                                  mean_duration_minutes=35, duration_sigma=0.25),
                ActivityAppliance("oven", 1400.0,
                                  _hour_profile({19: 0.9, 20: 0.6}),
                                  mean_duration_minutes=55, duration_sigma=0.25),
                ActivityAppliance("pool_pump", 500.0,
                                  _hour_profile({11: 0.95}),
                                  mean_duration_minutes=170, duration_sigma=0.15),
                ActivityAppliance("washer", 600.0,
                                  _hour_profile({9: 0.6, 16: 0.4}),
                                  mean_duration_minutes=55, duration_sigma=0.3),
                ActivityAppliance("lighting", 230.0,
                                  _hour_profile({18: 0.9, 19: 0.9, 20: 0.9, 21: 0.8, 22: 0.6}),
                                  mean_duration_minutes=80, duration_sigma=0.2),
            ],
        ),
    ]
    return configs


class REDDGenerator:
    """Generate a REDD-like multi-house dataset.

    Parameters
    ----------
    days:
        Number of days of data per house (REDD has 1–2 months; smaller values
        keep tests fast).
    sampling_interval:
        Seconds between raw samples (1.0 reproduces REDD's 1 Hz).
    seed:
        Seed of the pseudo-random generator; the same seed always produces
        the same dataset.
    configs:
        House configurations; defaults to :func:`default_house_configs`.
    with_gaps:
        Whether to inject data-collection outages.
    """

    def __init__(
        self,
        days: int = 14,
        sampling_interval: float = 1.0,
        seed: int = 42,
        configs: Optional[Sequence[HouseConfig]] = None,
        with_gaps: bool = True,
    ) -> None:
        if days < 1:
            raise DatasetError("days must be >= 1")
        if sampling_interval <= 0:
            raise DatasetError("sampling_interval must be positive")
        self.days = int(days)
        self.sampling_interval = float(sampling_interval)
        self.seed = int(seed)
        self.configs = list(configs) if configs is not None else default_house_configs()
        self.with_gaps = bool(with_gaps)

    def generate(self) -> MeterDataset:
        """Generate the full dataset."""
        houses: Dict[int, House] = {}
        for config in self.configs:
            houses[config.house_id] = self._generate_house(config)
        return MeterDataset("synthetic-redd", houses)

    def generate_house(self, house_id: int) -> House:
        """Generate a single house by its identifier."""
        for config in self.configs:
            if config.house_id == house_id:
                return self._generate_house(config)
        raise DatasetError(f"no configuration for house {house_id}")

    # -- internals -----------------------------------------------------------------

    def _generate_house(self, config: HouseConfig) -> House:
        rng = np.random.default_rng(self.seed + 1000 * config.house_id)
        samples_per_day = int(round(SECONDS_PER_DAY / self.sampling_interval))
        n_samples = samples_per_day * self.days

        total = np.zeros(n_samples, dtype=np.float64)
        channels: Dict[str, np.ndarray] = {
            appliance.name: np.zeros(n_samples, dtype=np.float64)
            for appliance in config.appliances
        }
        for day in range(self.days):
            lo = day * samples_per_day
            hi = lo + samples_per_day
            for appliance in config.appliances:
                rendered = appliance.render(
                    day, samples_per_day, self.sampling_interval, rng
                )
                channels[appliance.name][lo:hi] += rendered
                total[lo:hi] += rendered

        noise = rng.normal(0.0, config.measurement_noise, size=n_samples)
        # Real meters report quantised readings (integer watts in REDD), which
        # is what makes the *median of distinct values* method meaningfully
        # different from the plain median.
        total = np.round(np.clip(total + noise, 0.0, None))

        timestamps = self.sampling_interval * np.arange(n_samples, dtype=np.float64)
        mains = TimeSeries(timestamps, total, name=f"house_{config.house_id}")
        if self.with_gaps and config.gaps_per_day > 0:
            mains = inject_gaps(
                mains,
                rng,
                gaps_per_day=config.gaps_per_day,
                mean_gap_minutes=config.mean_gap_minutes,
            )

        channel_series = {
            name: TimeSeries(timestamps, values, name=f"house_{config.house_id}/{name}")
            for name, values in channels.items()
        }
        metadata = {
            "sampling_interval": self.sampling_interval,
            "days": self.days,
            "appliances": sorted(channels),
            "gaps_per_day": config.gaps_per_day,
        }
        return House(
            house_id=config.house_id,
            mains=mains,
            channels=channel_series,
            metadata=metadata,
        )


def generate_redd(
    days: int = 14,
    sampling_interval: float = 1.0,
    seed: int = 42,
    with_gaps: bool = True,
) -> MeterDataset:
    """Convenience wrapper around :class:`REDDGenerator`.

    The returned dataset carries a :class:`DatasetDescriptor` so the parallel
    execution layer can regenerate it bit-identically in worker processes.
    """
    dataset = REDDGenerator(
        days=days,
        sampling_interval=sampling_interval,
        seed=seed,
        with_gaps=with_gaps,
    ).generate()
    dataset.descriptor = DatasetDescriptor.redd(
        days=days, sampling_interval=sampling_interval, seed=seed,
        with_gaps=with_gaps,
    )
    return dataset
