"""CSV persistence for time series and datasets.

Generated datasets can be written to disk once and re-loaded by experiments,
which keeps long benchmark runs reproducible and avoids re-simulating.  The
format is deliberately simple: one CSV per house with ``timestamp,value``
rows, plus a ``manifest.csv`` listing the houses of a dataset.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Union

from ..core.timeseries import TimeSeries
from ..errors import DatasetError
from .base import House, MeterDataset
from .descriptors import DatasetDescriptor

__all__ = [
    "write_series_csv",
    "read_series_csv",
    "write_dataset",
    "read_dataset",
    "dataset_csv_bytes",
]


def write_series_csv(series: TimeSeries, path: Union[str, Path]) -> Path:
    """Write one series as ``timestamp,value`` rows (with a header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for point in series:
            writer.writerow([repr(point.timestamp), repr(point.value)])
    return path


def read_series_csv(path: Union[str, Path], name: str = "") -> TimeSeries:
    """Read a series written by :func:`write_series_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    timestamps = []
    values = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["timestamp", "value"]:
            raise DatasetError(f"{path} does not look like a series CSV")
        for row in reader:
            if len(row) != 2:
                raise DatasetError(f"malformed row in {path}: {row!r}")
            timestamps.append(float(row[0]))
            values.append(float(row[1]))
    return TimeSeries(timestamps, values, name=name or path.stem)


def write_dataset(dataset: MeterDataset, directory: Union[str, Path]) -> Path:
    """Write every house's mains series plus a manifest into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = directory / "manifest.csv"
    with manifest.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["house_id", "filename", "samples"])
        for house in dataset:
            filename = f"house_{house.house_id}.csv"
            write_series_csv(house.mains, directory / filename)
            writer.writerow([house.house_id, filename, len(house.mains)])
    return directory


def dataset_csv_bytes(directory: Union[str, Path]) -> int:
    """Total on-disk size of a dataset directory written by :func:`write_dataset`.

    The denominator of the store-vs-CSV size comparison
    (``benchmarks/test_store_throughput.py`` and ``repro store-info``): the
    manifest plus every house CSV, in bytes.
    """
    directory = Path(directory)
    if not (directory / "manifest.csv").exists():
        raise DatasetError(f"no manifest.csv in {directory}")
    return sum(path.stat().st_size for path in directory.glob("*.csv"))


def read_dataset(directory: Union[str, Path], name: str = "") -> MeterDataset:
    """Read a dataset written by :func:`write_dataset`."""
    directory = Path(directory)
    manifest = directory / "manifest.csv"
    if not manifest.exists():
        raise DatasetError(f"no manifest.csv in {directory}")
    houses: Dict[int, House] = {}
    with manifest.open(newline="") as handle:
        reader = csv.reader(handle)
        next(reader, None)  # header
        for row in reader:
            if len(row) < 2:
                raise DatasetError(f"malformed manifest row: {row!r}")
            house_id = int(row[0])
            series = read_series_csv(directory / row[1], name=f"house_{house_id}")
            houses[house_id] = House(house_id=house_id, mains=series)
    dataset = MeterDataset(name or directory.name, houses)
    dataset.descriptor = DatasetDescriptor.directory(
        str(directory.resolve()), name=name
    )
    return dataset
