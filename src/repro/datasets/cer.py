"""Synthetic Irish-CER-like dataset generator.

The Irish CER smart-metering trial described in the paper covers roughly
5000 houses at a 30-minute resolution for about 1.5 years.  Its distinctive
property for the paper's discussion (Section 4) is *seasonality*: consumption
drifts over the year, which is the motivating case for rebuilding the lookup
table on the fly.  The generator therefore layers:

* a per-house base level (log-normal across the population),
* the shared daily rhythm,
* a weekday/weekend effect,
* an annual seasonal component (winter peak),
* multiplicative log-normal noise.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..errors import DatasetError
from .base import House, MeterDataset

__all__ = ["CERGenerator", "generate_cer"]

_HALF_HOURS_PER_DAY = 48

#: Half-hourly multipliers of the daily rhythm.
_DAILY_SHAPE = np.interp(
    np.arange(_HALF_HOURS_PER_DAY) / 2.0,
    np.arange(24),
    [0.6, 0.55, 0.5, 0.5, 0.55, 0.7, 1.0, 1.3, 1.2, 1.0, 0.95, 1.0,
     1.05, 1.0, 0.95, 1.0, 1.1, 1.4, 1.7, 1.8, 1.6, 1.3, 1.0, 0.75],
)


class CERGenerator:
    """Generate an Irish-CER-like dataset (30-minute readings, seasonality).

    Parameters
    ----------
    n_houses:
        Number of houses (the real trial has ~5000; use fewer for tests).
    days:
        Number of days (the real trial spans about 540).
    seasonal_amplitude:
        Relative strength of the annual cycle (0 disables seasonality).
    """

    def __init__(
        self,
        n_houses: int = 100,
        days: int = 540,
        seasonal_amplitude: float = 0.35,
        weekend_factor: float = 1.15,
        seed: int = 11,
    ) -> None:
        if n_houses < 1:
            raise DatasetError("n_houses must be >= 1")
        if days < 1:
            raise DatasetError("days must be >= 1")
        if seasonal_amplitude < 0:
            raise DatasetError("seasonal_amplitude must be non-negative")
        self.n_houses = int(n_houses)
        self.days = int(days)
        self.seasonal_amplitude = float(seasonal_amplitude)
        self.weekend_factor = float(weekend_factor)
        self.seed = int(seed)

    def generate(self) -> MeterDataset:
        """Generate the dataset; every house has ``48 * days`` readings."""
        rng = np.random.default_rng(self.seed)
        n_slots = _HALF_HOURS_PER_DAY * self.days
        interval = 1800.0
        timestamps = interval * np.arange(n_slots, dtype=np.float64)

        slot_of_day = np.tile(np.arange(_HALF_HOURS_PER_DAY), self.days)
        day_index = np.repeat(np.arange(self.days), _HALF_HOURS_PER_DAY)
        daily = _DAILY_SHAPE[slot_of_day]
        weekend = np.where(day_index % 7 >= 5, self.weekend_factor, 1.0)
        # Winter peak: day 0 is mid-winter for simplicity.
        seasonal = 1.0 + self.seasonal_amplitude * np.cos(
            2.0 * np.pi * day_index / 365.25
        )

        base_levels = rng.lognormal(mean=np.log(450.0), sigma=0.5, size=self.n_houses)
        houses: Dict[int, House] = {}
        for house_id in range(1, self.n_houses + 1):
            base = float(base_levels[house_id - 1])
            noise = rng.lognormal(mean=0.0, sigma=0.3, size=n_slots)
            values = np.clip(base * daily * weekend * seasonal * noise, 0.0, None)
            mains = TimeSeries(timestamps, values, name=f"house_{house_id}")
            houses[house_id] = House(
                house_id=house_id,
                mains=mains,
                metadata={
                    "base_level_w": base,
                    "interval_seconds": interval,
                    "seasonal_amplitude": self.seasonal_amplitude,
                },
            )
        return MeterDataset("synthetic-cer", houses)


def generate_cer(n_houses: int = 100, days: int = 540, seed: int = 11) -> MeterDataset:
    """Convenience wrapper around :class:`CERGenerator`."""
    return CERGenerator(n_houses=n_houses, days=days, seed=seed).generate()
