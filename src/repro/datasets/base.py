"""Dataset abstractions shared by the synthetic generators.

A :class:`MeterDataset` is a collection of households, each contributing one
total-consumption :class:`~repro.core.timeseries.TimeSeries` (the sum of its
mains channels, which is what the paper's experiments consume) plus optional
per-channel series and metadata.  The synthetic REDD/Smart*/CER generators
all return this type so the analytics pipelines are dataset-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.timeseries import TimeSeries
from ..errors import DatasetError

__all__ = ["House", "MeterDataset"]


@dataclass
class House:
    """One household's data.

    ``mains`` is the total consumption (the paper sums a REDD house's two
    mains phases); ``channels`` optionally holds per-circuit or per-appliance
    series; ``metadata`` carries generator parameters (useful for debugging
    and for the appliance-recognition example).
    """

    house_id: int
    mains: TimeSeries
    channels: Dict[str, TimeSeries] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Conventional label, e.g. ``"house_3"``."""
        return f"house_{self.house_id}"

    def __repr__(self) -> str:
        return (
            f"House(id={self.house_id}, samples={len(self.mains)}, "
            f"channels={sorted(self.channels)})"
        )


class MeterDataset:
    """A named collection of :class:`House` objects.

    ``descriptor`` optionally records how the dataset was produced (see
    :mod:`repro.datasets.descriptors`); the deterministic parallel layer uses
    it to rebuild bit-identical copies inside worker processes instead of
    pickling raw arrays.  It is attached by the seeded factories
    (``generate_redd``, ``read_dataset``) and propagates through
    :meth:`subset`.
    """

    def __init__(self, name: str, houses: Mapping[int, House]) -> None:
        if not houses:
            raise DatasetError("a dataset needs at least one house")
        self.name = name
        self._houses: Dict[int, House] = dict(sorted(houses.items()))
        self.descriptor = None  # Optional[DatasetDescriptor]

    # -- protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._houses)

    def __iter__(self) -> Iterator[House]:
        return iter(self._houses.values())

    def __contains__(self, house_id: int) -> bool:
        return house_id in self._houses

    def __getitem__(self, house_id: int) -> House:
        try:
            return self._houses[house_id]
        except KeyError:
            raise DatasetError(
                f"no house {house_id} in dataset {self.name!r}; "
                f"available: {self.house_ids}"
            ) from None

    def __repr__(self) -> str:
        return f"MeterDataset(name={self.name!r}, houses={self.house_ids})"

    # -- accessors ----------------------------------------------------------------

    @property
    def house_ids(self) -> List[int]:
        """Sorted house identifiers."""
        return list(self._houses)

    @property
    def houses(self) -> List[House]:
        """Houses sorted by identifier."""
        return list(self._houses.values())

    def mains(self, house_id: int) -> TimeSeries:
        """Shortcut for ``self[house_id].mains``."""
        return self[house_id].mains

    def total_samples(self) -> int:
        """Sum of mains sample counts over all houses."""
        return sum(len(h.mains) for h in self)

    def subset(self, house_ids) -> "MeterDataset":
        """Dataset restricted to ``house_ids`` (order preserved, must exist)."""
        house_ids = list(house_ids)
        picked = {hid: self[hid] for hid in house_ids}
        child = MeterDataset(self.name, picked)
        if self.descriptor is not None:
            child.descriptor = self.descriptor.restrict(house_ids)
        return child

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-house sample count, duration and mean power (for reports)."""
        return {
            house.house_id: {
                "samples": float(len(house.mains)),
                "duration_days": house.mains.duration / 86400.0,
                "mean_power_w": house.mains.mean(),
            }
            for house in self
        }
