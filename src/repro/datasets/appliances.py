"""Stochastic appliance models for the synthetic REDD-like generator.

A REDD house's mains signal is the superposition of appliance loads.  Three
behavioural families are enough to reproduce the statistical properties the
paper's experiments rely on (heavy-tailed, log-normal-looking power levels;
house-specific signatures; daily rhythm):

* :class:`CyclicAppliance` — thermostat-driven loads (fridge, freezer) that
  cycle on/off with a roughly fixed period and duty cycle all day long.
* :class:`ActivityAppliance` — human-triggered loads (kettle, oven, washing
  machine, TV, lighting) whose start probability depends on the hour of day
  and on whether the day is a weekend.
* :class:`StandbyLoad` — the always-on baseline (network gear, standby
  electronics) with small Gaussian jitter.

Every model exposes ``render(day_index, n_samples, interval, rng)`` returning
the appliance's power draw (watts) for one day as a NumPy array, so a house
is simply the sum of its appliances' renders plus measurement noise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError

__all__ = [
    "Appliance",
    "StandbyLoad",
    "CyclicAppliance",
    "ActivityAppliance",
    "default_profile",
    "EVENING_PROFILE",
    "MORNING_EVENING_PROFILE",
    "DAYTIME_PROFILE",
    "FLAT_PROFILE",
]

SECONDS_PER_DAY = 86400
HOURS_PER_DAY = 24


def _validate_profile(profile: Sequence[float]) -> np.ndarray:
    arr = np.asarray(profile, dtype=np.float64)
    if arr.shape != (HOURS_PER_DAY,):
        raise DatasetError(
            f"an hourly profile needs exactly {HOURS_PER_DAY} entries, got {arr.shape}"
        )
    if np.any(arr < 0):
        raise DatasetError("hourly profile probabilities must be non-negative")
    return arr


#: Start-probability (per hour) profiles for human-triggered appliances.
EVENING_PROFILE: Tuple[float, ...] = (
    0.02, 0.01, 0.01, 0.01, 0.01, 0.02, 0.05, 0.08, 0.06, 0.04, 0.04, 0.05,
    0.06, 0.05, 0.04, 0.05, 0.08, 0.15, 0.25, 0.30, 0.28, 0.20, 0.10, 0.04,
)
MORNING_EVENING_PROFILE: Tuple[float, ...] = (
    0.01, 0.01, 0.01, 0.01, 0.02, 0.08, 0.20, 0.25, 0.15, 0.06, 0.04, 0.06,
    0.10, 0.06, 0.04, 0.05, 0.08, 0.18, 0.24, 0.22, 0.15, 0.08, 0.04, 0.02,
)
DAYTIME_PROFILE: Tuple[float, ...] = (
    0.01, 0.01, 0.01, 0.01, 0.01, 0.02, 0.05, 0.10, 0.15, 0.18, 0.20, 0.20,
    0.18, 0.18, 0.16, 0.14, 0.12, 0.10, 0.08, 0.06, 0.04, 0.03, 0.02, 0.01,
)
FLAT_PROFILE: Tuple[float, ...] = tuple([0.08] * HOURS_PER_DAY)


def default_profile(kind: str) -> Tuple[float, ...]:
    """Named hourly start-probability profile."""
    profiles = {
        "evening": EVENING_PROFILE,
        "morning_evening": MORNING_EVENING_PROFILE,
        "daytime": DAYTIME_PROFILE,
        "flat": FLAT_PROFILE,
    }
    try:
        return profiles[kind]
    except KeyError:
        raise DatasetError(
            f"unknown profile {kind!r}; available: {sorted(profiles)}"
        ) from None


class Appliance(abc.ABC):
    """Base class: anything that can render one day of power draw."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def render(
        self,
        day_index: int,
        n_samples: int,
        interval: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Power draw (watts) for day ``day_index`` as an ``n_samples`` array."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"


class StandbyLoad(Appliance):
    """Always-on baseline load with small Gaussian jitter."""

    def __init__(self, name: str = "standby", watts: float = 60.0, jitter: float = 4.0) -> None:
        super().__init__(name)
        if watts < 0:
            raise DatasetError("standby watts must be non-negative")
        self.watts = float(watts)
        self.jitter = float(jitter)

    def render(
        self, day_index: int, n_samples: int, interval: float, rng: np.random.Generator
    ) -> np.ndarray:
        noise = rng.normal(0.0, self.jitter, size=n_samples)
        return np.clip(self.watts + noise, 0.0, None)


class CyclicAppliance(Appliance):
    """Thermostat-style load cycling on/off with a fixed-ish period.

    Parameters
    ----------
    watts:
        Power draw while the compressor/element is on.
    period_minutes:
        Full on+off cycle length.
    duty_cycle:
        Fraction of the period the appliance is on.
    phase_jitter:
        Random shift (fraction of the period) applied per day so cycles do
        not align across days.
    """

    def __init__(
        self,
        name: str = "fridge",
        watts: float = 120.0,
        period_minutes: float = 40.0,
        duty_cycle: float = 0.4,
        phase_jitter: float = 0.5,
        power_jitter: float = 6.0,
    ) -> None:
        super().__init__(name)
        if not 0 < duty_cycle < 1:
            raise DatasetError("duty_cycle must be in (0, 1)")
        if period_minutes <= 0:
            raise DatasetError("period_minutes must be positive")
        self.watts = float(watts)
        self.period_minutes = float(period_minutes)
        self.duty_cycle = float(duty_cycle)
        self.phase_jitter = float(phase_jitter)
        self.power_jitter = float(power_jitter)

    def render(
        self, day_index: int, n_samples: int, interval: float, rng: np.random.Generator
    ) -> np.ndarray:
        period_s = self.period_minutes * 60.0
        phase = rng.uniform(0.0, self.phase_jitter) * period_s
        t = np.arange(n_samples, dtype=np.float64) * interval + phase
        position = np.mod(t, period_s) / period_s
        on = position < self.duty_cycle
        power = np.zeros(n_samples, dtype=np.float64)
        power[on] = self.watts + rng.normal(0.0, self.power_jitter, size=int(on.sum()))
        return np.clip(power, 0.0, None)


class ActivityAppliance(Appliance):
    """Human-triggered load: stochastic start times, bounded duration.

    Each hour of the day has a probability of *starting* one usage event
    (scaled on weekends by ``weekend_factor``); each event lasts a
    log-normally distributed number of minutes and draws ``watts`` (with
    jitter) while on.  Events may spill into the next hour but are clipped at
    midnight, which is a negligible distortion at the aggregation windows the
    paper uses (15 minutes and 1 hour).
    """

    def __init__(
        self,
        name: str,
        watts: float,
        hourly_profile: Sequence[float],
        mean_duration_minutes: float = 30.0,
        duration_sigma: float = 0.5,
        weekend_factor: float = 1.3,
        power_jitter: float = 10.0,
        power_variability: float = 0.2,
    ) -> None:
        super().__init__(name)
        if watts <= 0:
            raise DatasetError("watts must be positive")
        if mean_duration_minutes <= 0:
            raise DatasetError("mean_duration_minutes must be positive")
        if power_variability < 0:
            raise DatasetError("power_variability must be non-negative")
        self.watts = float(watts)
        self.hourly_profile = _validate_profile(hourly_profile)
        self.mean_duration_minutes = float(mean_duration_minutes)
        self.duration_sigma = float(duration_sigma)
        self.weekend_factor = float(weekend_factor)
        self.power_jitter = float(power_jitter)
        self.power_variability = float(power_variability)

    def render(
        self, day_index: int, n_samples: int, interval: float, rng: np.random.Generator
    ) -> np.ndarray:
        power = np.zeros(n_samples, dtype=np.float64)
        is_weekend = day_index % 7 in (5, 6)
        scale = self.weekend_factor if is_weekend else 1.0
        samples_per_hour = int(round(3600.0 / interval)) or 1
        # mu of the lognormal such that the mean is mean_duration_minutes
        mu = np.log(self.mean_duration_minutes) - self.duration_sigma**2 / 2.0
        for hour in range(HOURS_PER_DAY):
            probability = min(1.0, self.hourly_profile[hour] * scale)
            if rng.random() >= probability:
                continue
            start_offset = rng.uniform(0.0, 3600.0)
            start_sample = int((hour * 3600.0 + start_offset) / interval)
            if start_sample >= n_samples:
                continue
            duration_minutes = float(rng.lognormal(mu, self.duration_sigma))
            duration_samples = max(1, int(duration_minutes * 60.0 / interval))
            end_sample = min(n_samples, start_sample + duration_samples)
            # Event-level magnitude variability: real appliances do not draw
            # exactly the same power every run (settings, load, line voltage),
            # which is what makes max-anchored encodings (uniform) less stable
            # than quantile-anchored ones on real data.
            if self.power_variability > 0:
                event_scale = float(
                    rng.lognormal(
                        -self.power_variability**2 / 2.0, self.power_variability
                    )
                )
            else:
                event_scale = 1.0
            event_power = self.watts * event_scale + rng.normal(
                0.0, self.power_jitter, size=end_sample - start_sample
            )
            power[start_sample:end_sample] += np.clip(event_power, 0.0, None)
        return power
