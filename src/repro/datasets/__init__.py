"""Synthetic substitutes for the smart-meter datasets the paper uses.

* :mod:`repro.datasets.redd` — 6 houses, 1 Hz, appliance-level simulation
  with gaps (the dataset the paper's experiments run on).
* :mod:`repro.datasets.smartstar` — 443-house wide part plus 3-house deep part.
* :mod:`repro.datasets.cer` — 30-minute readings with annual seasonality.
* :mod:`repro.datasets.gaps` — outage injection and the 20-hour day filter.
* :mod:`repro.datasets.io` — CSV persistence.
"""

from .appliances import (
    ActivityAppliance,
    Appliance,
    CyclicAppliance,
    StandbyLoad,
    default_profile,
)
from .base import House, MeterDataset
from .cer import CERGenerator, generate_cer
from .descriptors import DatasetDescriptor
from .gaps import day_coverage_hours, filter_days, inject_gaps
from .io import (
    dataset_csv_bytes,
    read_dataset,
    read_series_csv,
    write_dataset,
    write_series_csv,
)
from .redd import HouseConfig, REDDGenerator, default_house_configs, generate_redd
from .smartstar import SmartStarGenerator, generate_smartstar

__all__ = [
    "ActivityAppliance",
    "Appliance",
    "CERGenerator",
    "CyclicAppliance",
    "DatasetDescriptor",
    "House",
    "HouseConfig",
    "MeterDataset",
    "REDDGenerator",
    "SmartStarGenerator",
    "StandbyLoad",
    "day_coverage_hours",
    "default_house_configs",
    "default_profile",
    "filter_days",
    "generate_cer",
    "generate_redd",
    "generate_smartstar",
    "inject_gaps",
    "dataset_csv_bytes",
    "read_dataset",
    "read_series_csv",
    "write_dataset",
    "write_series_csv",
]
