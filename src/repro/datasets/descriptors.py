"""Reconstructible dataset provenance for multi-process execution.

The deterministic parallel layer (:mod:`repro.parallel`) ships *descriptors*
to worker processes instead of pickling raw sample arrays: a descriptor is a
small frozen value object recording how a dataset was obtained (generator
seed and parameters, or a directory written by ``repro generate``), and
``build()`` reconstructs a bit-identical :class:`~repro.datasets.base.MeterDataset`
inside the worker.  Because every generator in this package is deterministic
in its seed, a rebuilt dataset is sample-for-sample equal to the original —
the property the parallel parity tests assert.

Descriptors are attached to datasets at creation time (``generate_redd``,
``read_dataset``) under the ``descriptor`` attribute and propagate through
:meth:`MeterDataset.subset`.  Datasets constructed by hand simply have no
descriptor; parallel callers then fall back to pickling the dataset itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = ["DatasetDescriptor"]


@dataclass(frozen=True)
class DatasetDescriptor:
    """How to rebuild a :class:`MeterDataset` from scratch in another process.

    ``kind`` selects the reconstruction recipe (``"redd"`` regenerates from
    the synthetic generator, ``"directory"`` re-reads a persisted dataset);
    ``params`` is a sorted tuple of ``(name, value)`` pairs so descriptors
    are hashable and usable as worker-side cache keys; ``house_ids``
    optionally restricts the rebuilt dataset to a subset of houses.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...]
    house_ids: Optional[Tuple[int, ...]] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def redd(
        cls,
        days: int,
        sampling_interval: float,
        seed: int,
        with_gaps: bool,
    ) -> "DatasetDescriptor":
        """Descriptor for :func:`repro.datasets.redd.generate_redd`."""
        return cls(
            kind="redd",
            params=(
                ("days", int(days)),
                ("sampling_interval", float(sampling_interval)),
                ("seed", int(seed)),
                ("with_gaps", bool(with_gaps)),
            ),
        )

    @classmethod
    def directory(cls, path: str, name: str = "") -> "DatasetDescriptor":
        """Descriptor for a dataset persisted with ``write_dataset``."""
        return cls(kind="directory", params=(("name", name), ("path", str(path))))

    # -- reconstruction ---------------------------------------------------------

    def as_dict(self) -> dict:
        """The parameters as a plain dict."""
        return dict(self.params)

    def restrict(self, house_ids) -> "DatasetDescriptor":
        """Descriptor for the same source narrowed to ``house_ids``."""
        return replace(self, house_ids=tuple(int(h) for h in house_ids))

    def build(self):
        """Reconstruct the dataset (bit-identical: all sources are seeded)."""
        from ..errors import DatasetError

        params = self.as_dict()
        if self.kind == "redd":
            from .redd import generate_redd

            dataset = generate_redd(**params)
        elif self.kind == "directory":
            from .io import read_dataset

            dataset = read_dataset(params["path"], name=params["name"])
        else:
            raise DatasetError(f"unknown dataset descriptor kind {self.kind!r}")
        if self.house_ids is not None:
            dataset = dataset.subset(list(self.house_ids))
        return dataset
