"""Synthetic Smart*-like dataset generator.

The Smart* dataset (Barker et al., SustKDD 2012) described in the paper has
two parts: 443 houses with 24 hours of house-level data, and 3 houses with
fine-grained (1 Hz) measurements over about three months.  This generator
produces both parts from a population model: each house draws a base
consumption level from a log-normal distribution and overlays the shared
daily rhythm, so the wide part is realistic for population-scale statistics
(e.g. learning a global lookup table) while the deep part reuses the
appliance-level REDD machinery.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..errors import DatasetError
from .appliances import (
    ActivityAppliance,
    CyclicAppliance,
    StandbyLoad,
    default_profile,
)
from .base import House, MeterDataset
from .redd import HouseConfig, REDDGenerator

__all__ = ["SmartStarGenerator", "generate_smartstar"]

#: Hourly multipliers of the shared residential daily rhythm (unitless).
_DAILY_SHAPE = np.array(
    [0.6, 0.55, 0.5, 0.5, 0.55, 0.7, 1.0, 1.3, 1.2, 1.0, 0.95, 1.0,
     1.05, 1.0, 0.95, 1.0, 1.1, 1.4, 1.7, 1.8, 1.6, 1.3, 1.0, 0.75]
)


class SmartStarGenerator:
    """Generate the wide (443 houses × 24 h) and deep (3 houses × months) parts.

    Parameters
    ----------
    n_houses:
        Number of houses in the wide part (443 in Smart*).
    wide_interval:
        Sampling interval of the wide part in seconds (Smart* publishes
        minute-level averages for that part).
    deep_days / deep_interval:
        Duration and sampling of the three fine-grained houses.
    """

    def __init__(
        self,
        n_houses: int = 443,
        wide_interval: float = 60.0,
        deep_days: int = 90,
        deep_interval: float = 1.0,
        seed: int = 7,
    ) -> None:
        if n_houses < 1:
            raise DatasetError("n_houses must be >= 1")
        if wide_interval <= 0 or deep_interval <= 0:
            raise DatasetError("sampling intervals must be positive")
        if deep_days < 1:
            raise DatasetError("deep_days must be >= 1")
        self.n_houses = int(n_houses)
        self.wide_interval = float(wide_interval)
        self.deep_days = int(deep_days)
        self.deep_interval = float(deep_interval)
        self.seed = int(seed)

    def generate_wide(self) -> MeterDataset:
        """443 houses (by default), 24 hours each, house-level consumption."""
        rng = np.random.default_rng(self.seed)
        samples = int(round(SECONDS_PER_DAY / self.wide_interval))
        timestamps = self.wide_interval * np.arange(samples, dtype=np.float64)
        hour_of_day = (timestamps // 3600).astype(int) % 24
        shape = _DAILY_SHAPE[hour_of_day]

        houses: Dict[int, House] = {}
        # Base levels follow a log-normal population distribution (median
        # around 300 W), which is what makes a *global* lookup table learned
        # on this population meaningfully different from per-house tables.
        base_levels = rng.lognormal(mean=np.log(300.0), sigma=0.6, size=self.n_houses)
        for house_id in range(1, self.n_houses + 1):
            base = float(base_levels[house_id - 1])
            noise = rng.lognormal(mean=0.0, sigma=0.35, size=samples)
            spikes = (rng.random(samples) < 0.01) * rng.uniform(500, 2500, size=samples)
            values = np.clip(base * shape * noise + spikes, 0.0, None)
            mains = TimeSeries(timestamps, values, name=f"house_{house_id}")
            houses[house_id] = House(
                house_id=house_id,
                mains=mains,
                metadata={"base_level_w": base, "part": "wide"},
            )
        return MeterDataset("synthetic-smartstar-wide", houses)

    def generate_deep(self) -> MeterDataset:
        """Three houses with months of fine-grained data (reuses REDD machinery)."""
        configs = [
            HouseConfig(
                house_id=1,
                appliances=[
                    StandbyLoad(watts=65.0),
                    CyclicAppliance("fridge", watts=120.0, period_minutes=40, duty_cycle=0.4),
                    ActivityAppliance("hvac", 1400.0, default_profile("daytime"),
                                      mean_duration_minutes=120),
                    ActivityAppliance("lighting", 150.0, default_profile("evening"),
                                      mean_duration_minutes=150),
                ],
            ),
            HouseConfig(
                house_id=2,
                appliances=[
                    StandbyLoad(watts=50.0),
                    CyclicAppliance("fridge", watts=100.0, period_minutes=36, duty_cycle=0.38),
                    ActivityAppliance("cooking", 1800.0, default_profile("evening"),
                                      mean_duration_minutes=35),
                    ActivityAppliance("tv", 130.0, default_profile("evening"),
                                      mean_duration_minutes=140),
                ],
            ),
            HouseConfig(
                house_id=3,
                appliances=[
                    StandbyLoad(watts=80.0),
                    CyclicAppliance("fridge", watts=115.0, period_minutes=44, duty_cycle=0.42),
                    CyclicAppliance("water_heater", watts=1000.0, period_minutes=120,
                                    duty_cycle=0.3),
                    ActivityAppliance("laundry", 600.0, default_profile("morning_evening"),
                                      mean_duration_minutes=60),
                ],
            ),
        ]
        generator = REDDGenerator(
            days=self.deep_days,
            sampling_interval=self.deep_interval,
            seed=self.seed + 99,
            configs=configs,
            with_gaps=False,
        )
        dataset = generator.generate()
        return MeterDataset("synthetic-smartstar-deep", {h.house_id: h for h in dataset})


def generate_smartstar(
    n_houses: int = 443, wide_interval: float = 60.0, seed: int = 7
) -> MeterDataset:
    """Convenience wrapper: the wide, 24-hour part of the Smart*-like data."""
    return SmartStarGenerator(
        n_houses=n_houses, wide_interval=wide_interval, seed=seed
    ).generate_wide()
