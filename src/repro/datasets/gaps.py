"""Missing-data injection and "enough data" day filtering.

The REDD dataset contains gaps (data-collection outages); the paper copes by
keeping only days with at least 20 hours of data.  :func:`inject_gaps`
reproduces the outages on synthetic data and :func:`filter_days` reproduces
the paper's day-selection rule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.timeseries import SECONDS_PER_DAY, TimeSeries
from ..errors import DatasetError

__all__ = ["inject_gaps", "filter_days", "day_coverage_hours"]


def inject_gaps(
    series: TimeSeries,
    rng: np.random.Generator,
    gaps_per_day: float = 0.3,
    mean_gap_minutes: float = 90.0,
    max_gap_minutes: float = 600.0,
) -> TimeSeries:
    """Remove random stretches of samples to emulate collection outages.

    ``gaps_per_day`` is the expected number of outages per day (Poisson);
    each outage's length is exponentially distributed with mean
    ``mean_gap_minutes`` and capped at ``max_gap_minutes``.
    """
    if gaps_per_day < 0:
        raise DatasetError("gaps_per_day must be non-negative")
    if len(series) == 0 or gaps_per_day == 0:
        return series

    timestamps = series.timestamps
    duration_days = max(series.duration / SECONDS_PER_DAY, 1e-9)
    n_gaps = int(rng.poisson(gaps_per_day * duration_days))
    if n_gaps == 0:
        return series

    keep = np.ones(len(series), dtype=bool)
    start_time = float(timestamps[0])
    end_time = float(timestamps[-1])
    for _ in range(n_gaps):
        gap_start = rng.uniform(start_time, end_time)
        gap_minutes = min(rng.exponential(mean_gap_minutes), max_gap_minutes)
        gap_end = gap_start + gap_minutes * 60.0
        keep &= ~((timestamps >= gap_start) & (timestamps < gap_end))
    return TimeSeries(timestamps[keep], series.values[keep], name=series.name)


def day_coverage_hours(day: TimeSeries, sampling_interval: Optional[float] = None) -> float:
    """Hours of data present in a one-day chunk."""
    interval = sampling_interval or day.sampling_interval
    if interval <= 0:
        return 0.0
    return len(day) * interval / 3600.0


def filter_days(
    series: TimeSeries,
    min_hours: float = 20.0,
    sampling_interval: Optional[float] = None,
    day_length: float = SECONDS_PER_DAY,
) -> List[TimeSeries]:
    """Split into days and keep only those with at least ``min_hours`` of data.

    This is the paper's day-selection rule ("putting the threshold at 20h per
    day of data").
    """
    if min_hours < 0:
        raise DatasetError("min_hours must be non-negative")
    days = series.split_days(day_length)
    interval = sampling_interval or series.sampling_interval
    return [
        day for day in days if day_coverage_hours(day, interval) >= min_hours
    ]
