"""Symbolic pattern matching pushed down to RLE runs (no expansion).

The paper's Section 4 argues symbol sequences stay queryable after
compression; this module makes that concrete: patterns over symbols are
matched against the *run-length* representation of a column — the exact
arrays an RLE store keeps on disk — so a day that compresses to 9 runs is
scanned in 9 steps, not 96.  Dense columns are run-length encoded on the
fly through :meth:`SymbolStore.runs`, so both layouts serve one interface.

Pattern syntax (whitespace-separated tokens)::

    a           one maximal run of symbol 0 (letters a..z = indices 0..25)
    7           one maximal run of symbol 7 (explicit index)
    c{4,}       a run of symbol 2 lasting >= 4 windows ("at least 4 hours
                at level c" when windows are hours)
    c{2,6}      a run lasting between 2 and 6 windows
    c{3}        a run lasting exactly 3 windows
    *           any gap (zero or more windows of anything)

A symbol token matches a whole *maximal* run — ``c{3}`` means "exactly three
consecutive windows at level c, bounded by other levels on both sides",
which is the natural reading for duty-cycle questions.  Patterns float:
matches may start and end anywhere (implicit ``*`` at both ends).  Matches
are found leftmost-first and non-overlapping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError

__all__ = ["PatternToken", "SymbolPattern", "PatternMatches", "match_runs"]

_TOKEN_RE = re.compile(
    r"^(?P<sym>[a-z]|\d+)(?:\{(?P<lo>\d+)(?P<comma>,)?(?P<hi>\d+)?\})?$"
)


@dataclass(frozen=True)
class PatternToken:
    """One pattern element: a run of ``symbol`` or a gap (``symbol is None``)."""

    symbol: Optional[int]
    min_len: int = 1
    max_len: Optional[int] = None


@dataclass(frozen=True)
class _Group:
    """A maximal stretch of consecutive symbol tokens (between gaps)."""

    symbols: np.ndarray
    min_lens: np.ndarray
    max_lens: np.ndarray  # np.iinfo(int64).max encodes "unbounded"


_UNBOUNDED = np.iinfo(np.int64).max


class SymbolPattern:
    """A parsed pattern: symbol-run tokens separated by gaps."""

    def __init__(self, tokens: Sequence[PatternToken], text: str = "") -> None:
        runs = [t for t in tokens if t.symbol is not None]
        if not runs:
            raise QueryError("a pattern needs at least one symbol token")
        self.tokens = tuple(tokens)
        self.text = text
        self._groups = self._build_groups(tokens)

    @staticmethod
    def _build_groups(tokens: Sequence[PatternToken]) -> List[_Group]:
        groups: List[_Group] = []
        current: List[PatternToken] = []
        for token in tokens:
            if token.symbol is None:
                if current:
                    groups.append(SymbolPattern._pack_group(current))
                    current = []
                continue
            if current and current[-1].symbol == token.symbol:
                raise QueryError(
                    "adjacent tokens with the same symbol can never match: "
                    "runs are maximal (merge them into one token)"
                )
            current.append(token)
        if current:
            groups.append(SymbolPattern._pack_group(current))
        return groups

    @staticmethod
    def _pack_group(tokens: List[PatternToken]) -> _Group:
        return _Group(
            symbols=np.asarray([t.symbol for t in tokens], dtype=np.int64),
            min_lens=np.asarray([t.min_len for t in tokens], dtype=np.int64),
            max_lens=np.asarray(
                [_UNBOUNDED if t.max_len is None else t.max_len for t in tokens],
                dtype=np.int64,
            ),
        )

    @classmethod
    def parse(cls, text: str, alphabet_size: Optional[int] = None) -> "SymbolPattern":
        """Parse the textual syntax (see the module docstring)."""
        tokens: List[PatternToken] = []
        for raw in text.split():
            if raw == "*":
                if tokens and tokens[-1].symbol is None:
                    continue  # collapse consecutive gaps
                tokens.append(PatternToken(symbol=None, min_len=0, max_len=None))
                continue
            found = _TOKEN_RE.match(raw)
            if not found:
                raise QueryError(
                    f"bad pattern token {raw!r}; expected a symbol letter/index "
                    "with optional {min}, {min,} or {min,max} run bounds, or '*'"
                )
            spec = found.group("sym")
            symbol = ord(spec) - ord("a") if spec.isalpha() else int(spec)
            lo = int(found.group("lo")) if found.group("lo") else 1
            if found.group("hi"):
                hi: Optional[int] = int(found.group("hi"))
            else:
                hi = None if found.group("comma") else (lo if found.group("lo") else None)
            if lo < 1:
                raise QueryError(f"run bounds must be >= 1 in {raw!r}")
            if hi is not None and hi < lo:
                raise QueryError(f"empty run bound range in {raw!r}")
            if alphabet_size is not None and symbol >= alphabet_size:
                raise QueryError(
                    f"symbol {symbol} in token {raw!r} is out of range for "
                    f"alphabet of size {alphabet_size}"
                )
            tokens.append(PatternToken(symbol=symbol, min_len=lo, max_len=hi))
        return cls(tokens, text=text)

    # -- histogram prefilter -----------------------------------------------------

    def min_symbol_counts(self, alphabet_size: int) -> np.ndarray:
        """Minimum total windows per symbol any match needs (length ``k``).

        A column whose histogram falls below this anywhere cannot match —
        the index prefilter that skips columns without touching payload.
        """
        needed = np.zeros(alphabet_size, dtype=np.int64)
        for token in self.tokens:
            if token.symbol is not None:
                if token.symbol >= alphabet_size:
                    raise QueryError(
                        f"pattern symbol {token.symbol} out of range for "
                        f"alphabet of size {alphabet_size}"
                    )
                needed[token.symbol] += token.min_len
        return needed

    def __repr__(self) -> str:
        return f"SymbolPattern({self.text or self.tokens!r})"


def _group_positions(
    values: np.ndarray, lengths: np.ndarray, group: _Group
) -> np.ndarray:
    """Run indices where ``group`` matches consecutive maximal runs."""
    m = group.symbols.size
    n = values.size - m + 1
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    ok = np.ones(n, dtype=bool)
    for j in range(m):
        window_v = values[j: j + n]
        window_l = lengths[j: j + n]
        ok &= (window_v == group.symbols[j])
        ok &= (window_l >= group.min_lens[j]) & (window_l <= group.max_lens[j])
    return np.flatnonzero(ok)


def match_runs(
    values: np.ndarray, lengths: np.ndarray, pattern: SymbolPattern
) -> List[Tuple[int, int]]:
    """All leftmost non-overlapping matches in one run-encoded column.

    Returns ``(start_window, stop_window)`` half-open spans in expanded
    window coordinates, computed from run boundaries alone.
    """
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.size == 0:
        return []
    starts = np.concatenate([[0], np.cumsum(lengths)])
    positions = [_group_positions(values, lengths, g) for g in pattern._groups]
    if any(p.size == 0 for p in positions):
        return []
    matches: List[Tuple[int, int]] = []
    run_cursor = 0
    while True:
        cursor = run_cursor
        chain_end = -1
        failed = False
        first_run = -1
        for group, group_positions_ in zip(pattern._groups, positions):
            at = np.searchsorted(group_positions_, cursor)
            if at == group_positions_.size:
                failed = True
                break
            run = int(group_positions_[at])
            if first_run < 0:
                first_run = run
            cursor = run + group.symbols.size
            chain_end = cursor
        if failed:
            break
        matches.append((int(starts[first_run]), int(starts[chain_end])))
        run_cursor = chain_end
    return matches


@dataclass
class PatternMatches:
    """Result of matching one pattern over a store's columns.

    ``spans`` maps each matching column id to its window spans;
    ``runs_scanned`` vs ``windows_total`` quantifies the pushdown: the
    matcher looked at run boundaries only, never the expanded windows.
    """

    pattern: str
    spans: Dict = field(default_factory=dict)
    columns_scanned: int = 0
    columns_skipped: int = 0
    runs_scanned: int = 0
    windows_total: int = 0

    @property
    def total_matches(self) -> int:
        return sum(len(s) for s in self.spans.values())

    @property
    def scan_fraction(self) -> float:
        """Elements touched as a fraction of the expanded window count."""
        if self.windows_total == 0:
            return 0.0
        return self.runs_scanned / self.windows_total
