"""Store-native scan operators: the units a :class:`~repro.query.plan.ScanPlan` composes.

Every query kind in ``repro.query`` — kNN, pattern match, aggregation, index
build, and the fleet-monitoring workloads (anomaly, drift, private
aggregates) — is expressed as one *operator* over one *source*:

:class:`ColumnSource`
    One read abstraction over ``.rsym`` files and ``.rsyms`` segment
    directories (dense and RLE, per-segment table epochs): block-granular
    ``matrix``/``runs`` reads, index-backed column statistics with a
    fleet-level cache, and a :class:`SourceStats` decode counter that makes
    "this operator never touched payload bytes" a testable claim.

:class:`Operator` subclasses
    Declare the axis they shard over (``items``), do their work on one shard
    (``run_shard`` — also the unit worker processes execute), and fold shard
    results back together (``merge``, task-ordered).  Operators are plain
    picklable dataclasses; anything a worker needs (a pruning
    :class:`~repro.query.index.QueryIndex`, query vectors, pattern tokens)
    rides on the operator itself, never on ambient state.

:class:`SymbolCountPrune`
    The ``.rsymx`` histogram pruning stage: drops columns whose symbol
    counts cannot satisfy a pattern before any payload bytes are read.
    (kNN's per-query histogram *bound* lives inside its refine kernel — it
    prunes per query, not per column, so it is not a plan stage.)

The sharding/merge loop itself lives in :mod:`repro.query.plan`; it is the
only one in ``repro.query``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.lookup import LookupTable
from ..errors import QueryError
from ..obs import registry as _obs_registry, tracer as _obs_tracer
from .distance import banded_min_cells, histogram_bound
from .index import DEFAULT_BANDS, QueryIndex, _shard_stats
from .patterns import PatternMatches, SymbolPattern, match_runs

__all__ = [
    "ColumnSource",
    "SourceStats",
    "Operator",
    "SymbolCountPrune",
    "KNNOperator",
    "MatchOperator",
    "AggregateOperator",
    "IndexBuildOperator",
    "AnomalyOperator",
    "AnomalyReport",
    "DriftOperator",
    "DriftReport",
    "GroupAggregateOperator",
    "PrivateAggregateReport",
    "resolve_shared_table",
]

#: One-sided slack on the kNN pruning bound: float rounding in the histogram
#: matrix product may lift a lower bound a few ulps above the true distance
#: on exact ties; the margin turns that into (at most) extra refinement.
_PRUNE_SLACK = 1e-9

#: Queries bounded per matmul: cells are ``(block, T, k)`` float64, so 64
#: queries of a week-long 16-symbol column stay ~5 MB while one
#: :func:`histogram_bound` product covers the whole block.
_QUERY_BLOCK = 64

#: Cap on elements per refinement gather (~8 MB of intp indices): one
#: refine round scores ``active * chunk * T`` cells, which brute force
#: (chunk = all candidates) would otherwise let grow with the fleet.
_GATHER_ELEMENTS = 1 << 20


def resolve_shared_table(store) -> LookupTable:
    """The one table all of ``store``'s columns share, or a loud refusal.

    Per-column and by-label table sets collapse to a single table when all
    entries are equal (the re-normalisation path); genuinely distinct tables
    raise :class:`QueryError` because cross-column symbol distances would be
    meaningless.
    """
    tables = store.tables
    if tables is None:
        raise QueryError(
            f"{store.path.name} carries no lookup tables; distance queries "
            "need the serialized table to derive breakpoints"
        )
    if isinstance(tables, LookupTable):
        return tables
    pool = list(tables.values()) if isinstance(tables, dict) else list(tables)
    if not pool:
        raise QueryError(f"{store.path.name} has an empty table payload")
    head = pool[0]
    if all(table == head for table in pool[1:]):
        return head
    raise QueryError(
        f"{store.path.name} carries {len(pool)} distinct per-meter lookup "
        "tables: the same symbol index maps to different watt ranges on "
        "different columns, so cross-column distances would be nonsense. "
        "Re-encode the fleet with a shared table "
        "(write_fleet_store(..., shared_table=True) or encode --all "
        "--global-table) to make it searchable."
    )


@dataclass
class SourceStats:
    """Read accounting for one :class:`ColumnSource`.

    ``columns_decoded`` counts column payload reads (matrix decodes and
    histogram scans); ``runs_read`` counts run-array reads.  The drift
    operator's "no column decode" guarantee is asserted against these.
    """

    columns_decoded: int = 0
    runs_read: int = 0


class ColumnSource:
    """One store (file or segment directory) as a readable column set.

    All operator reads go through here so they are *counted* (``stats``) and
    so fleet-level statistics — per-column histograms, peaks, run counts —
    are computed at most once per source (the :class:`QueryEngine` keeps one
    source per open store, which is what makes repeated aggregates skip
    re-decoding).  When a matching :class:`QueryIndex` is attached, those
    statistics come off the index without touching payload bytes at all.
    """

    def __init__(self, store, index: Optional[QueryIndex] = None) -> None:
        self.store = store
        self.index = index
        self.stats = SourceStats()
        #: One reentrant lock guards every lazy cache and stats counter:
        #: a threaded server shares one source across handler threads, and
        #: unsynchronized "check-then-fill" caching would double-decode (or
        #: tear the counters).  Reentrant because cached getters call the
        #: counted readers, which take the same lock.
        self._lock = threading.RLock()
        self._table: Optional[LookupTable] = None
        self._column_stats: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._run_counts: Optional[np.ndarray] = None
        # Registry instruments, resolved once per source so counted reads
        # pay one cached-attribute increment (no-op when metrics are off).
        metrics = _obs_registry()
        self._m_columns = metrics.counter(
            "store.columns_decoded_total",
            "Column payload reads through ColumnSource")
        self._m_runs = metrics.counter(
            "store.runs_read_total", "Run-array reads through ColumnSource")
        self._m_blocks = metrics.counter(
            "store.blocks_read_total", "Block-granular read calls")
        self._m_bytes = metrics.counter(
            "store.bytes_decoded_total", "Decoded bytes returned to readers")
        self._m_cache_hits = metrics.counter(
            "store.cache_hits_total",
            "Reads served from the source's caches or the .rsymx index")

    # -- delegated shape ---------------------------------------------------------

    @property
    def n_columns(self) -> int:
        return self.store.n_meters

    @property
    def ids(self) -> List:
        return self.store.ids

    @property
    def counts(self) -> np.ndarray:
        return self.store.counts

    @property
    def alphabet_size(self) -> int:
        return self.store.alphabet_size

    @property
    def table(self) -> LookupTable:
        """The shared lookup table (resolved once, refusal cached)."""
        with self._lock:
            if self._table is None:
                self._table = resolve_shared_table(self.store)
            return self._table

    def resolve(self, meters) -> List[int]:
        return self.store._resolve_meters(meters)

    # -- counted reads -----------------------------------------------------------

    def matrix(self, meters=None, window_range=None) -> np.ndarray:
        """Block-granular index matrix read (counted)."""
        n = self.store.n_meters if meters is None else len(meters)
        with self._lock:
            self.stats.columns_decoded += n
        self._m_columns.inc(n)
        self._m_blocks.inc()
        result = self.store.matrix(meters=meters, window_range=window_range)
        self._m_bytes.inc(int(result.nbytes))
        return result

    def matrix_block(self, start: int, stop: int, window_range=None) -> np.ndarray:
        """Decode the contiguous column block ``[start, stop)`` (counted)."""
        n = max(0, int(stop) - int(start))
        with self._lock:
            self.stats.columns_decoded += n
        self._m_columns.inc(n)
        self._m_blocks.inc()
        result = self.store.matrix_block(start, stop, window_range=window_range)
        self._m_bytes.inc(int(result.nbytes))
        return result

    def runs(self, meter) -> tuple:
        """``(run_values, run_lengths)`` of one column (counted)."""
        with self._lock:
            self.stats.runs_read += 1
        self._m_runs.inc()
        return self.store.runs(meter)

    def _scan_stats(self, start: int, stop: int, n_bands: int) -> tuple:
        """Banded histogram scan of ``[start, stop)`` — a payload read."""
        n = max(0, int(stop) - int(start))
        with self._lock:
            self.stats.columns_decoded += n
        self._m_columns.inc(n)
        self._m_blocks.inc()
        return _shard_stats(self.store, int(start), int(stop), n_bands)

    # -- cached column statistics ------------------------------------------------

    def column_stats(
        self,
        columns: Optional[Sequence[int]] = None,
        index: Optional[QueryIndex] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(histograms, peaks)`` for ``columns`` (default: whole fleet).

        Served from the attached (or passed) index when one matches —
        zero payload reads — otherwise from one scan.  The whole-fleet scan
        is cached on the source; column subsets scan only the subset (one
        block read when contiguous), matching what a worker shard needs.
        """
        index = self.index if index is None else index
        if index is not None:
            self._m_cache_hits.inc()
            if columns is None:
                return index.histograms, index.max_symbols
            cols = np.asarray(list(columns), dtype=np.int64)
            return index.histograms[cols], index.max_symbols[cols]
        with self._lock:
            if columns is None:
                if self._column_stats is None:
                    banded, _, _, peaks = self._scan_stats(0, self.n_columns, 1)
                    self._column_stats = (banded[:, 0, :], peaks)
                else:
                    self._m_cache_hits.inc()
                return self._column_stats
            cols = [int(c) for c in columns]
            if self._column_stats is not None:
                self._m_cache_hits.inc()
                idx = np.asarray(cols, dtype=np.int64)
                return self._column_stats[0][idx], self._column_stats[1][idx]
            if cols and cols == list(range(cols[0], cols[-1] + 1)):
                banded, _, _, peaks = self._scan_stats(cols[0], cols[-1] + 1, 1)
                return banded[:, 0, :], peaks
            parts = [self._scan_stats(c, c + 1, 1) for c in cols]
        k = self.alphabet_size
        if not parts:
            return (np.zeros((0, k), dtype=np.int64), np.zeros(0, dtype=np.int64))
        hist = np.vstack([p[0][:, 0, :] for p in parts])
        peaks = np.concatenate([p[3] for p in parts])
        return hist, peaks

    def run_counts(self, columns: Optional[Sequence[int]] = None) -> np.ndarray:
        """Run counts for ``columns`` (default: whole fleet, cached).

        RLE columns read counts off the header; dense columns pay one
        run-length scan (block-decoded for the whole fleet, per column for
        subsets) — the same work the pre-plan aggregate paths did.
        """
        store = self.store
        if columns is None:
            with self._lock:
                if self._run_counts is None:
                    if store.layout != "rle":
                        self.stats.columns_decoded += store.n_meters
                    self._run_counts = np.asarray(
                        store.run_count_per_column(), dtype=np.int64
                    )
                return self._run_counts
        cols = [int(c) for c in columns]
        if self._run_counts is not None:
            return self._run_counts[np.asarray(cols, dtype=np.int64)]
        if store.layout == "rle":
            return np.asarray(store.run_counts, dtype=np.int64)[
                np.asarray(cols, dtype=np.int64)
            ]
        return np.asarray(
            [self.runs(store.ids[c])[0].size for c in cols], dtype=np.int64
        )

    def __repr__(self) -> str:
        indexed = "indexed" if self.index is not None else "no index"
        return (
            f"ColumnSource({self.store.path.name!r}, "
            f"columns={self.n_columns}, {indexed})"
        )


# -- operator protocol ---------------------------------------------------------


class Operator:
    """Base scan operator: shard axis, per-shard work, task-ordered merge.

    Subclasses are picklable dataclasses.  ``run_shard`` must be a pure
    function of ``(source, items)`` — it runs either in-process (serial
    path) or in a worker that reopened the store by path — and ``merge``
    must fold shard results in task order, so plan results are bit-identical
    for every worker count.
    """

    def items(self, source: ColumnSource) -> Sequence:
        """The full work list this operator shards over (default: columns)."""
        return list(range(source.n_columns))

    def shard(self, items: Sequence) -> Tuple["Operator", Sequence]:
        """The ``(operator, items)`` actually shipped to one worker.

        Overridden when the operator can slim its payload per shard (kNN
        ships only the shard's query rows instead of the whole batch).
        """
        return self, items

    def run_shard(self, source: ColumnSource, items: Sequence):
        raise NotImplementedError

    def merge(self, parts: List, source: ColumnSource, items: Sequence,
              kept: Sequence):
        raise NotImplementedError


@dataclass(frozen=True)
class SymbolCountPrune:
    """Pruning stage: drop columns whose histograms cannot satisfy ``needed``.

    ``needed[s]`` is the minimum number of windows at symbol ``s`` any match
    requires (:meth:`SymbolPattern.min_symbol_counts`); the ``.rsymx``
    histograms reject columns below it without reading payload bytes.
    """

    needed: np.ndarray
    index: QueryIndex

    def apply(self, source: ColumnSource, items: Sequence[int]) -> List[int]:
        cols = list(items)
        if not cols:
            return cols
        hist = self.index.histograms[np.asarray(cols, dtype=np.int64)]
        skip = np.any(hist < self.needed[None, :], axis=1)
        return [c for c, skipped in zip(cols, skip) if not skipped]


# -- kNN -----------------------------------------------------------------------


def _knn_block(
    source: ColumnSource,
    index: Optional[QueryIndex],
    queries: np.ndarray,
    k: int,
    refine_chunk: int,
    exclude: np.ndarray,
) -> tuple:
    """Serial kNN for one block of queries; the unit workers execute.

    Returns ``(positions, distances, refined)`` with ``positions`` of shape
    ``(len(queries), kk)`` where ``kk = min(k, candidates)``.

    Queries are processed ``_QUERY_BLOCK`` at a time: the squared cells of
    the whole sub-block are built with one broadcast, their lower bounds
    with one :func:`banded_min_cells` + :func:`histogram_bound` matmul, and
    each refine round decodes its chunk's missing columns with a single
    ``source.matrix`` call.  Neighbours and distances are bit-identical for
    every block split — the bound's last-ulp rounding can only move work
    between the pruned and refined sets, never change an exact distance.
    """
    # Local import: plan.py imports operators from this module, so the
    # deadline hook cannot live at module scope without a cycle.
    from .plan import check_deadline

    store = source.store
    table = source.table
    counts = store.counts
    if counts.size == 0:
        raise QueryError(f"{store.path.name} is empty")
    if np.any(counts != counts[0]):
        raise QueryError(
            "kNN needs equal-length columns; this store's columns hold "
            "different symbol counts"
        )
    T = int(counts[0])
    if T == 0:
        raise QueryError("cannot search zero-length columns")
    recon = table.reconstruction_array
    candidates = np.setdiff1d(
        np.arange(store.n_meters, dtype=np.int64), exclude
    )
    if candidates.size == 0:
        raise QueryError("every column was excluded; nothing to search")
    kk = min(int(k), candidates.size)
    refine_chunk = max(1, int(refine_chunk))
    positions = np.empty((queries.shape[0], kk), dtype=np.int64)
    distances = np.empty((queries.shape[0], kk), dtype=np.float64)
    refined_total = 0
    rounds_total = 0
    C = candidates.size
    # Decoded candidate rows, by candidate rank, shared by every query of
    # the batch.  ``np.empty`` commits pages lazily, so untouched (pruned)
    # rows cost no physical memory; ``intp`` rows gather without a per-round
    # cast of the store's narrowed decode dtype.
    decoded = np.empty((C, T), dtype=np.intp)
    have = np.zeros(C, dtype=bool)
    t_base = np.arange(T, dtype=np.intp) * recon.size

    def decoded_rows(ranks: np.ndarray) -> np.ndarray:
        """``(len(ranks), T)`` symbol rows; missing columns in one read."""
        missing = np.unique(ranks[~have[ranks]])
        if missing.size:
            decoded[missing] = source.matrix(
                meters=[store.ids[int(candidates[m])] for m in missing]
            )
            have[missing] = True
        return decoded[ranks]

    if index is not None:
        bands = index.bands_for(T)
        banded = (
            index.float_histograms if candidates.size == index.n_meters
            else index.band_histograms[candidates]
        )
    for b0 in range(0, queries.shape[0], _QUERY_BLOCK):
        check_deadline(b0, queries.shape[0])
        block = queries[b0: b0 + _QUERY_BLOCK]
        n_block = block.shape[0]
        # Shared query-reconstruction precompute: every query's (T, k)
        # squared cells in one broadcast, bounds for the whole sub-block
        # against every candidate in one matmul.
        block_cells = (block[:, :, None] - recon[None, None, :]) ** 2
        if index is not None:
            lb_block = histogram_bound(
                banded_min_cells(block_cells, bands, index.n_bands), banded
            )
        else:
            lb_block = np.zeros((n_block, C))
        order = np.argsort(lb_block, axis=1, kind="stable")
        lb_sorted = np.take_along_axis(lb_block, order, axis=1)
        # Refine rounds run for all still-active queries at once.  Every
        # active query has refined exactly ``at`` candidates (its first
        # ``at`` in lower-bound order), so one decode + one flat gather +
        # one batched partition advance the whole sub-block a round.
        d2_sorted = np.empty((n_block, C), dtype=np.float64)
        kth2 = np.full(n_block, np.inf)
        n_refined = np.zeros(n_block, dtype=np.int64)
        active = np.arange(n_block)
        at = 0
        while active.size and at < C:
            # Refine rounds are the expensive inner loop: even a one-query
            # plan notices expiry between rounds, not only between blocks.
            check_deadline(b0, queries.shape[0])
            if at >= kk:
                still = lb_sorted[active, at] <= kth2[active] * (1.0 + _PRUNE_SLACK)
                active = active[still]
                if not active.size:
                    break
            hi = min(at + refine_chunk, C)
            rounds_total += 1
            ranks = order[active, at:hi]                      # (A, chunk)
            # One flat gather scores every (query, candidate) of the round:
            # cells[q, t, s] lives at offset q*T*k + t*k + s, and the
            # per-(candidate, T) pairwise sum matches the serial form bit
            # for bit.  Large rounds (brute force refines every candidate
            # at once) run in query segments so the gather temporaries stay
            # a few MB instead of scaling with queries * candidates.
            d2 = np.empty(ranks.shape, dtype=np.float64)
            segment = max(1, _GATHER_ELEMENTS // max(1, ranks.shape[1] * T))
            for s0 in range(0, active.size, segment):
                sub = active[s0: s0 + segment]
                sub_ranks = ranks[s0: s0 + segment]
                matrix = decoded_rows(sub_ranks.ravel())
                flat = (
                    sub[:, None, None] * (T * recon.size)
                    + t_base[None, None, :]
                    + matrix.reshape(sub_ranks.shape + (T,))
                )
                d2[s0: s0 + segment] = block_cells.take(
                    flat.ravel()
                ).reshape(flat.shape).sum(axis=2)
            d2_sorted[active, at:hi] = d2
            n_refined[active] = hi
            if hi >= kk:
                kth2[active] = np.partition(
                    d2_sorted[active, :hi], kk - 1, axis=1
                )[:, kk - 1]
            at = hi
        refined_total += int(n_refined.sum())
        for bi in range(n_block):
            n = int(n_refined[bi])
            refined_cols = candidates[order[bi, :n]]
            refined_d2 = d2_sorted[bi, :n]
            best = np.lexsort((refined_cols, refined_d2))[:kk]
            positions[b0 + bi] = refined_cols[best]
            distances[b0 + bi] = np.sqrt(refined_d2[best])
    metrics = _obs_registry()
    if metrics.enabled:
        metrics.counter(
            "query.refine_rounds_total",
            "kNN refine rounds run (bounded-decode-prune iterations)",
        ).inc(rounds_total)
    current = _obs_tracer().current_span()
    if current is not None:
        current.set_attribute(
            "refine_rounds",
            int(current.attributes.get("refine_rounds", 0)) + rounds_total,
        )
        current.set_attribute(
            "refined",
            int(current.attributes.get("refined", 0)) + refined_total,
        )
    return positions, distances, refined_total


@dataclass(frozen=True)
class KNNOperator(Operator):
    """Exact kNN refine over the query axis.

    Its per-query pruning (the banded-histogram lower bound + refine cutoff)
    lives inside :func:`_knn_block` — it depends on each query's running
    k-th distance, so it cannot run as a column-level plan stage.
    """

    queries: np.ndarray            # (Q, T) float64
    k: int
    refine_chunk: int
    index: Optional[QueryIndex]
    exclude: np.ndarray            # excluded column positions

    def items(self, source: ColumnSource) -> Sequence:
        return list(range(self.queries.shape[0]))

    def shard(self, items: Sequence) -> Tuple["KNNOperator", Sequence]:
        idx = np.asarray(list(items), dtype=np.int64)
        return (
            replace(self, queries=self.queries[idx]),
            list(range(idx.size)),
        )

    def run_shard(self, source: ColumnSource, items: Sequence) -> tuple:
        idx = np.asarray(list(items), dtype=np.int64)
        block = (
            self.queries if idx.size == self.queries.shape[0]
            else self.queries[idx]
        )
        return _knn_block(
            source, self.index, block, self.k, self.refine_chunk,
            np.asarray(self.exclude, dtype=np.int64),
        )

    def merge(self, parts, source, items, kept) -> tuple:
        positions = np.vstack([p[0] for p in parts])
        distances = np.vstack([p[1] for p in parts])
        refined = sum(p[2] for p in parts)
        return positions, distances, refined


# -- pattern match -------------------------------------------------------------


@dataclass(frozen=True)
class MatchOperator(Operator):
    """Run-level pattern matching over the column axis.

    Carries the parsed token tuple (not the pattern text): programmatically
    built :class:`SymbolPattern` objects carry no text, and re-parsing
    worker-side would make the result depend on the worker count.
    """

    tokens: tuple                  # tuple of PatternToken
    label: str                     # pattern text for the result record

    def run_shard(self, source: ColumnSource, items: Sequence) -> tuple:
        pattern = SymbolPattern(self.tokens)
        spans: Dict = {}
        runs_scanned = 0
        cols = [int(c) for c in items]
        for column in cols:
            column_id = source.ids[column]
            values, lengths = source.runs(column_id)
            runs_scanned += int(values.size)
            found = match_runs(values, lengths, pattern)
            if found:
                spans[column_id] = found
        return spans, runs_scanned, len(cols)

    def merge(self, parts, source, items, kept) -> PatternMatches:
        result = PatternMatches(pattern=self.label)
        cols = np.asarray([int(c) for c in items], dtype=np.int64)
        result.windows_total = int(source.counts[cols].sum()) if cols.size else 0
        result.columns_skipped = len(items) - len(kept)
        for spans, runs_scanned, scanned in parts:
            result.spans.update(spans)
            result.runs_scanned += runs_scanned
            result.columns_scanned += scanned
        return result


# -- aggregation ---------------------------------------------------------------


@dataclass(frozen=True)
class AggregateOperator(Operator):
    """Per-column symbol statistics over the column axis.

    ``run_shard`` returns exact-integer ``(histograms, peaks, run_counts)``
    blocks; the float statistics (duty cycle, mean run length) are computed
    once in ``merge`` from the concatenated integers, so results are
    bit-identical for every worker count.
    """

    level: int
    index: Optional[QueryIndex] = None

    def run_shard(self, source: ColumnSource, items: Sequence) -> tuple:
        cols = [int(c) for c in items]
        whole_fleet = len(cols) == source.n_columns
        subset = None if whole_fleet else cols
        hist, peaks = source.column_stats(subset, index=self.index)
        run_count = source.run_counts(subset)
        return hist, peaks, run_count

    def merge(self, parts, source, items, kept):
        from .aggregate import AggregateReport

        k = source.alphabet_size
        if parts:
            hist = np.vstack([p[0] for p in parts])
            peaks = np.concatenate([p[1] for p in parts])
            run_count = np.concatenate([p[2] for p in parts])
        else:
            hist = np.zeros((0, k), dtype=np.int64)
            peaks = np.zeros(0, dtype=np.int64)
            run_count = np.zeros(0, dtype=np.int64)
        windows = hist.sum(axis=1)
        with np.errstate(invalid="ignore"):
            duty = np.where(
                windows > 0,
                hist[:, self.level:].sum(axis=1) / np.maximum(windows, 1),
                0.0,
            )
        mean_run = np.where(
            run_count > 0, windows / np.maximum(run_count, 1), 0.0
        )
        return AggregateReport(
            ids=[source.ids[int(c)] for c in kept],
            level=self.level,
            symbol_counts=hist,
            peak_level=peaks,
            duty_cycle=duty,
            run_count=np.asarray(run_count, dtype=np.int64),
            mean_run_length=mean_run,
        )


# -- index build ---------------------------------------------------------------


@dataclass(frozen=True)
class IndexBuildOperator(Operator):
    """Banded ``.rsymx`` statistics over the column axis.

    Shards merge in task order and every entry is an exact integer, so the
    built :class:`QueryIndex` (and any file written from it) is identical
    for every worker count.
    """

    n_bands: int

    def run_shard(self, source: ColumnSource, items: Sequence) -> tuple:
        cols = [int(c) for c in items]
        if not cols:
            k = source.alphabet_size
            return (
                np.zeros((0, self.n_bands, k), dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        if cols != list(range(cols[0], cols[-1] + 1)):
            raise QueryError("index build shards must be contiguous")
        return source._scan_stats(cols[0], cols[-1] + 1, self.n_bands)

    def merge(self, parts, source, items, kept) -> QueryIndex:
        from .index import _store_bands, _store_fingerprint

        return QueryIndex(
            np.vstack([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            np.concatenate([p[3] for p in parts]),
            _store_fingerprint(source.store),
            windows_per_day=_store_bands(source.store, self.n_bands),
        )


# -- monitoring: anomaly scores ------------------------------------------------


@dataclass
class AnomalyReport:
    """Per-meter anomaly scores from symbol-transition likelihoods.

    ``scores[i]`` is meter ``i``'s mean negative log-likelihood per symbol
    transition under the *fleet* transition model (add-one smoothed row
    normalisation of the pooled transition counts): meters whose day shapes
    move between levels the fleet rarely connects score high.
    """

    ids: List
    scores: np.ndarray             # (N,) mean -log P per transition
    transitions: np.ndarray        # (N,) transitions observed per meter
    model: np.ndarray              # (k, k) fleet transition probabilities

    def top(self, n: int = 10) -> List[tuple]:
        """The ``n`` highest-scoring ``(id, score)`` pairs."""
        order = np.argsort(-self.scores, kind="stable")[: int(n)]
        return [(self.ids[int(i)], float(self.scores[int(i)])) for i in order]

    def rows(self) -> List[Dict]:
        return [
            {
                "meter": self.ids[i],
                "score": float(self.scores[i]),
                "transitions": int(self.transitions[i]),
            }
            for i in range(len(self.ids))
        ]


def _transition_counts(values: np.ndarray, lengths: np.ndarray, k: int) -> np.ndarray:
    """``(k*k,)`` transition counts of one column, straight off its runs.

    A run of length ``L`` contributes ``L - 1`` self-transitions; each run
    boundary contributes one cross-transition — so the counts are exactly
    those of the expanded symbol sequence, at run-level cost.
    """
    counts = np.zeros(k * k, dtype=np.int64)
    if values.size == 0:
        return counts
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    self_loops = np.bincount(
        values * k + values, weights=(lengths - 1).astype(np.float64),
        minlength=k * k,
    ).astype(np.int64)
    counts += self_loops
    if values.size > 1:
        counts += np.bincount(
            values[:-1] * k + values[1:], minlength=k * k
        )
    return counts


@dataclass(frozen=True)
class AnomalyOperator(Operator):
    """Fleet-relative anomaly scores over the column axis.

    Shards return exact per-meter transition-count matrices read off the RLE
    runs (no window expansion); ``merge`` pools them into the fleet model
    and scores every meter against it — integer counts merged in task order,
    so scores are bit-identical for every worker count.
    """

    def run_shard(self, source: ColumnSource, items: Sequence) -> np.ndarray:
        k = source.alphabet_size
        cols = [int(c) for c in items]
        counts = np.zeros((len(cols), k * k), dtype=np.int64)
        for row, column in enumerate(cols):
            values, lengths = source.runs(source.ids[column])
            counts[row] = _transition_counts(values, lengths, k)
        return counts

    def merge(self, parts, source, items, kept) -> AnomalyReport:
        k = source.alphabet_size
        if parts:
            counts = np.vstack(parts)
        else:
            counts = np.zeros((0, k * k), dtype=np.int64)
        pooled = counts.sum(axis=0).reshape(k, k).astype(np.float64)
        smoothed = pooled + 1.0
        model = smoothed / smoothed.sum(axis=1, keepdims=True)
        log_model = np.log(model).reshape(k * k)
        transitions = counts.sum(axis=1)
        with np.errstate(invalid="ignore"):
            scores = np.where(
                transitions > 0,
                -(counts @ log_model) / np.maximum(transitions, 1),
                0.0,
            )
        return AnomalyReport(
            ids=[source.ids[int(c)] for c in kept],
            scores=scores,
            transitions=transitions,
            model=model,
        )


# -- monitoring: drift reports -------------------------------------------------


@dataclass
class DriftReport:
    """Which meters' symbol distributions shifted, straight off histograms.

    ``distances[i]`` is the total-variation distance between meter ``i``'s
    normalised symbol histogram and the reference distribution — a baseline
    index's histogram for the same meter when one is given, else the current
    fleet mean.  Computed from ``.rsymx`` statistics alone: zero columns
    decoded (asserted via :class:`SourceStats`).
    """

    ids: List
    distances: np.ndarray          # (N,) total-variation distances in [0, 1]
    reference: str                 # "baseline" or "fleet-mean"
    columns_decoded: int

    def top(self, n: int = 10) -> List[tuple]:
        order = np.argsort(-self.distances, kind="stable")[: int(n)]
        return [
            (self.ids[int(i)], float(self.distances[int(i)])) for i in order
        ]

    def shifted(self, threshold: float = 0.1) -> List:
        """Ids whose distribution moved more than ``threshold`` TV distance."""
        return [
            self.ids[int(i)]
            for i in np.nonzero(self.distances > float(threshold))[0]
        ]

    def rows(self) -> List[Dict]:
        return [
            {"meter": self.ids[i], "tv_distance": float(self.distances[i])}
            for i in range(len(self.ids))
        ]


@dataclass(frozen=True)
class DriftOperator(Operator):
    """Fleet drift report over the column axis, reading only histograms.

    ``baseline_histograms`` (aligned to the *full* fleet's column order) is
    a previous snapshot's histogram block; ``None`` compares every meter to
    the current fleet-mean distribution instead.
    """

    index: Optional[QueryIndex] = None
    baseline_histograms: Optional[np.ndarray] = None

    def run_shard(self, source: ColumnSource, items: Sequence) -> np.ndarray:
        cols = [int(c) for c in items]
        subset = None if len(cols) == source.n_columns else cols
        hist, _ = source.column_stats(subset, index=self.index)
        return np.asarray(hist, dtype=np.int64)

    def merge(self, parts, source, items, kept) -> DriftReport:
        k = source.alphabet_size
        hist = (
            np.vstack(parts) if parts else np.zeros((0, k), dtype=np.int64)
        ).astype(np.float64)
        windows = hist.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore"):
            current = np.where(windows > 0, hist / np.maximum(windows, 1.0), 0.0)
        if self.baseline_histograms is not None:
            base = np.asarray(self.baseline_histograms, dtype=np.float64)
            if base.shape[1] != k:
                raise QueryError(
                    f"baseline histograms have alphabet {base.shape[1]}, "
                    f"store has {k}"
                )
            cols = np.asarray([int(c) for c in kept], dtype=np.int64)
            if cols.size and int(cols.max()) >= base.shape[0]:
                raise QueryError(
                    f"baseline covers {base.shape[0]} columns, store has "
                    f"column {int(cols.max())}"
                )
            base = base[cols]
            totals = base.sum(axis=1, keepdims=True)
            with np.errstate(invalid="ignore"):
                reference = np.where(
                    totals > 0, base / np.maximum(totals, 1.0), 0.0
                )
            kind = "baseline"
        else:
            fleet = hist.sum(axis=0)
            total = fleet.sum()
            reference = (
                fleet / total if total > 0 else np.zeros(k)
            )[None, :]
            kind = "fleet-mean"
        distances = 0.5 * np.abs(current - reference).sum(axis=1)
        return DriftReport(
            ids=[source.ids[int(c)] for c in kept],
            distances=distances,
            reference=kind,
            columns_decoded=source.stats.columns_decoded,
        )


# -- monitoring: private aggregates --------------------------------------------


@dataclass
class PrivateAggregateReport:
    """A publishable group aggregate: k-anonymous, optionally noised.

    ``symbol_counts`` are the *released* pooled counts — cells supported by
    fewer than ``k_anon`` windows suppressed to zero
    (:func:`~repro.analytics.privacy.k_anonymize_counts`), then Laplace
    noise at scale ``1/epsilon`` added when ``epsilon`` is set
    (:func:`~repro.analytics.privacy.noisy_counts`, seeded, clipped at 0).
    ``band_profile`` is the group's mean reconstruction level per time band,
    computed from the released banded counts — a neighbourhood load profile
    that never cites an individual meter.
    """

    n_meters: int
    level: int
    k_anon: int
    epsilon: Optional[float]
    symbol_counts: np.ndarray      # (k,) released pooled counts
    suppressed: np.ndarray         # (k,) bool — cells removed by k-anonymity
    duty_cycle: float              # released windows at/above level
    band_profile: np.ndarray       # (n_bands,) mean reconstruction per band

    def rows(self) -> List[Dict]:
        return [
            {
                "symbol": s,
                "count": float(self.symbol_counts[s]),
                "suppressed": bool(self.suppressed[s]),
            }
            for s in range(self.symbol_counts.shape[0])
        ]


@dataclass(frozen=True)
class GroupAggregateOperator(Operator):
    """Pooled k-anonymous group aggregate over the column axis.

    Shards return exact pooled banded counts; ``merge`` sums them (order
    independent), enforces the group-size floor, and applies suppression
    and noise once — so the released aggregate is deterministic for every
    worker count and seed.
    """

    level: int
    k_anon: int
    epsilon: Optional[float] = None
    seed: int = 0
    n_bands: int = DEFAULT_BANDS
    index: Optional[QueryIndex] = None

    def run_shard(self, source: ColumnSource, items: Sequence) -> np.ndarray:
        k = source.alphabet_size
        cols = [int(c) for c in items]
        index = self.index if self.index is not None else source.index
        if not cols:
            return np.zeros((self.n_bands, k), dtype=np.int64)
        if index is not None and index.n_bands == self.n_bands:
            idx = np.asarray(cols, dtype=np.int64)
            return index.band_histograms[idx].sum(axis=0)
        if cols == list(range(cols[0], cols[-1] + 1)):
            banded, _, _, _ = source._scan_stats(
                cols[0], cols[-1] + 1, self.n_bands
            )
            return banded.sum(axis=0)
        parts = [
            source._scan_stats(c, c + 1, self.n_bands)[0][0] for c in cols
        ]
        return np.sum(parts, axis=0, dtype=np.int64)

    def merge(self, parts, source, items, kept) -> PrivateAggregateReport:
        from ..analytics.privacy import k_anonymize_counts, noisy_counts

        k = source.alphabet_size
        if len(kept) < max(1, int(self.k_anon)):
            raise QueryError(
                f"group of {len(kept)} meters is smaller than k_anon="
                f"{self.k_anon}; refusing to release an identifying aggregate"
            )
        banded = np.sum(parts, axis=0, dtype=np.int64) if parts else np.zeros(
            (self.n_bands, k), dtype=np.int64
        )
        pooled = banded.sum(axis=0)
        released, suppressed = k_anonymize_counts(pooled, self.k_anon)
        banded = np.where(suppressed[None, :], 0, banded).astype(np.float64)
        released = released.astype(np.float64)
        if self.epsilon is not None:
            released = noisy_counts(released, self.epsilon, seed=self.seed)
            banded = noisy_counts(banded, self.epsilon, seed=self.seed + 1)
        recon = source.table.reconstruction_array
        band_totals = banded.sum(axis=1)
        with np.errstate(invalid="ignore"):
            profile = np.where(
                band_totals > 0,
                banded @ recon / np.maximum(band_totals, 1.0),
                0.0,
            )
        total = released.sum()
        duty = float(released[self.level:].sum() / total) if total > 0 else 0.0
        return PrivateAggregateReport(
            n_meters=len(kept),
            level=self.level,
            k_anon=int(self.k_anon),
            epsilon=self.epsilon,
            symbol_counts=released,
            suppressed=suppressed,
            duty_cycle=duty,
            band_profile=profile,
        )
