"""Vectorized MINDIST-style lower-bound distance kernels (Lin et al. 2007).

The SAX lineage prunes similarity searches with a *lower-bounding* distance
computed on symbols alone: symbol ``j`` covers the value range
``(beta[j-1], beta[j]]`` of its breakpoint table, so the distance between two
symbols is at least the gap between their ranges — zero for adjacent or
equal symbols.  The same construction applies verbatim to the paper's
:class:`~repro.core.lookup.LookupTable`, whose separators *are* a breakpoint
table (:meth:`LookupTable.breakpoints`), and to the SAX/iSAX Gaussian
breakpoints — one kernel serves every encoder in this repo.

All kernels are pure array transforms over a breakpoint vector:

:func:`cell_bounds`
    The ``(k, k)`` matrix of per-symbol-pair lower bounds (the "cell"
    function of the SAX MINDIST definition), built with one broadcast.

:func:`mindist`
    The lower-bounding distance between symbol words, vectorized over any
    batch of candidate words — equal to :func:`repro.baselines.sax.mindist`
    for Gaussian breakpoints (pinned by ``tests/query/test_distance.py``).

:func:`value_cell_bounds`
    Per-(position, symbol) lower bounds for a *raw-valued* query against
    symbol ranges — valid even when reconstruction values are unknown
    (e.g. a store shipped without them).  The kNN engine itself bounds
    against the *known* reconstruction values instead (tighter), so this
    kernel is the range-only fallback of the same family.

The bounds hold against the decoded reconstruction values whenever each
symbol's reconstruction value lies inside its range, which is true for
tables fit on the paper's non-negative power data and for
:meth:`LookupTable.from_breakpoints` tables (property-tested across alphabet
sizes in ``tests/query/``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.lookup import LookupTable
from ..errors import QueryError

__all__ = [
    "breakpoints_of",
    "cell_bounds",
    "mindist",
    "value_cell_bounds",
]


def breakpoints_of(
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """Normalise a table or raw vector into a ``float64`` breakpoint array."""
    if isinstance(table_or_breakpoints, LookupTable):
        return table_or_breakpoints.breakpoints()
    beta = np.asarray(table_or_breakpoints, dtype=np.float64).ravel()
    if beta.size == 0:
        raise QueryError("a breakpoint table needs at least one breakpoint")
    if np.any(np.diff(beta) < 0):
        raise QueryError("breakpoints must be non-decreasing")
    return beta


def cell_bounds(
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """``(k, k)`` lower-bound matrix between symbol pairs.

    ``cell[i, j] = beta[max(i,j) - 1] - beta[min(i,j)]`` when ``|i - j| > 1``
    and ``0`` otherwise — the SAX MINDIST cell function, computed for every
    pair with one broadcast.  Entry ``(i, j)`` lower-bounds ``|x - y|`` for
    any values ``x`` in symbol ``i``'s range and ``y`` in symbol ``j``'s.
    """
    beta = breakpoints_of(table_or_breakpoints)
    # Range edges: symbol s covers (low[s], high[s]] with unbounded ends.
    low = np.concatenate([[-np.inf], beta])
    high = np.concatenate([beta, [np.inf]])
    gap = low[None, :] - high[:, None]  # gap[i, j] = low[j] - high[i]
    return np.maximum(0.0, np.maximum(gap, gap.T))


def mindist(
    a: np.ndarray,
    b: np.ndarray,
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
    original_length: Optional[int] = None,
) -> np.ndarray:
    """Lower-bounding distance between symbol-index words, vectorized.

    ``a`` and ``b`` are index arrays whose trailing axis is the word; leading
    axes broadcast, so one query word against ``(C, T)`` candidates is a
    single call.  ``original_length`` applies the SAX PAA compensation factor
    ``sqrt(n / w)`` (leave ``None`` for words at full resolution, e.g. the
    store's window columns).  Returns a scalar for two 1-D words.
    """
    cells = cell_bounds(table_or_breakpoints)
    k = cells.shape[0]
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape[-1] != b.shape[-1]:
        raise QueryError(
            f"words must have equal length, got {a.shape[-1]} and {b.shape[-1]}"
        )
    for word in (a, b):
        if word.size and (word.min() < 0 or word.max() >= k):
            raise QueryError(
                f"symbol indices out of range for alphabet of size {k}"
            )
    squared = np.sum(cells[a, b] ** 2, axis=-1)
    length = a.shape[-1]
    scale = 1.0 if original_length is None else np.sqrt(original_length / length)
    out = scale * np.sqrt(squared)
    return float(out) if np.ndim(out) == 0 else out


def value_cell_bounds(
    values: np.ndarray,
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """Per-(position, symbol) lower bounds for raw query values.

    For each query value ``v`` and symbol ``s``, the returned entry
    lower-bounds ``|v - y|`` for any ``y`` in ``s``'s range: the distance
    from ``v`` to the range, zero when ``v`` falls inside it.  Shape is
    ``values.shape + (k,)``.  This bounds without knowing reconstruction
    values; the kNN engine, which does know them, uses the exact
    ``(v - reconstruction)^2`` cells instead.
    """
    beta = breakpoints_of(table_or_breakpoints)
    arr = np.asarray(values, dtype=np.float64)
    low = np.concatenate([[-np.inf], beta])
    high = np.concatenate([beta, [np.inf]])
    below = low - arr[..., None]   # positive when v is below the range
    above = arr[..., None] - high  # positive when v is above the range
    return np.maximum(0.0, np.maximum(below, above))
