"""Vectorized MINDIST-style lower-bound distance kernels (Lin et al. 2007).

The SAX lineage prunes similarity searches with a *lower-bounding* distance
computed on symbols alone: symbol ``j`` covers the value range
``(beta[j-1], beta[j]]`` of its breakpoint table, so the distance between two
symbols is at least the gap between their ranges — zero for adjacent or
equal symbols.  The same construction applies verbatim to the paper's
:class:`~repro.core.lookup.LookupTable`, whose separators *are* a breakpoint
table (:meth:`LookupTable.breakpoints`), and to the SAX/iSAX Gaussian
breakpoints — one kernel serves every encoder in this repo.

All kernels are pure array transforms over a breakpoint vector:

:func:`cell_bounds`
    The ``(k, k)`` matrix of per-symbol-pair lower bounds (the "cell"
    function of the SAX MINDIST definition), built with one broadcast.

:func:`mindist`
    The lower-bounding distance between symbol words, vectorized over any
    batch of candidate words — equal to :func:`repro.baselines.sax.mindist`
    for Gaussian breakpoints (pinned by ``tests/query/test_distance.py``).

:func:`value_cell_bounds`
    Per-(position, symbol) lower bounds for a *raw-valued* query against
    symbol ranges — valid even when reconstruction values are unknown
    (e.g. a store shipped without them).  The kNN engine itself bounds
    against the *known* reconstruction values instead (tighter), so this
    kernel is the range-only fallback of the same family.

The bounds hold against the decoded reconstruction values whenever each
symbol's reconstruction value lies inside its range, which is true for
tables fit on the paper's non-negative power data and for
:meth:`LookupTable.from_breakpoints` tables (property-tested across alphabet
sizes in ``tests/query/``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.lookup import LookupTable
from ..errors import QueryError

__all__ = [
    "breakpoints_of",
    "cell_bounds",
    "mindist",
    "value_cell_bounds",
    "banded_min_cells",
    "histogram_bound",
    "gathered_squared_distances",
    "rle_squared_distances",
]


def breakpoints_of(
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """Normalise a table or raw vector into a ``float64`` breakpoint array."""
    if isinstance(table_or_breakpoints, LookupTable):
        return table_or_breakpoints.breakpoints()
    beta = np.asarray(table_or_breakpoints, dtype=np.float64).ravel()
    if beta.size == 0:
        raise QueryError("a breakpoint table needs at least one breakpoint")
    if np.any(np.diff(beta) < 0):
        raise QueryError("breakpoints must be non-decreasing")
    return beta


def cell_bounds(
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """``(k, k)`` lower-bound matrix between symbol pairs.

    ``cell[i, j] = beta[max(i,j) - 1] - beta[min(i,j)]`` when ``|i - j| > 1``
    and ``0`` otherwise — the SAX MINDIST cell function, computed for every
    pair with one broadcast.  Entry ``(i, j)`` lower-bounds ``|x - y|`` for
    any values ``x`` in symbol ``i``'s range and ``y`` in symbol ``j``'s.
    """
    beta = breakpoints_of(table_or_breakpoints)
    # Range edges: symbol s covers (low[s], high[s]] with unbounded ends.
    low = np.concatenate([[-np.inf], beta])
    high = np.concatenate([beta, [np.inf]])
    gap = low[None, :] - high[:, None]  # gap[i, j] = low[j] - high[i]
    return np.maximum(0.0, np.maximum(gap, gap.T))


def mindist(
    a: np.ndarray,
    b: np.ndarray,
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
    original_length: Optional[int] = None,
) -> np.ndarray:
    """Lower-bounding distance between symbol-index words, vectorized.

    ``a`` and ``b`` are index arrays whose trailing axis is the word; leading
    axes broadcast, so one query word against ``(C, T)`` candidates is a
    single call.  ``original_length`` applies the SAX PAA compensation factor
    ``sqrt(n / w)`` (leave ``None`` for words at full resolution, e.g. the
    store's window columns).  Returns a scalar for two 1-D words.
    """
    cells = cell_bounds(table_or_breakpoints)
    k = cells.shape[0]
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape[-1] != b.shape[-1]:
        raise QueryError(
            f"words must have equal length, got {a.shape[-1]} and {b.shape[-1]}"
        )
    for word in (a, b):
        if word.size and (word.min() < 0 or word.max() >= k):
            raise QueryError(
                f"symbol indices out of range for alphabet of size {k}"
            )
    squared = np.sum(cells[a, b] ** 2, axis=-1)
    length = a.shape[-1]
    scale = 1.0 if original_length is None else np.sqrt(original_length / length)
    out = scale * np.sqrt(squared)
    return float(out) if np.ndim(out) == 0 else out


def value_cell_bounds(
    values: np.ndarray,
    table_or_breakpoints: Union[LookupTable, Sequence[float], np.ndarray],
) -> np.ndarray:
    """Per-(position, symbol) lower bounds for raw query values.

    For each query value ``v`` and symbol ``s``, the returned entry
    lower-bounds ``|v - y|`` for any ``y`` in ``s``'s range: the distance
    from ``v`` to the range, zero when ``v`` falls inside it.  Shape is
    ``values.shape + (k,)``.  This bounds without knowing reconstruction
    values; the kNN engine, which does know them, uses the exact
    ``(v - reconstruction)^2`` cells instead.
    """
    beta = breakpoints_of(table_or_breakpoints)
    arr = np.asarray(values, dtype=np.float64)
    low = np.concatenate([[-np.inf], beta])
    high = np.concatenate([beta, [np.inf]])
    below = low - arr[..., None]   # positive when v is below the range
    above = arr[..., None] - high  # positive when v is above the range
    return np.maximum(0.0, np.maximum(below, above))


# -- batched kNN kernels -----------------------------------------------------------
#
# The kNN engine's hot loop is built from the three kernels below: per-band
# minima of the query's squared cells (the index-tier bound), one matrix
# product bounding every (query, candidate) pair at once, and the exact
# refinement distances — gathered off decoded symbols, or scored run by run
# straight off an RLE payload.


def banded_min_cells(
    cells: np.ndarray, bands: np.ndarray, n_bands: int
) -> np.ndarray:
    """Per-(band, symbol) minima of squared distance cells, batched.

    ``cells`` is ``(T, k)`` for one query or ``(Q, T, k)`` for a batch;
    ``bands`` assigns each of the ``T`` positions to one of ``n_bands``
    bands (any order — bands need not be contiguous).  Returns
    ``(..., n_bands, k)`` where entry ``(b, s)`` is the smallest
    ``cells[t, s]`` over the band's positions — the least any window
    holding symbol ``s`` in band ``b`` can contribute to a squared
    distance.  Empty bands contribute ``0``.

    One stable argsort of ``bands`` plus ``np.minimum.reduceat`` over the
    sorted positions replaces a Python-level ``np.minimum.at`` per query —
    the batched form is what makes multi-query bounds one call.
    """
    arr = np.asarray(cells, dtype=np.float64)
    squeeze = arr.ndim == 2
    if squeeze:
        arr = arr[None]
    if arr.ndim != 3:
        raise QueryError(f"cells must be (T, k) or (Q, T, k), got {cells.shape}")
    n_bands = int(n_bands)
    if n_bands < 1:
        raise QueryError(f"n_bands must be >= 1, got {n_bands}")
    bands = np.asarray(bands, dtype=np.int64)
    if bands.shape != (arr.shape[1],):
        raise QueryError(
            f"bands must have one entry per position, got {bands.shape} "
            f"for {arr.shape[1]} positions"
        )
    if bands.size == 0:
        return np.zeros(
            (arr.shape[0], n_bands, arr.shape[2]) if not squeeze
            else (n_bands, arr.shape[2])
        )
    if bands.min() < 0 or bands.max() >= n_bands:
        raise QueryError(f"band labels out of range [0, {n_bands})")
    # Time-of-day bands tile a fixed period of equal contiguous segments
    # (band = (t % per_day) * n_bands // per_day); recognising that shape
    # turns the kernel into one strided ``min`` over a reshape — no
    # position gather, no reduceat.  ``min`` is exact, so both paths
    # return bit-identical cells.
    runs = np.flatnonzero(bands != bands[0])
    seg = int(runs[0]) if runs.size else bands.size
    period = n_bands * seg
    if bands[0] == 0 and bands.size % period == 0:
        pattern = np.repeat(np.arange(n_bands), seg)
        reps = bands.size // period
        if np.array_equal(bands, np.tile(pattern, reps)):
            out = arr.reshape(
                arr.shape[0], reps, n_bands, seg, arr.shape[2]
            ).min(axis=(1, 3))
            return out[0] if squeeze else out
    order = np.argsort(bands, kind="stable")
    present, starts = np.unique(bands[order], return_index=True)
    # reduceat over the segment start of each *present* band only: feeding
    # it empty segments would return stray elements and shift neighbours'
    # boundaries.  Absent bands stay at the zero they contribute.
    reduced = np.minimum.reduceat(arr[:, order, :], starts, axis=1)
    out = np.zeros((arr.shape[0], n_bands, arr.shape[2]))
    out[:, present, :] = reduced
    return out[0] if squeeze else out


def histogram_bound(
    min_cells: np.ndarray, band_histograms: np.ndarray
) -> np.ndarray:
    """Squared lower bounds for every (query, candidate) pair in one matmul.

    ``min_cells`` is the :func:`banded_min_cells` output for ``Q`` queries
    (``(Q, n_bands, k)`` or ``(n_bands, k)``); ``band_histograms`` the
    candidates' ``(C, n_bands, k)`` symbol counts.  A candidate whose band
    ``b`` holds ``h`` windows of symbol ``s`` is at squared distance at
    least ``h * min_cells[b, s]`` from those windows, so the full bound is
    one ``(Q, n_bands * k) @ (n_bands * k, C)`` product — all queries
    against all candidates at once, no payload bytes touched.
    """
    mins = np.asarray(min_cells, dtype=np.float64)
    hist = np.asarray(band_histograms, dtype=np.float64)
    squeeze = mins.ndim == 2
    if squeeze:
        mins = mins[None]
    if mins.ndim != 3 or hist.ndim != 3:
        raise QueryError(
            f"expected (Q, bands, k) minima and (C, bands, k) histograms, "
            f"got {min_cells.shape} and {band_histograms.shape}"
        )
    if mins.shape[1:] != hist.shape[1:]:
        raise QueryError(
            f"minima and histograms disagree on (bands, k): "
            f"{mins.shape[1:]} vs {hist.shape[1:]}"
        )
    out = mins.reshape(mins.shape[0], -1) @ hist.reshape(hist.shape[0], -1).T
    return out[0] if squeeze else out


def gathered_squared_distances(
    cells: np.ndarray, matrix: np.ndarray
) -> np.ndarray:
    """Exact squared distances by gathering per-(position, symbol) cells.

    ``cells`` is ``(T, k)`` squared distances from one query to every
    symbol's reconstruction value; ``matrix`` is ``(C, T)`` candidate
    symbol indices (any integer dtype — the store's narrowed ``uint8``
    gathers directly).  Both the pruned and the brute-force kNN paths call
    this exact expression on row-contiguous chunks, which is what makes
    their float results identical bit for bit.

    The gather runs as one flat ``take`` — ``cells[t, s]`` lives at flat
    offset ``t * k + s`` — which skips the broadcast machinery of a 2-D
    fancy index; the gathered ``(C, T)`` block and its ``axis=1`` pairwise
    sum are element-for-element the ones the 2-D form produces.
    """
    cells = np.ascontiguousarray(cells)
    T, k = cells.shape
    flat = np.arange(T, dtype=np.intp) * k + matrix
    return cells.take(flat.ravel()).reshape(matrix.shape).sum(axis=1)


def rle_squared_distances(
    cells: np.ndarray,
    run_values: np.ndarray,
    run_lengths: np.ndarray,
    offsets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact squared distances scored run by run — symbols never expanded.

    ``cells`` is the query's ``(T, k)`` squared cells; ``run_values`` /
    ``run_lengths`` are flat RLE arrays, split per candidate by ``offsets``
    (``None`` scores one candidate).  A run of symbol ``s`` covering
    windows ``[t0, t0 + len)`` contributes ``sum_t cells[t, s]`` — read as
    a difference of the per-symbol prefix sums, so the work per candidate
    is proportional to its *run count*, not its window count (a day that
    compresses to 9 runs is scored in 9 lookups, not 96).

    Mathematically equal to :func:`gathered_squared_distances` on the
    expanded symbols; float rounding may differ in the last ulps because
    runs sum in a different association order (the engine's bit-exact
    paths keep using the gather form).
    """
    arr = np.asarray(cells, dtype=np.float64)
    if arr.ndim != 2:
        raise QueryError(f"cells must be (T, k), got {cells.shape}")
    values = np.asarray(run_values, dtype=np.int64).ravel()
    lengths = np.asarray(run_lengths, dtype=np.int64).ravel()
    if values.shape != lengths.shape:
        raise QueryError("run_values and run_lengths must be equal length")
    if offsets is None:
        offsets = np.array([0, values.size], dtype=np.int64)
    else:
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != values.size:
            raise QueryError(
                "offsets must start at 0 and end at the total run count"
            )
    T = arr.shape[0]
    n_cols = offsets.size - 1
    if n_cols == 0:
        return np.zeros(0, dtype=np.float64)
    if values.size == 0:
        return np.zeros(n_cols, dtype=np.float64)
    if values.min() < 0 or values.max() >= arr.shape[1]:
        raise QueryError(
            f"run values out of range for alphabet of size {arr.shape[1]}"
        )
    runs_per_col = np.diff(offsets)
    if np.any(runs_per_col < 0):
        raise QueryError("offsets must be non-decreasing")
    if T > 0 and np.any(runs_per_col == 0):
        raise QueryError(
            f"every candidate needs runs summing to the query length {T}"
        )
    run_col = np.repeat(np.arange(n_cols), runs_per_col)
    ends = np.cumsum(lengths) - T * run_col
    starts = ends - lengths
    if np.any(ends[offsets[1:] - 1] != T) or starts.min() < 0:
        raise QueryError(
            f"run lengths must sum to the query length {T} per candidate"
        )
    prefix = np.zeros((T + 1, arr.shape[1]), dtype=np.float64)
    np.cumsum(arr, axis=0, out=prefix[1:])
    contrib = prefix[ends, values] - prefix[starts, values]
    return np.add.reduceat(contrib, offsets[:-1])
