"""``ScanPlan``: one sharding/merge driver for every query operator.

A plan is ``source -> pruning stages -> operator``:

* the :class:`~repro.query.ops.ColumnSource` names the store (file or
  segment directory) the plan reads;
* each stage narrows the operator's work list without touching payload
  bytes (today: :class:`~repro.query.ops.SymbolCountPrune` off the
  ``.rsymx`` histograms);
* the terminal :class:`~repro.query.ops.Operator` does the real work per
  shard and folds shard results in task order.

``run(workers=N)`` is the **only** sharding loop in ``repro.query`` — kNN,
pattern matching, aggregation, index builds and the monitoring operators
all execute through it.  The driver preserves the determinism contract the
bespoke loops had: ``workers=1`` (or a single-item work list) runs the
operator in-process against the already-open source — literally the serial
path — while ``workers != 1`` splits the work list contiguously with
``np.array_split``, ships each shard as a
:class:`~repro.parallel.worker.PlanShardTask` (workers reopen the store by
path), and merges in task order.  Because every operator's shard results
are exact (integers, or per-item-independent floats), plan results are
bit-identical for every worker count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .ops import ColumnSource, Operator

__all__ = ["ScanPlan"]


class ScanPlan:
    """One composed query: source, pruning stages, terminal operator."""

    def __init__(
        self,
        source: ColumnSource,
        operator: Operator,
        items: Optional[Sequence] = None,
        stages: Sequence = (),
    ) -> None:
        self.source = source
        self.operator = operator
        self.items = items
        self.stages = tuple(stages)

    def explain(self) -> str:
        """One-line description of the composed pipeline."""
        parts = [type(self.source).__name__]
        parts += [type(stage).__name__ for stage in self.stages]
        parts.append(type(self.operator).__name__)
        return " -> ".join(parts)

    def run(self, workers: int = 1):
        """Execute the plan; the one sharding/merge loop in ``repro.query``."""
        items = (
            self.operator.items(self.source)
            if self.items is None else list(self.items)
        )
        kept: List = list(items)
        for stage in self.stages:
            kept = list(stage.apply(self.source, kept))
        if workers == 1 or len(kept) <= 1:
            parts = [self.operator.run_shard(self.source, kept)]
        else:
            parts = self._run_sharded(kept, workers)
        return self.operator.merge(parts, self.source, items, kept)

    def _run_sharded(self, kept: List, workers: int) -> List:
        from ..parallel.executor import ParallelExecutor, resolve_workers
        from ..parallel.worker import PlanShardTask, run_plan_shard

        workers = resolve_workers(workers)
        bounds = np.array_split(
            np.arange(len(kept)), min(workers, len(kept))
        )
        tasks = []
        for idx in bounds:
            if not idx.size:
                continue
            operator, shard_items = self.operator.shard(
                [kept[int(i)] for i in idx]
            )
            tasks.append(PlanShardTask(
                store_path=str(self.source.store.path),
                operator=operator,
                items=shard_items,
            ))
        with ParallelExecutor(workers) as executor:
            return executor.map(run_plan_shard, tasks)

    def __repr__(self) -> str:
        return f"ScanPlan({self.explain()})"
