"""``ScanPlan``: one sharding/merge driver for every query operator.

A plan is ``source -> pruning stages -> operator``:

* the :class:`~repro.query.ops.ColumnSource` names the store (file or
  segment directory) the plan reads;
* each stage narrows the operator's work list without touching payload
  bytes (today: :class:`~repro.query.ops.SymbolCountPrune` off the
  ``.rsymx`` histograms);
* the terminal :class:`~repro.query.ops.Operator` does the real work per
  shard and folds shard results in task order.

``run(workers=N)`` is the **only** sharding loop in ``repro.query`` — kNN,
pattern matching, aggregation, index builds and the monitoring operators
all execute through it.  The driver preserves the determinism contract the
bespoke loops had: ``workers=1`` (or a single-item work list) runs the
operator in-process against the already-open source — literally the serial
path — while ``workers != 1`` splits the work list contiguously with
``np.array_split``, ships each shard as a
:class:`~repro.parallel.worker.PlanShardTask` (workers reopen the store by
path), and merges in task order.  Because every operator's shard results
are exact (integers, or per-item-independent floats), plan results are
bit-identical for every worker count.
"""

from __future__ import annotations

import contextvars
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import DeadlineExceeded
from ..obs import merge_telemetry, registry, shard_trace_context, tracer
from .ops import ColumnSource, Operator

__all__ = ["Deadline", "ScanPlan", "active_deadline", "check_deadline"]

#: Items executed per serial chunk when a deadline is active: small enough
#: that a stalled scan notices expiry within a chunk's work, large enough
#: that chunk bookkeeping stays invisible next to the per-item work.
_DEADLINE_CHUNK = 32

#: The deadline governing the current in-process plan execution, if any.
#: A context variable (not a plain global) so concurrent server threads
#: each see only their own request's deadline.
_ACTIVE_DEADLINE: contextvars.ContextVar[Optional["Deadline"]] = (
    contextvars.ContextVar("repro_active_deadline", default=None)
)


class Deadline:
    """A monotonic expiry an in-flight query checks cooperatively.

    Created once per request (``Deadline(seconds)``); the plan driver and
    the kNN refine loop call :meth:`check` at their natural yield points —
    between item chunks and refine rounds — so expiry surfaces as a
    :class:`~repro.errors.DeadlineExceeded` carrying partial-work
    accounting instead of a request that silently overstays.  ``clock`` is
    injectable for deterministic tests.
    """

    __slots__ = ("budget", "_clock", "started_at", "expires_at")

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget = float(seconds)
        self._clock = clock
        self.started_at = clock()
        self.expires_at = self.started_at + self.budget

    @classmethod
    def from_ms(cls, milliseconds: float,
                clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(float(milliseconds) / 1000.0, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> float:
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, completed: Optional[int] = None,
              total: Optional[int] = None) -> None:
        """Raise :class:`DeadlineExceeded` (with accounting) once expired."""
        if not self.expired():
            return
        done = "" if completed is None or total is None else (
            f" after {completed} of {total} items"
        )
        raise DeadlineExceeded(
            f"deadline of {self.budget * 1000.0:.0f} ms exceeded{done} "
            f"({self.elapsed() * 1000.0:.0f} ms elapsed)",
            budget_ms=self.budget * 1000.0,
            elapsed_ms=self.elapsed() * 1000.0,
            completed=completed,
            total=total,
        )


def active_deadline() -> Optional[Deadline]:
    """The deadline of the plan currently executing in this context."""
    return _ACTIVE_DEADLINE.get()


def check_deadline(completed: Optional[int] = None,
                   total: Optional[int] = None) -> None:
    """Cooperative cancellation point for operator inner loops.

    Free when no deadline is active; inner loops (the kNN refine rounds)
    call this so even a single-item plan notices expiry mid-item.
    """
    deadline = _ACTIVE_DEADLINE.get()
    if deadline is not None:
        deadline.check(completed, total)


class ScanPlan:
    """One composed query: source, pruning stages, terminal operator."""

    def __init__(
        self,
        source: ColumnSource,
        operator: Operator,
        items: Optional[Sequence] = None,
        stages: Sequence = (),
    ) -> None:
        self.source = source
        self.operator = operator
        self.items = items
        self.stages = tuple(stages)

    def explain(self) -> str:
        """One-line description of the composed pipeline."""
        parts = [type(self.source).__name__]
        parts += [type(stage).__name__ for stage in self.stages]
        parts.append(type(self.operator).__name__)
        return " -> ".join(parts)

    def run(self, workers: int = 1, deadline: Optional[Deadline] = None):
        """Execute the plan; the one sharding/merge loop in ``repro.query``.

        ``deadline`` bounds the execution cooperatively: the serial path
        runs the work list in chunks and checks expiry between them (and
        operators with inner loops — kNN refinement — check between
        rounds via :func:`check_deadline`), raising
        :class:`~repro.errors.DeadlineExceeded` with partial-work
        accounting.  Without a deadline the execution path is literally
        unchanged, and results are bit-identical either way: chunked shard
        results merge exactly like worker shards do.  Multi-process runs
        check the deadline before sharding and after the merge-join —
        worker shards themselves run to completion.
        """
        trace = tracer()
        metrics = registry()
        if not trace.enabled and not metrics.enabled:
            return self._execute(workers, deadline)
        op_name = type(self.operator).__name__
        stats = self.source.stats
        decoded_before = stats.columns_decoded
        runs_before = stats.runs_read
        started = time.perf_counter()
        try:
            with trace.span(
                "plan.run", operator=op_name, workers=workers,
                store=str(self.source.store.path),
            ) as plan_span:
                if deadline is not None:
                    plan_span.set_attribute(
                        "deadline_budget_ms", round(deadline.budget * 1e3, 3))
                result = self._execute(workers, deadline, plan_span)
                if deadline is not None:
                    plan_span.set_attribute(
                        "deadline_remaining_ms",
                        round(deadline.remaining() * 1e3, 3))
                plan_span.set_attributes(
                    columns_decoded=int(stats.columns_decoded - decoded_before),
                    runs_read=int(stats.runs_read - runs_before),
                )
        except DeadlineExceeded:
            metrics.counter(
                "plan.deadline_expired_total",
                "Plan executions cancelled by their deadline",
                op=op_name,
            ).inc()
            raise
        finally:
            metrics.histogram(
                "plan.run_seconds", "ScanPlan.run wall time", op=op_name,
            ).observe(time.perf_counter() - started)
        metrics.counter(
            "plan.runs_total", "Completed ScanPlan executions", op=op_name,
        ).inc()
        return result

    def _execute(self, workers: int, deadline: Optional[Deadline],
                 plan_span=None):
        """The original (pre-telemetry) execution path, bit-for-bit."""
        items = (
            self.operator.items(self.source)
            if self.items is None else list(self.items)
        )
        kept: List = list(items)
        for stage in self.stages:
            kept = list(stage.apply(self.source, kept))
        if plan_span is not None:
            plan_span.set_attributes(items=len(items), kept=len(kept))
        if deadline is None:
            if workers == 1 or len(kept) <= 1:
                parts = [self.operator.run_shard(self.source, kept)]
            else:
                parts = self._run_sharded(kept, workers)
            return self.operator.merge(parts, self.source, items, kept)
        token = _ACTIVE_DEADLINE.set(deadline)
        try:
            deadline.check(0, len(kept))
            if workers == 1 or len(kept) <= 1:
                parts = self._run_serial_chunked(kept, deadline)
            else:
                parts = self._run_sharded(kept, workers)
                deadline.check(len(kept), len(kept))
            return self.operator.merge(parts, self.source, items, kept)
        finally:
            _ACTIVE_DEADLINE.reset(token)

    def _run_serial_chunked(self, kept: List, deadline: Deadline) -> List:
        """Serial execution in chunks with a deadline check between them.

        Every operator's ``merge`` already folds arbitrary contiguous
        shards in task order (the worker path depends on it), so chunked
        results are bit-identical to the one-shot call.
        """
        if len(kept) <= 1:
            return [self.operator.run_shard(self.source, kept)]
        parts: List = []
        for start in range(0, len(kept), _DEADLINE_CHUNK):
            deadline.check(start, len(kept))
            operator, shard_items = self.operator.shard(
                kept[start: start + _DEADLINE_CHUNK]
            )
            parts.append(operator.run_shard(self.source, shard_items))
        return parts

    def _run_sharded(self, kept: List, workers: int) -> List:
        from ..parallel.executor import ParallelExecutor, resolve_workers
        from ..parallel.worker import PlanShardTask, run_plan_shard

        workers = resolve_workers(workers)
        bounds = np.array_split(
            np.arange(len(kept)), min(workers, len(kept))
        )
        context = shard_trace_context()
        tasks = []
        for idx in bounds:
            if not idx.size:
                continue
            operator, shard_items = self.operator.shard(
                [kept[int(i)] for i in idx]
            )
            tasks.append(PlanShardTask(
                store_path=str(self.source.store.path),
                operator=operator,
                items=shard_items,
                trace=context,
                shard=len(tasks),
            ))
        with ParallelExecutor(workers) as executor:
            mapped = executor.map(run_plan_shard, tasks)
        if context is not None:
            merge_telemetry([telemetry for _, telemetry in mapped])
        return [result for result, _ in mapped]

    def __repr__(self) -> str:
        return f"ScanPlan({self.explain()})"
