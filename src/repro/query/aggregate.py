"""Aggregation pushdown: per-meter / per-day statistics from symbols.

These aggregates never decode symbols back to watts: symbol counts, peak
levels and duty cycles are computed from the packed index matrix or — for
RLE columns — straight from run values weighted by run lengths, the same
arrays the store keeps on disk.  Per-day variants reshape by the store's
``windows_per_day`` metadata, answering "which meters ran >= 6 hours at the
top level on day 3?" without rebuilding a :class:`FleetEncoder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import QueryError
from ..store.format import SymbolStore
from .index import QueryIndex, _shard_stats

__all__ = ["AggregateReport", "aggregate_store"]


@dataclass
class AggregateReport:
    """Per-column symbol statistics (optionally per day).

    ``duty_cycle`` is the fraction of windows at or above ``level``;
    ``mean_run_length`` is the pushdown-selectivity figure — how many
    windows one run covers on average.
    """

    ids: List
    level: int
    symbol_counts: np.ndarray          # (N, k)
    peak_level: np.ndarray             # (N,)
    duty_cycle: np.ndarray             # (N,)
    run_count: np.ndarray              # (N,)
    mean_run_length: np.ndarray        # (N,)
    daily_peak: Optional[np.ndarray] = None   # (N, days)
    daily_duty: Optional[np.ndarray] = None   # (N, days)

    def rows(self) -> List[Dict]:
        """Rows for :func:`repro.experiments.render_table`."""
        out = []
        for i, column_id in enumerate(self.ids):
            row = {
                "meter": column_id,
                "windows": int(self.symbol_counts[i].sum()),
                "runs": int(self.run_count[i]),
                "mean_run": float(self.mean_run_length[i]),
                "peak_level": int(self.peak_level[i]),
                f"duty>={self.level}": float(self.duty_cycle[i]),
            }
            if self.daily_peak is not None:
                row["max_daily_peak"] = int(self.daily_peak[i].max(initial=0))
            out.append(row)
        return out


def aggregate_store(
    store: SymbolStore,
    meters: Optional[Sequence] = None,
    level: Optional[int] = None,
    per_day: bool = False,
    index: Optional[QueryIndex] = None,
) -> AggregateReport:
    """Compute the pushdown aggregates for ``meters`` (default: all).

    A matching :class:`QueryIndex` supplies histograms and peaks without a
    payload pass; otherwise one shard scan computes them (runs-weighted for
    RLE columns, vectorized unpack for dense).  ``per_day`` requires the
    store's ``windows_per_day`` metadata and equal column lengths.
    """
    k = store.alphabet_size
    level = k // 2 if level is None else int(level)
    if not 0 <= level < k:
        raise QueryError(f"level must be in [0, {k}), got {level}")
    ids = list(store.ids) if meters is None else list(meters)
    columns = store._resolve_meters(meters)
    if index is not None:
        index.check_store(store)
        hist = index.histograms[columns]
        peaks = index.max_symbols[columns]
    elif meters is None:
        banded, _, _, peaks = _shard_stats(store, 0, store.n_meters, 1)
        hist = banded[:, 0, :]
    else:
        parts = [_shard_stats(store, c, c + 1, 1) for c in columns]
        hist = np.vstack([p[0][:, 0, :] for p in parts])
        peaks = np.concatenate([p[3] for p in parts])
    windows = hist.sum(axis=1)
    with np.errstate(invalid="ignore"):
        duty = np.where(windows > 0, hist[:, level:].sum(axis=1) / np.maximum(windows, 1), 0.0)
    if meters is None:
        run_count = store.run_count_per_column()
    elif store.layout == "rle":
        run_count = store.run_counts[columns]
    else:
        run_count = np.asarray(
            [store.runs(store.ids[c])[0].size for c in columns],
            dtype=np.int64,
        )
    mean_run = np.where(run_count > 0, windows / np.maximum(run_count, 1), 0.0)
    report = AggregateReport(
        ids=ids,
        level=level,
        symbol_counts=hist,
        peak_level=peaks,
        duty_cycle=duty,
        run_count=np.asarray(run_count, dtype=np.int64),
        mean_run_length=mean_run,
    )
    if per_day:
        per = store.metadata.get("windows_per_day")
        if not per:
            raise QueryError(
                f"{store.path.name} has no windows_per_day metadata; "
                "per-day aggregation needs it (write the store with "
                "sampling_interval set)"
            )
        matrix = store.matrix(meters=None if meters is None else ids)
        width = matrix.shape[1]
        days = width // int(per)
        if days == 0:
            raise QueryError(
                f"columns hold {width} windows, fewer than one "
                f"{per}-window day"
            )
        trimmed = matrix[:, : days * int(per)].reshape(len(columns), days, int(per))
        report.daily_peak = trimmed.max(axis=2)
        report.daily_duty = (trimmed >= level).mean(axis=2)
    return report
