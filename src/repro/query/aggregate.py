"""Aggregation pushdown: per-meter / per-day statistics from symbols.

These aggregates never decode symbols back to watts: symbol counts, peak
levels and duty cycles are computed from the packed index matrix or — for
RLE columns — straight from run values weighted by run lengths, the same
arrays the store keeps on disk.  Per-day variants reshape by the store's
``windows_per_day`` metadata, answering "which meters ran >= 6 hours at the
top level on day 3?" without rebuilding a :class:`FleetEncoder`.

Execution is a :class:`~repro.query.plan.ScanPlan` over an
:class:`~repro.query.ops.AggregateOperator`: ``workers > 1`` shards the
column axis through the unified plan driver, and because shards return
exact integers merged in task order the report is bit-identical for every
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import QueryError
from ..store.format import SymbolStore
from .index import QueryIndex

__all__ = ["AggregateReport", "aggregate_store"]


@dataclass
class AggregateReport:
    """Per-column symbol statistics (optionally per day).

    ``duty_cycle`` is the fraction of windows at or above ``level``;
    ``mean_run_length`` is the pushdown-selectivity figure — how many
    windows one run covers on average.
    """

    ids: List
    level: int
    symbol_counts: np.ndarray          # (N, k)
    peak_level: np.ndarray             # (N,)
    duty_cycle: np.ndarray             # (N,)
    run_count: np.ndarray              # (N,)
    mean_run_length: np.ndarray        # (N,)
    daily_peak: Optional[np.ndarray] = None   # (N, days)
    daily_duty: Optional[np.ndarray] = None   # (N, days)

    def rows(self) -> List[Dict]:
        """Rows for :func:`repro.experiments.render_table`."""
        out = []
        for i, column_id in enumerate(self.ids):
            row = {
                "meter": column_id,
                "windows": int(self.symbol_counts[i].sum()),
                "runs": int(self.run_count[i]),
                "mean_run": float(self.mean_run_length[i]),
                "peak_level": int(self.peak_level[i]),
                f"duty>={self.level}": float(self.duty_cycle[i]),
            }
            if self.daily_peak is not None:
                row["max_daily_peak"] = int(self.daily_peak[i].max(initial=0))
            out.append(row)
        return out


def aggregate_store(
    store: SymbolStore,
    meters: Optional[Sequence] = None,
    level: Optional[int] = None,
    per_day: bool = False,
    index: Optional[QueryIndex] = None,
    workers: int = 1,
    source=None,
    deadline=None,
) -> AggregateReport:
    """Compute the pushdown aggregates for ``meters`` (default: all).

    A matching :class:`QueryIndex` supplies histograms and peaks without a
    payload pass; otherwise one shard scan computes them (runs-weighted for
    RLE columns, vectorized unpack for dense).  ``per_day`` requires the
    store's ``windows_per_day`` metadata and equal column lengths.

    ``source`` (a :class:`~repro.query.ops.ColumnSource`) lets a caller —
    the :class:`QueryEngine` — reuse one source across calls so fleet
    statistics are decoded at most once per open store.
    """
    from .ops import AggregateOperator, ColumnSource
    from .plan import ScanPlan

    k = store.alphabet_size
    level = k // 2 if level is None else int(level)
    if not 0 <= level < k:
        raise QueryError(f"level must be in [0, {k}), got {level}")
    ids = list(store.ids) if meters is None else list(meters)
    columns = store._resolve_meters(meters)
    if source is None:
        source = ColumnSource(store, index=index)
    if index is None:
        index = source.index
    if index is not None:
        index.check_store(store)
    plan = ScanPlan(
        source, AggregateOperator(level=level, index=index), items=columns
    )
    report = plan.run(workers=workers, deadline=deadline)
    report.ids = ids
    if per_day:
        per = store.metadata.get("windows_per_day")
        if not per:
            raise QueryError(
                f"{store.path.name} has no windows_per_day metadata; "
                "per-day aggregation needs it (write the store with "
                "sampling_interval set)"
            )
        matrix = source.matrix(meters=None if meters is None else ids)
        width = matrix.shape[1]
        days = width // int(per)
        if days == 0:
            raise QueryError(
                f"columns hold {width} windows, fewer than one "
                f"{per}-window day"
            )
        trimmed = matrix[:, : days * int(per)].reshape(len(columns), days, int(per))
        report.daily_peak = trimmed.max(axis=2)
        report.daily_duty = (trimmed >= level).mean(axis=2)
    return report
