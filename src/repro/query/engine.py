"""The query engine: exact kNN with lower-bound pruning over ``.rsym`` stores.

:class:`QueryEngine` treats a store as a servable database of symbol columns
(meters of a fleet store, (house, day) rows of a day-vector store).  Its
kNN search is *exact* — results are bit-identical to brute force, pinned by
``tests/query/test_knn.py`` — but it touches as few payload bytes as it can:

1. **Index tier** — the :class:`~repro.query.index.QueryIndex` histograms
   give a position-free lower bound on every candidate's distance with one
   matrix product per query batch (``minpos @ hist.T``): each window with
   symbol ``s`` contributes at least ``min_t bound(q_t, s)^2``.  No payload
   bytes are read.
2. **Refine tier** — candidates are visited in lower-bound order in small
   chunks; each chunk's columns are lazily unpacked and their exact
   distances (query vs. decoded reconstruction values) computed with one
   gather.  The scan stops when the best unseen lower bound exceeds the
   current k-th distance — with a one-sided ``1 + 1e-9`` safety margin so
   float rounding in the bound can only cause extra refinement, never a
   missed neighbour.

Distances are Euclidean between the raw query vector and each column's
*reconstruction* (what ``SymbolStore.decode`` returns) — the only real-valued
ground truth a symbolised fleet has.  Stores carrying genuinely different
per-meter tables are refused with :class:`~repro.errors.QueryError`: symbol
``3`` of meter A and symbol ``3`` of meter B then denote different watt
ranges, and any single-table distance would be nonsense.  Stores whose
per-column/by-label tables are all *equal* (e.g. day-vector stores written
with ``global_table=True``) are transparently re-normalised to that one
shared table.

Every query kind — kNN, pattern match, aggregation, and the monitoring
workloads (:meth:`QueryEngine.anomaly`, :meth:`QueryEngine.drift`,
:meth:`QueryEngine.private_aggregate`) — executes as a
:class:`~repro.query.plan.ScanPlan` over the engine's cached
:class:`~repro.query.ops.ColumnSource`; ``workers > 1`` shards through the
plan driver's :class:`~repro.parallel.ParallelExecutor` loop (task-ordered
merge), and results are bit-identical for every worker count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, NamedTuple, Optional, Sequence, Set, Union

import numpy as np

from ..errors import QueryError
from ..obs import registry as _obs_registry, tracer as _obs_tracer
from ..store.format import SymbolStore
from .aggregate import AggregateReport, aggregate_store
from .index import QueryIndex, build_query_index, query_index_path
from .ops import (
    AnomalyOperator,
    AnomalyReport,
    ColumnSource,
    DriftOperator,
    DriftReport,
    GroupAggregateOperator,
    KNNOperator,
    MatchOperator,
    PrivateAggregateReport,
    SymbolCountPrune,
    resolve_shared_table,
)
from .patterns import PatternMatches, SymbolPattern
from .plan import Deadline, ScanPlan

__all__ = [
    "QueryConfig",
    "KNNStats",
    "KNNResult",
    "QueryEngine",
    "resolve_shared_table",
]

#: Sidecar paths whose stale-index degrade warning already fired: the
#: warning is actionable once per store (rebuild the index), not once per
#: ``QueryEngine.open`` — a monitoring loop reopening a growing store every
#: few minutes should not drown the log.
_STALE_INDEX_WARNED: Set[str] = set()

#: Serialises mutation of :data:`_STALE_INDEX_WARNED`: a threaded server
#: reopens stores concurrently, and an unsynchronized check-then-add could
#: emit the warning twice (harmless) or corrupt the set (not).
_STALE_INDEX_LOCK = threading.Lock()


@dataclass(frozen=True)
class QueryConfig:
    """Tunables of one kNN workload (the query analogue of DayVectorConfig).

    ``refine_chunk`` is the number of candidates unpacked per refine round —
    small enough that the k-th-distance cutoff engages early, large enough
    that each round is one vectorized gather.
    """

    k: int = 5
    use_index: bool = True
    refine_chunk: int = 16
    workers: int = 1

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if int(self.refine_chunk) < 1:
            raise QueryError(
                f"refine_chunk must be >= 1, got {self.refine_chunk}"
            )
        if int(self.workers) < 0:
            raise QueryError(
                f"workers must be >= 0 (0 = one per CPU), got {self.workers}"
            )

    def label(self) -> str:
        """Readable label such as ``"knn k=5 indexed w2"``."""
        mode = "indexed" if self.use_index else "scan"
        return f"knn k={self.k} {mode} w{self.workers}"


@dataclass
class KNNStats:
    """Work accounting for one kNN batch (the pruning-ratio evidence)."""

    n_queries: int
    n_candidates: int
    refined: int
    index_used: bool

    @property
    def refined_per_query(self) -> float:
        """Mean candidates exact-refined (columns decoded) per query."""
        return self.refined / self.n_queries if self.n_queries else 0.0

    @property
    def decoded_fraction(self) -> float:
        """Fraction of candidate columns decoded per query (1.0 = brute force)."""
        total = self.n_queries * self.n_candidates
        return self.refined / total if total else 0.0

    @property
    def pruned_fraction(self) -> float:
        return 1.0 - self.decoded_fraction


class KNNResult(NamedTuple):
    """``ids[q][j]`` / ``distances[q, j]`` are query ``q``'s j-th neighbour."""

    positions: np.ndarray      # (Q, k) column positions in the store
    ids: List[List]            # (Q, k) store column ids
    distances: np.ndarray      # (Q, k) Euclidean distances, ascending
    stats: KNNStats


class QueryEngine:
    """Similarity search, pattern matching and aggregation over one store."""

    def __init__(
        self,
        store: SymbolStore,
        index: Optional[QueryIndex] = None,
    ) -> None:
        self.store = store
        if index is not None:
            index.check_store(store)
        self._index = index
        self._source: Optional[ColumnSource] = None
        # Guards the lazy _source/_index fills: server threads share one
        # engine, and two first-queries racing the in-memory index build
        # would each pay it (and publish half-initialised state).
        self._lock = threading.RLock()

    @classmethod
    def open(
        cls, path: Union[str, Path], mmap: bool = True
    ) -> "QueryEngine":
        """Open a store and its ``.rsymx`` sidecar when one is present.

        ``path`` may be a single ``.rsym`` file or a segmented-store
        directory (:func:`~repro.store.segments.open_store` dispatches); a
        segmented store keeps its sidecar inside the directory.  A sidecar
        whose fingerprint no longer matches — a segment was appended or
        quarantined since it was built — is dropped with a warning (emitted
        once per sidecar path per process) instead of failing the open, and
        queries rebuild in memory.
        """
        from ..store.segments import SegmentedStore, open_store

        store = open_store(path, mmap=mmap)
        sidecar = query_index_path(store.path)
        index = QueryIndex.open(sidecar) if sidecar.exists() else None
        if index is not None:
            try:
                index.check_store(store)
            except QueryError as exc:
                if not isinstance(store, SegmentedStore):
                    raise
                key = str(sidecar.resolve())
                # The warning dedups; the counter never does — a degraded
                # store stays visible on /metrics long after the first open.
                _obs_registry().counter(
                    "store.stale_index_total",
                    "Opens that dropped a stale .rsymx sidecar",
                ).inc()
                with _STALE_INDEX_LOCK:
                    first = key not in _STALE_INDEX_WARNED
                    _STALE_INDEX_WARNED.add(key)
                if first:
                    import warnings

                    from ..errors import StoreIntegrityWarning

                    warnings.warn(
                        StoreIntegrityWarning(
                            f"ignoring stale query index {sidecar.name}: {exc} — "
                            f"rebuild it with write_query_index after appending",
                            path=sidecar, kind="segment", reason="stale-index",
                        )
                    )
                index = None
        return cls(store, index=index)

    @property
    def table(self):
        """The shared lookup table (resolved once, refusal cached)."""
        return self.source.table

    @property
    def source(self) -> ColumnSource:
        """The engine's cached :class:`ColumnSource` (one per open store).

        Fleet-level statistics computed through it — histograms, peaks, run
        counts — are cached on the source, so repeated aggregates on an open
        engine never re-decode columns.
        """
        with self._lock:
            if self._source is None:
                self._source = ColumnSource(self.store, index=self._index)
            elif self._source.index is None and self._index is not None:
                self._source.index = self._index
            return self._source

    def index(self, build: bool = True) -> Optional[QueryIndex]:
        """The query index: the sidecar's, or one built in memory."""
        with self._lock:
            if self._index is None and build:
                self._index = build_query_index(self.store)
            return self._index

    # -- kNN ---------------------------------------------------------------------

    def knn(
        self,
        queries: np.ndarray,
        config: QueryConfig = QueryConfig(),
        exclude_ids: Sequence = (),
        deadline: Optional[Deadline] = None,
    ) -> KNNResult:
        """Exact k-nearest-columns for a batch of raw-valued query vectors.

        ``queries`` is ``(Q, T)`` (or one ``(T,)`` vector) of real values at
        the store's window resolution.  Neighbours are ordered by
        ``(distance, column position)``, so ties break deterministically and
        the result is identical to :meth:`brute_force_knn` for every
        ``workers``/pruning configuration.  ``deadline`` (if given) bounds
        the search cooperatively — expiry raises
        :class:`~repro.errors.DeadlineExceeded` with partial-work accounting
        instead of running to completion.
        """
        source = self.source
        source.table  # resolve (and cache) the shared-table refusal early
        queries = self._check_queries(queries)
        exclude = self._exclude_positions(exclude_ids)
        index = None
        if config.use_index:
            index = self.index(build=True)
            index.check_store(self.store)
        n_candidates = self.store.n_meters - exclude.size
        plan = ScanPlan(source, KNNOperator(
            queries=queries,
            k=config.k,
            refine_chunk=config.refine_chunk,
            index=index,
            exclude=exclude,
        ))
        with _obs_tracer().span(
            "engine.knn", k=config.k, queries=queries.shape[0],
            index_used=index is not None,
        ) as knn_span:
            positions, distances, refined = plan.run(
                workers=config.workers, deadline=deadline
            )
            ids = [[self.store.ids[p] for p in row] for row in positions]
            stats = KNNStats(
                n_queries=queries.shape[0],
                n_candidates=n_candidates,
                refined=refined,
                index_used=index is not None,
            )
            # One source of truth: CLI --stats, span attributes and the
            # /metrics counters all carry these exact KNNStats numbers.
            knn_span.set_attributes(
                candidates=stats.n_candidates,
                refined=stats.refined,
                pruned_fraction=round(stats.pruned_fraction, 6),
            )
        metrics = _obs_registry()
        if metrics.enabled:
            bounded = stats.n_queries * stats.n_candidates
            metrics.counter(
                "query.knn_queries_total", "kNN query vectors answered",
            ).inc(stats.n_queries)
            metrics.counter(
                "query.candidates_bounded_total",
                "Candidate columns lower-bounded across kNN queries",
            ).inc(bounded)
            metrics.counter(
                "query.candidates_refined_total",
                "Candidate columns exact-refined (decoded) across kNN queries",
            ).inc(stats.refined)
            metrics.counter(
                "query.candidates_pruned_total",
                "Candidate columns pruned by the lower bound",
            ).inc(bounded - stats.refined)
        return KNNResult(positions, ids, distances, stats)

    def brute_force_knn(
        self,
        queries: np.ndarray,
        k: int = 5,
        exclude_ids: Sequence = (),
    ) -> KNNResult:
        """Reference exact search: decode every candidate, no pruning."""
        result = self.knn(
            queries,
            QueryConfig(
                k=k, use_index=False,
                refine_chunk=max(1, self.store.n_meters),
            ),
            exclude_ids=exclude_ids,
        )
        return result

    def _check_queries(self, queries) -> np.ndarray:
        arr = np.asarray(queries, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise QueryError(
                f"queries must be (Q, windows) or (windows,), got {arr.shape}"
            )
        counts = self.store.counts
        if counts.size and arr.shape[1] != int(counts[0]):
            raise QueryError(
                f"query length {arr.shape[1]} != column length {int(counts[0])}"
            )
        if np.any(np.isnan(arr)):
            raise QueryError("queries must not contain NaN")
        return arr

    def _exclude_positions(self, exclude_ids: Sequence) -> np.ndarray:
        return np.unique(
            np.asarray(
                [self.store._column(i) for i in exclude_ids], dtype=np.int64
            )
        )

    # -- symbolic lower bounds ----------------------------------------------------

    def mindist_columns(self, id_a, id_b) -> float:
        """Symbol-level MINDIST between two stored columns.

        A lower bound on the Euclidean distance between their decoded
        reconstructions — computable from packed symbols and the shared
        table's breakpoints alone (the property
        ``mindist <= exact`` is pinned in ``tests/query/``).
        """
        from .distance import mindist

        return float(mindist(
            self.store.indices(id_a), self.store.indices(id_b),
            self.table,
        ))

    # -- pattern matching ---------------------------------------------------------

    def match(
        self,
        pattern: Union[str, SymbolPattern],
        meters: Optional[Sequence] = None,
        workers: int = 1,
        use_index: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> PatternMatches:
        """Match a symbol pattern against columns at run granularity.

        The histogram pruning stage (when an index is available) skips
        columns that lack the pattern's symbols before touching payload
        bytes; matching itself runs on RLE run arrays without expansion.
        """
        if isinstance(pattern, str):
            pattern = SymbolPattern.parse(pattern, self.store.alphabet_size)
        needed = pattern.min_symbol_counts(self.store.alphabet_size)
        columns = self.store._resolve_meters(meters)
        stages = []
        if use_index and self._index is not None:
            self._index.check_store(self.store)
            stages.append(SymbolCountPrune(needed=needed, index=self._index))
        plan = ScanPlan(
            self.source,
            MatchOperator(
                tokens=pattern.tokens,
                label=pattern.text or repr(pattern),
            ),
            items=columns,
            stages=stages,
        )
        return plan.run(workers=workers, deadline=deadline)

    # -- aggregation --------------------------------------------------------------

    def aggregate(
        self,
        meters: Optional[Sequence] = None,
        level: Optional[int] = None,
        per_day: bool = False,
        workers: int = 1,
        deadline: Optional[Deadline] = None,
    ) -> AggregateReport:
        """Aggregation pushdown (see :func:`repro.query.aggregate_store`).

        Routed through the engine's cached :attr:`source`, so repeated
        aggregates on an open engine skip re-decoding.
        """
        return aggregate_store(
            self.store, meters=meters, level=level, per_day=per_day,
            index=self._index, workers=workers, source=self.source,
            deadline=deadline,
        )

    # -- monitoring ---------------------------------------------------------------

    def anomaly(
        self,
        meters: Optional[Sequence] = None,
        workers: int = 1,
        deadline: Optional[Deadline] = None,
    ) -> AnomalyReport:
        """Per-meter anomaly scores from symbol-transition likelihoods.

        Transition counts are read off the RLE runs (no window expansion);
        each meter is scored against the pooled fleet transition model.
        """
        columns = self.store._resolve_meters(meters)
        plan = ScanPlan(self.source, AnomalyOperator(), items=columns)
        return plan.run(workers=workers, deadline=deadline)

    def drift(
        self,
        baseline: Optional[Union[str, Path, QueryIndex]] = None,
        meters: Optional[Sequence] = None,
        deadline: Optional[Deadline] = None,
    ) -> DriftReport:
        """Fleet drift report off ``.rsymx`` histograms — no column decode.

        ``baseline`` is a previous snapshot to diff against: a
        :class:`QueryIndex`, or a path to a ``.rsymx`` sidecar (or to the
        store it sits next to).  Without one, each meter is compared to the
        current fleet-mean distribution.
        """
        baseline_hist = None
        if baseline is not None:
            if not isinstance(baseline, QueryIndex):
                base_path = Path(baseline)
                if base_path.suffix != ".rsymx" or base_path.is_dir():
                    base_path = query_index_path(base_path)
                baseline = QueryIndex.open(base_path)
            baseline_hist = baseline.histograms
        index = self.index(build=True)
        columns = self.store._resolve_meters(meters)
        plan = ScanPlan(
            self.source,
            DriftOperator(index=index, baseline_histograms=baseline_hist),
            items=columns,
        )
        return plan.run(workers=1, deadline=deadline)

    def private_aggregate(
        self,
        meters: Optional[Sequence] = None,
        level: Optional[int] = None,
        k_anon: int = 5,
        epsilon: Optional[float] = None,
        seed: int = 0,
        workers: int = 1,
        deadline: Optional[Deadline] = None,
    ) -> PrivateAggregateReport:
        """k-anonymous (optionally Laplace-noised) pooled group aggregate.

        Refuses groups smaller than ``k_anon`` meters; released symbol
        counts have cells below ``k_anon`` suppressed, then noise at scale
        ``1/epsilon`` added when ``epsilon`` is set (seeded, deterministic).
        """
        k = self.store.alphabet_size
        level = k // 2 if level is None else int(level)
        if not 0 <= level < k:
            raise QueryError(f"level must be in [0, {k}), got {level}")
        if int(k_anon) < 1:
            raise QueryError(f"k_anon must be >= 1, got {k_anon}")
        columns = self.store._resolve_meters(meters)
        index = self._index
        n_bands = index.n_bands if index is not None else None
        plan = ScanPlan(
            self.source,
            GroupAggregateOperator(
                level=level, k_anon=int(k_anon), epsilon=epsilon,
                seed=int(seed), index=index,
                **({"n_bands": n_bands} if n_bands else {}),
            ),
            items=columns,
        )
        return plan.run(workers=workers, deadline=deadline)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        indexed = "indexed" if self._index is not None else "no index"
        return (
            f"QueryEngine({self.store.path.name!r}, "
            f"columns={self.store.n_meters}, {indexed})"
        )
