"""The query engine: exact kNN with lower-bound pruning over ``.rsym`` stores.

:class:`QueryEngine` treats a store as a servable database of symbol columns
(meters of a fleet store, (house, day) rows of a day-vector store).  Its
kNN search is *exact* — results are bit-identical to brute force, pinned by
``tests/query/test_knn.py`` — but it touches as few payload bytes as it can:

1. **Index tier** — the :class:`~repro.query.index.QueryIndex` histograms
   give a position-free lower bound on every candidate's distance with one
   matrix product per query batch (``minpos @ hist.T``): each window with
   symbol ``s`` contributes at least ``min_t bound(q_t, s)^2``.  No payload
   bytes are read.
2. **Refine tier** — candidates are visited in lower-bound order in small
   chunks; each chunk's columns are lazily unpacked and their exact
   distances (query vs. decoded reconstruction values) computed with one
   gather.  The scan stops when the best unseen lower bound exceeds the
   current k-th distance — with a one-sided ``1 + 1e-9`` safety margin so
   float rounding in the bound can only cause extra refinement, never a
   missed neighbour.

Distances are Euclidean between the raw query vector and each column's
*reconstruction* (what ``SymbolStore.decode`` returns) — the only real-valued
ground truth a symbolised fleet has.  Stores carrying genuinely different
per-meter tables are refused with :class:`~repro.errors.QueryError`: symbol
``3`` of meter A and symbol ``3`` of meter B then denote different watt
ranges, and any single-table distance would be nonsense.  Stores whose
per-column/by-label tables are all *equal* (e.g. day-vector stores written
with ``global_table=True``) are transparently re-normalised to that one
shared table.

``workers > 1`` shards the query axis through
:class:`~repro.parallel.ParallelExecutor` (task-ordered merge); per-query
work is independent, so results are bit-identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Union

import numpy as np

from ..core.lookup import LookupTable
from ..errors import QueryError
from ..store.format import SymbolStore
from .aggregate import AggregateReport, aggregate_store
from .distance import banded_min_cells, histogram_bound
from .index import QueryIndex, build_query_index, query_index_path
from .patterns import PatternMatches, SymbolPattern, match_runs

__all__ = [
    "QueryConfig",
    "KNNStats",
    "KNNResult",
    "QueryEngine",
    "resolve_shared_table",
]

#: One-sided slack on the pruning bound: float rounding in the histogram
#: matrix product may lift a lower bound a few ulps above the true distance
#: on exact ties; the margin turns that into (at most) extra refinement.
_PRUNE_SLACK = 1e-9

#: Queries bounded per matmul: cells are ``(block, T, k)`` float64, so 64
#: queries of a week-long 16-symbol column stay ~5 MB while one
#: :func:`histogram_bound` product covers the whole block.
_QUERY_BLOCK = 64

#: Cap on elements per refinement gather (~8 MB of intp indices): one
#: refine round scores ``active * chunk * T`` cells, which brute force
#: (chunk = all candidates) would otherwise let grow with the fleet.
_GATHER_ELEMENTS = 1 << 20


@dataclass(frozen=True)
class QueryConfig:
    """Tunables of one kNN workload (the query analogue of DayVectorConfig).

    ``refine_chunk`` is the number of candidates unpacked per refine round —
    small enough that the k-th-distance cutoff engages early, large enough
    that each round is one vectorized gather.
    """

    k: int = 5
    use_index: bool = True
    refine_chunk: int = 16
    workers: int = 1

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if int(self.refine_chunk) < 1:
            raise QueryError(
                f"refine_chunk must be >= 1, got {self.refine_chunk}"
            )
        if int(self.workers) < 0:
            raise QueryError(
                f"workers must be >= 0 (0 = one per CPU), got {self.workers}"
            )

    def label(self) -> str:
        """Readable label such as ``"knn k=5 indexed w2"``."""
        mode = "indexed" if self.use_index else "scan"
        return f"knn k={self.k} {mode} w{self.workers}"


@dataclass
class KNNStats:
    """Work accounting for one kNN batch (the pruning-ratio evidence)."""

    n_queries: int
    n_candidates: int
    refined: int
    index_used: bool

    @property
    def refined_per_query(self) -> float:
        """Mean candidates exact-refined (columns decoded) per query."""
        return self.refined / self.n_queries if self.n_queries else 0.0

    @property
    def decoded_fraction(self) -> float:
        """Fraction of candidate columns decoded per query (1.0 = brute force)."""
        total = self.n_queries * self.n_candidates
        return self.refined / total if total else 0.0

    @property
    def pruned_fraction(self) -> float:
        return 1.0 - self.decoded_fraction


class KNNResult(NamedTuple):
    """``ids[q][j]`` / ``distances[q, j]`` are query ``q``'s j-th neighbour."""

    positions: np.ndarray      # (Q, k) column positions in the store
    ids: List[List]            # (Q, k) store column ids
    distances: np.ndarray      # (Q, k) Euclidean distances, ascending
    stats: KNNStats


def resolve_shared_table(store: SymbolStore) -> LookupTable:
    """The one table all of ``store``'s columns share, or a loud refusal.

    Per-column and by-label table sets collapse to a single table when all
    entries are equal (the re-normalisation path); genuinely distinct tables
    raise :class:`QueryError` because cross-column symbol distances would be
    meaningless.
    """
    tables = store.tables
    if tables is None:
        raise QueryError(
            f"{store.path.name} carries no lookup tables; distance queries "
            "need the serialized table to derive breakpoints"
        )
    if isinstance(tables, LookupTable):
        return tables
    pool = list(tables.values()) if isinstance(tables, dict) else list(tables)
    if not pool:
        raise QueryError(f"{store.path.name} has an empty table payload")
    head = pool[0]
    if all(table == head for table in pool[1:]):
        return head
    raise QueryError(
        f"{store.path.name} carries {len(pool)} distinct per-meter lookup "
        "tables: the same symbol index maps to different watt ranges on "
        "different columns, so cross-column distances would be nonsense. "
        "Re-encode the fleet with a shared table "
        "(write_fleet_store(..., shared_table=True) or encode --all "
        "--global-table) to make it searchable."
    )


def _knn_block(
    store: SymbolStore,
    table: LookupTable,
    index: "Optional[QueryIndex]",
    queries: np.ndarray,
    k: int,
    refine_chunk: int,
    exclude: np.ndarray,
) -> tuple:
    """Serial kNN for one block of queries; the unit workers execute.

    Returns ``(positions, distances, refined)`` with ``positions`` of shape
    ``(len(queries), kk)`` where ``kk = min(k, candidates)``.

    Queries are processed ``_QUERY_BLOCK`` at a time: the squared cells of
    the whole sub-block are built with one broadcast, their lower bounds
    with one :func:`banded_min_cells` + :func:`histogram_bound` matmul, and
    each refine round decodes its chunk's missing columns with a single
    ``store.matrix`` call.  Neighbours and distances are bit-identical for
    every block split — the bound's last-ulp rounding can only move work
    between the pruned and refined sets, never change an exact distance.
    """
    counts = store.counts
    if counts.size == 0:
        raise QueryError(f"{store.path.name} is empty")
    if np.any(counts != counts[0]):
        raise QueryError(
            "kNN needs equal-length columns; this store's columns hold "
            "different symbol counts"
        )
    T = int(counts[0])
    if T == 0:
        raise QueryError("cannot search zero-length columns")
    recon = table.reconstruction_array
    candidates = np.setdiff1d(
        np.arange(store.n_meters, dtype=np.int64), exclude
    )
    if candidates.size == 0:
        raise QueryError("every column was excluded; nothing to search")
    kk = min(int(k), candidates.size)
    refine_chunk = max(1, int(refine_chunk))
    positions = np.empty((queries.shape[0], kk), dtype=np.int64)
    distances = np.empty((queries.shape[0], kk), dtype=np.float64)
    refined_total = 0
    C = candidates.size
    # Decoded candidate rows, by candidate rank, shared by every query of
    # the batch.  ``np.empty`` commits pages lazily, so untouched (pruned)
    # rows cost no physical memory; ``intp`` rows gather without a per-round
    # cast of the store's narrowed decode dtype.
    decoded = np.empty((C, T), dtype=np.intp)
    have = np.zeros(C, dtype=bool)
    t_base = np.arange(T, dtype=np.intp) * recon.size

    def decoded_rows(ranks: np.ndarray) -> np.ndarray:
        """``(len(ranks), T)`` symbol rows; missing columns in one read."""
        missing = np.unique(ranks[~have[ranks]])
        if missing.size:
            decoded[missing] = store.matrix(
                meters=[store.ids[int(candidates[m])] for m in missing]
            )
            have[missing] = True
        return decoded[ranks]

    if index is not None:
        bands = index.bands_for(T)
        banded = (
            index.float_histograms if candidates.size == index.n_meters
            else index.band_histograms[candidates]
        )
    for b0 in range(0, queries.shape[0], _QUERY_BLOCK):
        block = queries[b0: b0 + _QUERY_BLOCK]
        n_block = block.shape[0]
        # Shared query-reconstruction precompute: every query's (T, k)
        # squared cells in one broadcast, bounds for the whole sub-block
        # against every candidate in one matmul.
        block_cells = (block[:, :, None] - recon[None, None, :]) ** 2
        if index is not None:
            lb_block = histogram_bound(
                banded_min_cells(block_cells, bands, index.n_bands), banded
            )
        else:
            lb_block = np.zeros((n_block, C))
        order = np.argsort(lb_block, axis=1, kind="stable")
        lb_sorted = np.take_along_axis(lb_block, order, axis=1)
        # Refine rounds run for all still-active queries at once.  Every
        # active query has refined exactly ``at`` candidates (its first
        # ``at`` in lower-bound order), so one decode + one flat gather +
        # one batched partition advance the whole sub-block a round.
        d2_sorted = np.empty((n_block, C), dtype=np.float64)
        kth2 = np.full(n_block, np.inf)
        n_refined = np.zeros(n_block, dtype=np.int64)
        active = np.arange(n_block)
        at = 0
        while active.size and at < C:
            if at >= kk:
                still = lb_sorted[active, at] <= kth2[active] * (1.0 + _PRUNE_SLACK)
                active = active[still]
                if not active.size:
                    break
            hi = min(at + refine_chunk, C)
            ranks = order[active, at:hi]                      # (A, chunk)
            # One flat gather scores every (query, candidate) of the round:
            # cells[q, t, s] lives at offset q*T*k + t*k + s, and the
            # per-(candidate, T) pairwise sum matches the serial form bit
            # for bit.  Large rounds (brute force refines every candidate
            # at once) run in query segments so the gather temporaries stay
            # a few MB instead of scaling with queries * candidates.
            d2 = np.empty(ranks.shape, dtype=np.float64)
            segment = max(1, _GATHER_ELEMENTS // max(1, ranks.shape[1] * T))
            for s0 in range(0, active.size, segment):
                sub = active[s0: s0 + segment]
                sub_ranks = ranks[s0: s0 + segment]
                matrix = decoded_rows(sub_ranks.ravel())
                flat = (
                    sub[:, None, None] * (T * recon.size)
                    + t_base[None, None, :]
                    + matrix.reshape(sub_ranks.shape + (T,))
                )
                d2[s0: s0 + segment] = block_cells.take(
                    flat.ravel()
                ).reshape(flat.shape).sum(axis=2)
            d2_sorted[active, at:hi] = d2
            n_refined[active] = hi
            if hi >= kk:
                kth2[active] = np.partition(
                    d2_sorted[active, :hi], kk - 1, axis=1
                )[:, kk - 1]
            at = hi
        refined_total += int(n_refined.sum())
        for bi in range(n_block):
            n = int(n_refined[bi])
            refined_cols = candidates[order[bi, :n]]
            refined_d2 = d2_sorted[bi, :n]
            best = np.lexsort((refined_cols, refined_d2))[:kk]
            positions[b0 + bi] = refined_cols[best]
            distances[b0 + bi] = np.sqrt(refined_d2[best])
    return positions, distances, refined_total


class QueryEngine:
    """Similarity search, pattern matching and aggregation over one store."""

    def __init__(
        self,
        store: SymbolStore,
        index: Optional[QueryIndex] = None,
    ) -> None:
        self.store = store
        if index is not None:
            index.check_store(store)
        self._index = index
        self._table: Optional[LookupTable] = None

    @classmethod
    def open(
        cls, path: Union[str, Path], mmap: bool = True
    ) -> "QueryEngine":
        """Open a store and its ``.rsymx`` sidecar when one is present.

        ``path`` may be a single ``.rsym`` file or a segmented-store
        directory (:func:`~repro.store.segments.open_store` dispatches); a
        segmented store keeps its sidecar inside the directory.  A sidecar
        whose fingerprint no longer matches — a segment was appended or
        quarantined since it was built — is dropped with a warning instead
        of failing the open, and queries rebuild in memory.
        """
        from ..store.segments import SegmentedStore, open_store

        store = open_store(path, mmap=mmap)
        sidecar = query_index_path(store.path)
        index = QueryIndex.open(sidecar) if sidecar.exists() else None
        if index is not None:
            try:
                index.check_store(store)
            except QueryError as exc:
                if not isinstance(store, SegmentedStore):
                    raise
                import warnings

                from ..errors import StoreIntegrityWarning

                warnings.warn(
                    StoreIntegrityWarning(
                        f"ignoring stale query index {sidecar.name}: {exc} — "
                        f"rebuild it with write_query_index after appending",
                        path=sidecar, kind="segment", reason="stale-index",
                    )
                )
                index = None
        return cls(store, index=index)

    @property
    def table(self) -> LookupTable:
        """The shared lookup table (resolved once, refusal cached)."""
        if self._table is None:
            self._table = resolve_shared_table(self.store)
        return self._table

    def index(self, build: bool = True) -> Optional[QueryIndex]:
        """The query index: the sidecar's, or one built in memory."""
        if self._index is None and build:
            self._index = build_query_index(self.store)
        return self._index

    # -- kNN ---------------------------------------------------------------------

    def knn(
        self,
        queries: np.ndarray,
        config: QueryConfig = QueryConfig(),
        exclude_ids: Sequence = (),
    ) -> KNNResult:
        """Exact k-nearest-columns for a batch of raw-valued query vectors.

        ``queries`` is ``(Q, T)`` (or one ``(T,)`` vector) of real values at
        the store's window resolution.  Neighbours are ordered by
        ``(distance, column position)``, so ties break deterministically and
        the result is identical to :meth:`brute_force_knn` for every
        ``workers``/pruning configuration.
        """
        table = self.table
        queries = self._check_queries(queries)
        exclude = self._exclude_positions(exclude_ids)
        index = None
        if config.use_index:
            index = self.index(build=True)
            index.check_store(self.store)
        n_candidates = self.store.n_meters - exclude.size
        if config.workers == 1 or queries.shape[0] <= 1:
            positions, distances, refined = _knn_block(
                self.store, table, index, queries,
                config.k, config.refine_chunk, exclude,
            )
        else:
            positions, distances, refined = self._knn_sharded(
                queries, config, index, exclude
            )
        ids = [[self.store.ids[p] for p in row] for row in positions]
        stats = KNNStats(
            n_queries=queries.shape[0],
            n_candidates=n_candidates,
            refined=refined,
            index_used=index is not None,
        )
        return KNNResult(positions, ids, distances, stats)

    def brute_force_knn(
        self,
        queries: np.ndarray,
        k: int = 5,
        exclude_ids: Sequence = (),
    ) -> KNNResult:
        """Reference exact search: decode every candidate, no pruning."""
        result = self.knn(
            queries,
            QueryConfig(
                k=k, use_index=False,
                refine_chunk=max(1, self.store.n_meters),
            ),
            exclude_ids=exclude_ids,
        )
        return result

    def _knn_sharded(self, queries, config: QueryConfig, index, exclude):
        from ..parallel.executor import ParallelExecutor, resolve_workers
        from ..parallel.worker import KNNShardTask, run_knn_shard

        workers = resolve_workers(config.workers)
        bounds = np.array_split(
            np.arange(queries.shape[0]), min(workers, queries.shape[0])
        )
        tasks = [
            KNNShardTask(
                store_path=str(self.store.path),
                queries=queries[idx[0]: idx[-1] + 1],
                k=config.k,
                refine_chunk=config.refine_chunk,
                index=index,
                exclude=exclude,
            )
            for idx in bounds if idx.size
        ]
        with ParallelExecutor(workers) as executor:
            outcomes = executor.map(run_knn_shard, tasks)
        positions = np.vstack([o[0] for o in outcomes])
        distances = np.vstack([o[1] for o in outcomes])
        refined = sum(o[2] for o in outcomes)
        return positions, distances, refined

    def _check_queries(self, queries) -> np.ndarray:
        arr = np.asarray(queries, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise QueryError(
                f"queries must be (Q, windows) or (windows,), got {arr.shape}"
            )
        counts = self.store.counts
        if counts.size and arr.shape[1] != int(counts[0]):
            raise QueryError(
                f"query length {arr.shape[1]} != column length {int(counts[0])}"
            )
        if np.any(np.isnan(arr)):
            raise QueryError("queries must not contain NaN")
        return arr

    def _exclude_positions(self, exclude_ids: Sequence) -> np.ndarray:
        return np.unique(
            np.asarray(
                [self.store._column(i) for i in exclude_ids], dtype=np.int64
            )
        )

    # -- symbolic lower bounds ----------------------------------------------------

    def mindist_columns(self, id_a, id_b) -> float:
        """Symbol-level MINDIST between two stored columns.

        A lower bound on the Euclidean distance between their decoded
        reconstructions — computable from packed symbols and the shared
        table's breakpoints alone (the property
        ``mindist <= exact`` is pinned in ``tests/query/``).
        """
        from .distance import mindist

        return float(mindist(
            self.store.indices(id_a), self.store.indices(id_b),
            self.table,
        ))

    # -- pattern matching ---------------------------------------------------------

    def match(
        self,
        pattern: Union[str, SymbolPattern],
        meters: Optional[Sequence] = None,
        workers: int = 1,
        use_index: bool = True,
    ) -> PatternMatches:
        """Match a symbol pattern against columns at run granularity.

        The histogram prefilter (when an index is available) skips columns
        that lack the pattern's symbols before touching payload bytes;
        matching itself runs on RLE run arrays without expansion.
        """
        if isinstance(pattern, str):
            pattern = SymbolPattern.parse(pattern, self.store.alphabet_size)
        needed = pattern.min_symbol_counts(self.store.alphabet_size)
        columns = self.store._resolve_meters(meters)
        skip = np.zeros(len(columns), dtype=bool)
        if use_index and self._index is not None:
            self._index.check_store(self.store)
            hist = self._index.histograms[columns]
            skip = np.any(hist < needed[None, :], axis=1)
        result = PatternMatches(pattern=pattern.text or repr(pattern))
        result.windows_total = int(self.store.counts[columns].sum())
        result.columns_skipped = int(skip.sum())
        survivors = [c for c, skipped in zip(columns, skip) if not skipped]
        if workers == 1 or len(survivors) <= 1:
            blocks = [self._match_block(pattern, survivors)]
        else:
            blocks = self._match_sharded(pattern, survivors, workers)
        for spans, runs_scanned, scanned in blocks:
            result.spans.update(spans)
            result.runs_scanned += runs_scanned
            result.columns_scanned += scanned
        return result

    def _match_block(self, pattern: SymbolPattern, columns: List[int]) -> tuple:
        return _match_columns(self.store, pattern, columns)

    def _match_sharded(self, pattern: SymbolPattern, columns: List[int], workers: int):
        from ..parallel.executor import ParallelExecutor, resolve_workers
        from ..parallel.worker import MatchShardTask, run_match_shard

        workers = resolve_workers(workers)
        bounds = np.array_split(
            np.arange(len(columns)), min(workers, len(columns))
        )
        tasks = [
            MatchShardTask(
                store_path=str(self.store.path),
                tokens=pattern.tokens,
                columns=tuple(columns[int(idx[0]): int(idx[-1]) + 1]),
            )
            for idx in bounds if idx.size
        ]
        with ParallelExecutor(workers) as executor:
            return executor.map(run_match_shard, tasks)

    # -- aggregation --------------------------------------------------------------

    def aggregate(
        self,
        meters: Optional[Sequence] = None,
        level: Optional[int] = None,
        per_day: bool = False,
    ) -> AggregateReport:
        """Aggregation pushdown (see :func:`repro.query.aggregate_store`)."""
        return aggregate_store(
            self.store, meters=meters, level=level, per_day=per_day,
            index=self._index,
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        indexed = "indexed" if self._index is not None else "no index"
        return (
            f"QueryEngine({self.store.path.name!r}, "
            f"columns={self.store.n_meters}, {indexed})"
        )


def _match_columns(
    store: SymbolStore, pattern: SymbolPattern, columns: Sequence[int]
) -> tuple:
    """Match one block of columns; shared by the serial and worker paths."""
    spans: Dict = {}
    runs_scanned = 0
    for column in columns:
        column_id = store.ids[column]
        values, lengths = store.runs(column_id)
        runs_scanned += int(values.size)
        found = match_runs(values, lengths, pattern)
        if found:
            spans[column_id] = found
    return spans, runs_scanned, len(columns)
