"""The ``.rsymx`` sidecar index: banded symbol histograms for pruning.

A query index stores, for every column of a ``.rsym`` store, its symbol
histogram *per time band* plus first/min/max symbol — a few hundred integers
per meter, built in one pass and persisted next to the store.  The kNN
engine turns the banded histograms into a position-aware lower bound on
every candidate's distance with one matrix product
(``sum_b sum_s hist[b, s] * min_{t in band b} bound(q_t, s)^2``), so most
candidates are pruned *before any payload bytes are touched*.

Bands fold the column by the store's ``windows_per_day`` metadata when it is
available (band = time of day), falling back to contiguous segments: smart
meter days sweep low→high levels, so an unbanded histogram would let every
symbol sit near *some* query value and bound nothing — folding by time of
day is what makes the bound bite (the benchmark pins < 25% of candidates
decoded per query).  Pattern matching uses the band-summed histograms to
skip columns that lack a pattern's symbols entirely.

On-disk layout mirrors the ``.rsym`` format (little-endian, JSON trailer)::

    offset 0   magic  b"RSYMIDX1"
    offset 8   band histograms — (n_meters, n_bands, alphabet_size) uint32
    ...        first/min/max symbols — three (n_meters,) uint32 arrays
    ...        header — JSON (sorted keys)
    ...        uint64 header length
    end - 8    magic  b"RSYMIDXE"

The header records the parent store's fingerprint (meter count, alphabet,
symbol count, layout, payload size); :meth:`QueryIndex.open` refuses a stale
sidecar instead of silently pruning with wrong counts.  Files are
byte-identical for every ``workers`` count — histogram entries are exact
integers merged in task order.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..errors import QueryError
from ..store.format import SymbolStore

__all__ = [
    "QueryIndex",
    "build_query_index",
    "write_query_index",
    "query_index_path",
]

MAGIC_HEAD = b"RSYMIDX1"
MAGIC_TAIL = b"RSYMIDXE"
VERSION = 1

#: Default time bands per column (3-hour bands for 15-minute windows).
DEFAULT_BANDS = 8

_SYMBOL_DTYPE = np.dtype("<u4")

#: Histogram cells persist at the narrowest width that holds the largest
#: count (1, 2 or 4 bytes) — a week of 15-minute windows needs one byte per
#: (band, symbol) cell, so the sidecar stays a small fraction of the store.
_COUNT_DTYPES = (np.dtype("<u1"), np.dtype("<u2"), np.dtype("<u4"))


def _count_dtype_for(max_count: int) -> np.dtype:
    for dtype in _COUNT_DTYPES:
        if max_count <= np.iinfo(dtype).max:
            return dtype
    raise QueryError(f"histogram count {max_count} exceeds the uint32 range")


def query_index_path(store_path: Union[str, Path]) -> Path:
    """Canonical sidecar path: ``fleet.rsym`` -> ``fleet.rsymx``.

    A segmented store is a *directory*; its sidecar lives inside it
    (``<dir>/index.rsymx``) so the index travels with the segments and the
    scrub pass never mistakes it for a foreign file.
    """
    path = Path(store_path)
    if path.is_dir():
        return path / "index.rsymx"
    if path.suffix:
        return path.with_suffix(path.suffix + "x")
    return path.with_name(path.name + ".rsymx")


def _store_fingerprint(store: SymbolStore) -> Dict:
    return {
        "n_meters": store.n_meters,
        "alphabet_size": store.alphabet_size,
        "n_symbols": store.n_symbols,
        "layout": store.layout,
        "payload_nbytes": store.payload_nbytes,
    }


def band_of_windows(
    count: int, n_bands: int, windows_per_day: Optional[int] = None
) -> np.ndarray:
    """Band index of every window position (folded by day when possible)."""
    t = np.arange(int(count), dtype=np.int64)
    per_day = int(windows_per_day or 0)
    if per_day > 0 and count >= per_day:
        return (t % per_day) * n_bands // per_day
    return t * n_bands // max(1, int(count))


def _store_bands(store: SymbolStore, n_bands: int) -> Optional[int]:
    """The ``windows_per_day`` the bands fold by (``None`` = contiguous)."""
    per_day = store.metadata.get("windows_per_day")
    return int(per_day) if per_day else None


def _shard_stats(store: SymbolStore, start: int, stop: int, n_bands: int) -> tuple:
    """Banded histogram + first/min/max symbols for columns ``[start, stop)``."""
    k = store.alphabet_size
    n = stop - start
    per_day = _store_bands(store, n_bands)
    hist = np.zeros((n, n_bands, k), dtype=np.int64)
    first = np.zeros(n, dtype=np.int64)
    lo_sym = np.zeros(n, dtype=np.int64)
    hi_sym = np.zeros(n, dtype=np.int64)
    counts = store.counts[start:stop]
    if n and np.all(counts == counts[0]) and counts[0] > 0:
        matrix = store.matrix_block(start, stop)
        band = band_of_windows(matrix.shape[1], n_bands, per_day)
        flat = (np.arange(n)[:, None] * n_bands + band[None, :]) * k + matrix
        hist[:] = np.bincount(
            flat.ravel(), minlength=n * n_bands * k
        ).reshape(n, n_bands, k)
        first[:] = matrix[:, 0]
        lo_sym[:] = matrix.min(axis=1)
        hi_sym[:] = matrix.max(axis=1)
        return hist, first, lo_sym, hi_sym
    for row, column in enumerate(range(start, stop)):
        indices = store.indices(store.ids[column])
        if indices.size == 0:
            continue
        band = band_of_windows(indices.size, n_bands, per_day)
        hist[row] = np.bincount(
            band * k + indices, minlength=n_bands * k
        ).reshape(n_bands, k)
        first[row] = indices[0]
        lo_sym[row] = indices.min()
        hi_sym[row] = indices.max()
    return hist, first, lo_sym, hi_sym


class QueryIndex:
    """In-memory form of the sidecar statistics (see the module docstring)."""

    def __init__(
        self,
        band_histograms: np.ndarray,
        first_symbols: np.ndarray,
        min_symbols: np.ndarray,
        max_symbols: np.ndarray,
        fingerprint: Dict,
        windows_per_day: Optional[int] = None,
    ) -> None:
        self.band_histograms = np.asarray(band_histograms, dtype=np.int64)
        self.first_symbols = np.asarray(first_symbols, dtype=np.int64)
        self.min_symbols = np.asarray(min_symbols, dtype=np.int64)
        self.max_symbols = np.asarray(max_symbols, dtype=np.int64)
        self.fingerprint = dict(fingerprint)
        self.windows_per_day = int(windows_per_day) if windows_per_day else None
        if self.band_histograms.ndim != 3:
            raise QueryError(
                f"band histograms must be 3-D, got shape "
                f"{self.band_histograms.shape}"
            )
        self._histograms: Optional[np.ndarray] = None
        self._float_histograms: Optional[np.ndarray] = None

    @property
    def n_meters(self) -> int:
        return self.band_histograms.shape[0]

    @property
    def n_bands(self) -> int:
        return self.band_histograms.shape[1]

    @property
    def alphabet_size(self) -> int:
        return self.band_histograms.shape[2]

    @property
    def histograms(self) -> np.ndarray:
        """Band-summed ``(n_meters, k)`` symbol counts (cached)."""
        if self._histograms is None:
            self._histograms = self.band_histograms.sum(axis=1)
        return self._histograms

    @property
    def float_histograms(self) -> np.ndarray:
        """``(n_meters, n_bands, k)`` histograms as float64 (cached).

        The right-hand operand of the kNN engine's
        :func:`~repro.query.distance.histogram_bound` matmul, materialised
        once per index instead of once per query batch.
        """
        if self._float_histograms is None:
            self._float_histograms = self.band_histograms.astype(np.float64)
        return self._float_histograms

    def bands_for(self, count: int) -> np.ndarray:
        """Band of every window of a ``count``-long column (query side)."""
        return band_of_windows(count, self.n_bands, self.windows_per_day)

    def check_store(self, store: SymbolStore) -> None:
        """Refuse to prune with statistics from a different/stale store."""
        actual = _store_fingerprint(store)
        if actual != self.fingerprint:
            raise QueryError(
                f"query index is stale for {store.path.name}: index was built "
                f"for {self.fingerprint}, store is {actual}; rebuild it with "
                f"write_query_index() or 'repro query index'"
            )

    # -- persistence -------------------------------------------------------------

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as a ``.rsymx`` sidecar (deterministic bytes)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        count_dtype = _count_dtype_for(
            int(self.band_histograms.max(initial=0))
        )
        arrays = [
            self.band_histograms.astype(count_dtype),
            self.first_symbols.astype(_SYMBOL_DTYPE),
            self.min_symbols.astype(_SYMBOL_DTYPE),
            self.max_symbols.astype(_SYMBOL_DTYPE),
        ]
        header = {
            "version": VERSION,
            "n_meters": self.n_meters,
            "n_bands": self.n_bands,
            "alphabet_size": self.alphabet_size,
            "count_dtype": count_dtype.str,
            "windows_per_day": self.windows_per_day,
            "store": self.fingerprint,
        }
        encoded = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        temp = path.with_name(path.name + ".tmp")
        with temp.open("wb") as handle:
            handle.write(MAGIC_HEAD)
            for array in arrays:
                handle.write(array.tobytes())
            handle.write(encoded)
            handle.write(struct.pack("<Q", len(encoded)))
            handle.write(MAGIC_TAIL)
        os.replace(temp, path)
        return path

    @classmethod
    def open(cls, path: Union[str, Path]) -> "QueryIndex":
        """Read a sidecar written by :meth:`write`."""
        path = Path(path)
        if not path.exists():
            raise QueryError(f"no such query index: {path}")
        raw = np.fromfile(path, dtype=np.uint8)
        if raw.size < len(MAGIC_HEAD) + 8 + len(MAGIC_TAIL):
            raise QueryError(f"{path} is too short to be a query index")
        if raw[: len(MAGIC_HEAD)].tobytes() != MAGIC_HEAD:
            raise QueryError(f"{path} is not a query index (bad magic)")
        if raw[-len(MAGIC_TAIL):].tobytes() != MAGIC_TAIL:
            raise QueryError(f"{path} is truncated (bad tail magic)")
        (header_len,) = struct.unpack(
            "<Q", raw[-len(MAGIC_TAIL) - 8: -len(MAGIC_TAIL)].tobytes()
        )
        header_start = raw.size - len(MAGIC_TAIL) - 8 - header_len
        if header_start < len(MAGIC_HEAD):
            raise QueryError(f"{path} has an inconsistent header length")
        try:
            header = json.loads(
                raw[header_start: raw.size - len(MAGIC_TAIL) - 8].tobytes()
            )
        except ValueError as exc:
            raise QueryError(f"{path} has a corrupt header: {exc}") from None
        if header.get("version") != VERSION:
            raise QueryError(
                f"{path} has index version {header.get('version')}, "
                f"expected {VERSION}"
            )
        n = int(header["n_meters"])
        bands = int(header["n_bands"])
        k = int(header["alphabet_size"])
        count_dtype = np.dtype(header.get("count_dtype", "<u4"))
        hist_nbytes = n * bands * k * count_dtype.itemsize
        expected = hist_nbytes + 3 * n * _SYMBOL_DTYPE.itemsize
        payload = raw[len(MAGIC_HEAD): header_start]
        if payload.size != expected:
            raise QueryError(
                f"{path} payload is {payload.size} bytes, expected {expected}"
            )
        hist = payload[:hist_nbytes].view(count_dtype).astype(
            np.int64
        ).reshape(n, bands, k)
        rest = payload[hist_nbytes:].view(_SYMBOL_DTYPE).astype(np.int64)
        return cls(
            hist, rest[:n], rest[n: 2 * n], rest[2 * n:],
            header["store"], windows_per_day=header.get("windows_per_day"),
        )


def build_query_index(
    store: SymbolStore, workers: int = 1, n_bands: int = DEFAULT_BANDS
) -> QueryIndex:
    """Build the index in memory; ``workers > 1`` shards the column axis.

    Shards merge in task order and every entry is an exact integer, so the
    result (and any file written from it) is identical for every worker
    count — the same guarantee as :func:`~repro.store.write_fleet_store`.
    """
    from .ops import ColumnSource, IndexBuildOperator
    from .plan import ScanPlan

    n_bands = max(1, int(n_bands))
    plan = ScanPlan(ColumnSource(store), IndexBuildOperator(n_bands=n_bands))
    return plan.run(workers=workers)


def write_query_index(
    store: SymbolStore,
    path: Optional[Union[str, Path]] = None,
    workers: int = 1,
    n_bands: int = DEFAULT_BANDS,
) -> Path:
    """Build and persist the sidecar next to the store (default path)."""
    index = build_query_index(store, workers=workers, n_bands=n_bands)
    return index.write(query_index_path(store.path) if path is None else path)
