"""Indexed similarity search and symbolic queries over ``.rsym`` stores.

The paper's case for symbolic smart-meter data is that the symbols stay
*useful*: classification, forecasting and — via the SAX/iSAX lineage it
builds on — similarity search all run on the compressed representation.
``repro.query`` closes that loop for the on-disk stores of PR 4: a
:class:`QueryEngine` answers kNN, pattern and aggregation queries over a
store without decoding it wholesale.

:mod:`repro.query.distance`
    Vectorized MINDIST-style lower-bound kernels over any breakpoint table
    (:meth:`LookupTable.breakpoints` or the SAX Gaussian breakpoints).

:mod:`repro.query.index`
    The ``.rsymx`` sidecar (:class:`QueryIndex`): per-column symbol
    histograms + first/min/max symbols, the pruning tier that rejects
    candidates before any payload bytes are read.

:mod:`repro.query.engine`
    :class:`QueryEngine` / :class:`QueryConfig`: exact kNN with lower-bound
    pruning and lazy refinement (bit-identical to brute force, for every
    worker count), plus the pattern/aggregation entry points.

:mod:`repro.query.patterns`
    Run-level symbol pattern matching (``"c{4,} * a"``) pushed down to RLE
    payloads without expanding runs.

:mod:`repro.query.aggregate`
    Per-meter / per-day aggregation pushdown (symbol counts, peak levels,
    duty cycles) from packed or run-encoded columns.

:mod:`repro.query.plan` / :mod:`repro.query.ops`
    The composable scan layer every query above executes through: a
    :class:`ScanPlan` wires a :class:`ColumnSource` (one read abstraction
    over ``.rsym`` files and ``.rsyms`` segment directories), optional
    pruning stages, and a terminal :class:`Operator` into the single
    sharding/merge driver.  The fleet-monitoring workloads — per-meter
    anomaly scores, drift reports straight off ``.rsymx`` histograms, and
    k-anonymous private aggregates — are operators on the same layer.
"""

from .aggregate import AggregateReport, aggregate_store
from .distance import (
    banded_min_cells,
    breakpoints_of,
    cell_bounds,
    gathered_squared_distances,
    histogram_bound,
    mindist,
    rle_squared_distances,
    value_cell_bounds,
)
from .engine import (
    KNNResult,
    KNNStats,
    QueryConfig,
    QueryEngine,
    resolve_shared_table,
)

#: The work-accounting record of one kNN batch (``result.stats``), under
#: the name the CLI's ``--stats`` output refers to.
QueryStats = KNNStats
from .index import (
    QueryIndex,
    build_query_index,
    query_index_path,
    write_query_index,
)
from .ops import (
    AggregateOperator,
    AnomalyOperator,
    AnomalyReport,
    ColumnSource,
    DriftOperator,
    DriftReport,
    GroupAggregateOperator,
    IndexBuildOperator,
    KNNOperator,
    MatchOperator,
    Operator,
    PrivateAggregateReport,
    SourceStats,
    SymbolCountPrune,
)
from .patterns import PatternMatches, PatternToken, SymbolPattern, match_runs
from .plan import Deadline, ScanPlan, active_deadline, check_deadline

__all__ = [
    "AggregateOperator",
    "AggregateReport",
    "AnomalyOperator",
    "AnomalyReport",
    "ColumnSource",
    "Deadline",
    "DriftOperator",
    "DriftReport",
    "GroupAggregateOperator",
    "IndexBuildOperator",
    "KNNOperator",
    "KNNResult",
    "KNNStats",
    "MatchOperator",
    "Operator",
    "PatternMatches",
    "PatternToken",
    "PrivateAggregateReport",
    "QueryConfig",
    "QueryEngine",
    "QueryIndex",
    "QueryStats",
    "ScanPlan",
    "SourceStats",
    "SymbolCountPrune",
    "SymbolPattern",
    "active_deadline",
    "aggregate_store",
    "banded_min_cells",
    "breakpoints_of",
    "build_query_index",
    "cell_bounds",
    "check_deadline",
    "gathered_squared_distances",
    "histogram_bound",
    "match_runs",
    "mindist",
    "query_index_path",
    "resolve_shared_table",
    "rle_squared_distances",
    "value_cell_bounds",
    "write_query_index",
]
