"""C4.5-style decision tree (the stand-in for Weka's J48).

The tree supports mixed schemas: nominal attributes produce multiway splits
(one child per category), numeric attributes produce binary threshold splits.
Split selection uses gain ratio, as in C4.5/J48.  A light-weight
minimum-instances / maximum-depth stopping rule plus optional reduced-error
style collapse (merging children that all predict the parent majority) keeps
trees from overfitting the small day-vector datasets.

The split search is fully vectorized and histogram-based:

* every candidate *nominal* column of a node is scored from one
  ``(column, category, class)`` contingency tensor built by a single
  ``bincount`` — no per-category masks, no per-column loops;
* *numeric* columns sweep cumulative class-count histograms over the
  presorted column (``MLDataset.sort_order``, filtered down the recursion),
  scoring every candidate threshold at once — one O(n) pass per attribute
  per node instead of one per *threshold*;
* entropies come from the identity ``n*H(counts) = n*log2(n) - sum_c
  c*log2(c)`` using a precomputed ``i -> i*log2(i)`` lookup over integer
  counts, so the sweep never evaluates a logarithm;
* child class distributions are sliced out of the parent's winning
  histogram, so only the root ever bins labels.

``tests/ml/test_vectorized_parity.py`` pins the fitted trees (predictions,
depth, node counts) to goldens generated from the original per-threshold
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset

__all__ = ["DecisionTreeClassifier"]


def _entropy_from_counts(counts: np.ndarray, total: int) -> float:
    """Reference entropy of a class histogram (the original float ops).

    This is the slow reference formula, kept float-identical to the
    pre-vectorization per-label implementation; the split search uses it
    only to re-rank candidates whose fast lookup-table scores are within
    rounding distance of each other (see ``_TIE_TOL`` below).
    """
    counts = np.asarray(counts, dtype=np.float64)
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


# Two candidate splits whose fast scores differ by less than this are
# re-scored with the reference formula so tie-breaks match the original
# sequential implementation bit for bit.  The lookup-table reformulation is
# accurate to ~1e-13 relative, so 1e-8 is a comfortably safe margin.
_TIE_TOL = 1e-8

# Reference-entropy memos shared across trees and forests: the values are
# pure functions of integer histograms, and tie groups repeat the same tiny
# tables constantly.  Cleared when they grow past the cap.
_ENTROPY_MEMO: Dict[Tuple[int, bytes], float] = {}
_NOMINAL_SCORE_MEMO: Dict[
    Tuple[int, Tuple[int, ...], bytes], Tuple[float, float]
] = {}
_MEMO_CAP = 200_000


@dataclass
class _Node:
    """Internal tree node; leaves have ``attribute_index is None``."""

    majority_class: int
    class_distribution: np.ndarray
    attribute_index: Optional[int] = None
    threshold: Optional[float] = None  # numeric splits only
    children: Dict[int, "_Node"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.attribute_index is None

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def count_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + sum(child.count_nodes() for child in self.children.values())


class DecisionTreeClassifier(Classifier):
    """Gain-ratio decision tree with multiway nominal splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (0 means unlimited).
    min_samples_split:
        Do not split nodes with fewer instances than this.
    min_gain:
        Minimum information gain required to accept a split.
    max_features:
        If positive, consider only this many randomly chosen attributes at
        each split (used by the random forest); 0 considers all attributes.
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 0,
        min_samples_split: int = 2,
        min_gain: float = 1e-7,
        max_features: int = 0,
        random_state: int = 0,
    ) -> None:
        super().__init__()
        if min_samples_split < 2:
            raise DatasetError("min_samples_split must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_gain = float(min_gain)
        self.max_features = int(max_features)
        self.random_state = int(random_state)
        self._root: Optional[_Node] = None
        self._attributes: tuple = ()
        self._n_classes = 0

    # -- fitting ---------------------------------------------------------------------

    def fit(self, dataset: MLDataset) -> "DecisionTreeClassifier":
        if len(dataset) == 0:
            raise DatasetError("cannot fit a tree on an empty dataset")
        n = len(dataset)
        self._attributes = dataset.attributes
        self._n_classes = dataset.n_classes
        self._class_names = dataset.class_names
        self._rng = np.random.default_rng(self.random_state)

        self._X = dataset.X
        self._y = dataset.y
        # Columnar fit-time state comes straight from the dataset's shared
        # caches (presorted orders, code matrix) — bootstrap samples and CV
        # folds arrive with these already translated from their parent.
        self._nominal_cols = dataset.nominal_columns
        self._numeric_cols = dataset.numeric_columns
        self._row_of = dataset._column_row
        self._is_nominal = np.zeros(len(self._attributes), dtype=bool)
        self._is_nominal[self._nominal_cols] = True
        self._max_categories = dataset.max_categories
        self._codes_T = (
            dataset.codes_matrix() if self._nominal_cols.size
            else np.empty((0, n), dtype=np.int64)
        )
        root_orders = (
            dataset.orders_matrix() if self._numeric_cols.size
            else np.empty((0, n), dtype=np.int64)
        )
        # i -> i * log2(i) over every possible count (0 maps to 0), the only
        # log evaluations of the whole fit.
        table = np.arange(n + 1, dtype=np.float64)
        table[1:] *= np.log2(table[1:])
        self._xlog2x = table
        self._offsets_memo: Dict[Tuple[int, int], np.ndarray] = {}

        root_distribution = np.bincount(self._y, minlength=self._n_classes)
        self._root = self._build(
            np.arange(n, dtype=np.int64), root_orders, root_distribution, depth=1
        )
        self._fitted = True
        del self._X, self._y, self._codes_T, self._offsets_memo
        return self

    def _tensor_offsets(self, n_columns: int, block: int) -> np.ndarray:
        """Cached ``(n_columns, 1)`` bin offsets for the contingency tensor."""
        key = (n_columns, block)
        cached = self._offsets_memo.get(key)
        if cached is None:
            cached = (np.arange(n_columns) * block)[:, np.newaxis]
            self._offsets_memo[key] = cached
        return cached

    def _candidate_columns(self, n_columns: int) -> np.ndarray:
        if self.max_features and self.max_features < n_columns:
            return self._rng.choice(n_columns, size=self.max_features, replace=False)
        return np.arange(n_columns)

    def _entropy_of_distribution(self, distribution: np.ndarray, total: int) -> float:
        """``H`` from an integer class histogram via the x*log2(x) table."""
        if total == 0:
            return 0.0
        xlx = self._xlog2x
        return float(xlx[total] - xlx[distribution].sum()) / total

    def _build(
        self,
        idx: np.ndarray,
        orders: np.ndarray,
        distribution: np.ndarray,
        depth: int,
    ) -> _Node:
        """Grow the subtree over the rows ``idx`` (absolute row ids).

        ``orders`` carries one presorted row of node-local positions per
        numeric column; ``distribution`` is this node's class histogram,
        sliced from the parent's winning split histogram.
        """
        n = idx.size
        majority = int(distribution.argmax())
        node = _Node(majority_class=majority, class_distribution=distribution)

        if (
            int(distribution[majority]) == n
            or n < self.min_samples_split
            or (self.max_depth and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(idx, orders, distribution)
        if best is None:
            return node
        gain, column, threshold, histogram = best
        if gain < self.min_gain:
            return node

        node.attribute_index = column
        node.threshold = threshold

        # Materialise the winning partition: node-local row groups plus the
        # per-branch class histograms already computed by the split search.
        if self._is_nominal[column]:
            codes = self._codes_T[self._row_of[column], idx]
            grouped = np.argsort(codes, kind="stable")
            counts = np.bincount(
                codes, minlength=self._attributes[column].n_categories
            )
            boundaries = np.cumsum(counts)
            local_groups = [
                grouped[boundaries[b] - counts[b]: boundaries[b]]
                for b in range(counts.size)
            ]
            branches = range(len(local_groups))
        else:
            values = self._X[idx, column]
            left_mask = values <= threshold
            left = np.nonzero(left_mask)[0]
            right = np.nonzero(~left_mask)[0]
            local_groups = [left, right]
            branches = range(2)

        for branch, local in zip(branches, local_groups):
            if local.size == 0:
                continue
            if orders.shape[0]:
                # Filter the parent presort instead of re-sorting: keep the
                # sorted positions that fall in this child and renumber them
                # to child-local positions.
                mask = np.zeros(n, dtype=bool)
                mask[local] = True
                renumber = np.cumsum(mask) - 1
                kept = orders[mask[orders]].reshape(orders.shape[0], local.size)
                child_orders = renumber[kept]
            else:
                child_orders = orders
            node.children[branch] = self._build(
                idx[local], child_orders, histogram[branch], depth + 1
            )
        if not node.children:
            node.attribute_index = None
            node.threshold = None
        return node

    def _best_split(
        self, idx: np.ndarray, orders: np.ndarray, distribution: np.ndarray
    ) -> Optional[Tuple[float, int, Optional[float], Dict[int, np.ndarray]]]:
        n = idx.size
        y = self._y[idx]
        parent_entropy = self._entropy_of_distribution(distribution, n)
        candidates = self._candidate_columns(len(self._attributes))
        if candidates.size == 0:
            return None
        all_nominal = bool(self._numeric_cols.size == 0)
        nominal_candidates = (
            candidates if all_nominal else candidates[self._is_nominal[candidates]]
        )
        xlx = self._xlog2x
        log2_n = xlx[n] / n if n else 0.0

        numeric_results: Dict[int, Tuple[float, Dict[int, np.ndarray]]] = {}
        nominal_tensor: Optional[np.ndarray] = None

        if nominal_candidates.size:
            k_cat, k_cls = self._max_categories, self._n_classes
            block = k_cat * k_cls
            rows = self._row_of[nominal_candidates]
            codes = self._codes_T[rows[:, np.newaxis], idx]
            keys = codes * k_cls + y
            keys += self._tensor_offsets(nominal_candidates.size, block)
            tensor = np.bincount(
                keys.ravel(), minlength=nominal_candidates.size * block
            ).reshape(nominal_candidates.size, k_cat, k_cls)
            sizes = np.add.reduce(tensor, axis=2)
            # n*H identities: weighted child entropy and split info without
            # a single log evaluation (xlx = i*log2(i) lookup).
            child_term = np.add.reduce(xlx[sizes], axis=1)
            weighted = (
                child_term
                - np.add.reduce(
                    xlx[tensor].reshape(nominal_candidates.size, block), axis=1
                )
            ) / n
            information = parent_entropy - weighted
            split_info = log2_n - child_term / n
            valid = np.count_nonzero(sizes, axis=1) >= 2
            usable = valid & (information > 0) & (split_info > 0)
            nominal_gains = np.where(usable, information, -np.inf)
            nominal_tensor = tensor

        if all_nominal:
            # Pure-symbolic schema (the common Table 1 / forecasting case):
            # no scatter into a mixed candidate array needed.
            gains = nominal_gains
            split_infos = split_info
        else:
            gains = np.full(candidates.size, -np.inf)
            split_infos = np.zeros(candidates.size)
            if nominal_candidates.size:
                positions = np.nonzero(self._is_nominal[candidates])[0]
                gains[positions] = nominal_gains
                split_infos[positions] = split_info

        if nominal_candidates.size < candidates.size:
            # Shared per-node precomputation for every numeric candidate:
            # sorted values, distinct masks and cumulative class counts come
            # from three batched gathers over the presorted orders.
            numeric_positions = np.nonzero(~self._is_nominal[candidates])[0]
            numeric_cols = candidates[numeric_positions]
            node_orders = orders[self._row_of[numeric_cols]]
            sorted_rows = idx[node_orders]
            sorted_values = self._X[sorted_rows, numeric_cols[:, np.newaxis]]
            one_hot = np.zeros((n, self._n_classes), dtype=np.int64)
            one_hot[np.arange(n), y] = 1
            cumulatives = one_hot[node_orders].cumsum(axis=1)
            distinct_masks = np.empty(sorted_values.shape, dtype=bool)
            distinct_masks[:, 0] = True
            np.not_equal(
                sorted_values[:, 1:], sorted_values[:, :-1],
                out=distinct_masks[:, 1:],
            )
            for j, position in enumerate(numeric_positions):
                result = self._numeric_split(
                    sorted_values[j], distinct_masks[j], cumulatives[j],
                    n, parent_entropy,
                )
                if result is None:
                    continue
                information, split_info, threshold, histogram = result
                if information <= 0 or split_info <= 0:
                    continue
                gains[position] = information
                split_infos[position] = split_info
                numeric_results[int(position)] = (threshold, histogram)

        ratios = np.full(candidates.size, -np.inf)
        np.divide(gains, split_infos, out=ratios, where=gains > -np.inf)
        best_position = int(ratios.argmax())
        best_ratio = float(ratios[best_position])
        if best_ratio == -np.inf:
            return None
        tied = np.nonzero(
            ratios >= best_ratio - _TIE_TOL * max(1.0, abs(best_ratio))
        )[0]
        if tied.size > 1:
            # Candidates this close can flip under the reformulated floats;
            # re-rank them with the reference formula (first maximum wins,
            # like the original strict-greater scan).
            parent_exact = self._exact_entropy(distribution, n)
            exact_ratios = np.empty(tied.size)
            exact_gains = np.empty(tied.size)
            for j, position in enumerate(tied):
                tied_column = int(candidates[position])
                if self._is_nominal[tied_column]:
                    assert nominal_tensor is not None
                    row = int(np.nonzero(nominal_candidates == tied_column)[0][0])
                    weighted, split_info = self._exact_nominal_score(
                        nominal_tensor[row], n
                    )
                else:
                    _, histogram = numeric_results[position]
                    left_size = int(histogram[0].sum())
                    fraction_left = left_size / n
                    fraction_right = 1.0 - fraction_left
                    weighted = fraction_left * self._exact_entropy(
                        histogram[0], left_size
                    )
                    weighted += fraction_right * self._exact_entropy(
                        histogram[1], n - left_size
                    )
                    split_info = -(
                        fraction_left * np.log2(fraction_left)
                        + fraction_right * np.log2(fraction_right)
                    )
                exact_gains[j] = parent_exact - weighted
                exact_ratios[j] = exact_gains[j] / split_info
            winner = int(exact_ratios.argmax())
            best_position = int(tied[winner])
            gains[best_position] = exact_gains[winner]
        column = int(candidates[best_position])
        if self._is_nominal[column]:
            assert nominal_tensor is not None
            tensor_row = int(np.nonzero(nominal_candidates == column)[0][0])
            histogram = {
                cat: nominal_tensor[tensor_row, cat]
                for cat in range(self._attributes[column].n_categories)
            }
            return float(gains[best_position]), column, None, histogram
        threshold, histogram = numeric_results[best_position]
        return float(gains[best_position]), column, threshold, histogram

    @staticmethod
    def _exact_entropy(counts: np.ndarray, total: int) -> float:
        """Memoised reference entropy (tiny histograms repeat across nodes)."""
        key = (total, counts.tobytes())
        cached = _ENTROPY_MEMO.get(key)
        if cached is None:
            if len(_ENTROPY_MEMO) >= _MEMO_CAP:
                _ENTROPY_MEMO.clear()
            cached = _entropy_from_counts(counts, total)
            _ENTROPY_MEMO[key] = cached
        return cached

    def _exact_nominal_score(
        self, tensor_row: np.ndarray, n: int
    ) -> Tuple[float, float]:
        """Reference weighted entropy / split info of one nominal column.

        Sequential per-category accumulation, float-identical to the original
        per-mask implementation; used only to resolve near-ties.  Memoised —
        tie groups repeat the same contingency tables across nodes and trees.
        """
        key = (n, tensor_row.shape, tensor_row.tobytes())
        cached = _NOMINAL_SCORE_MEMO.get(key)
        if cached is not None:
            return cached
        sizes = tensor_row.sum(axis=1)
        weighted = 0.0
        split_info = 0.0
        for category in range(tensor_row.shape[0]):
            size = int(sizes[category])
            if size == 0:
                continue
            fraction = size / n
            weighted += fraction * self._exact_entropy(tensor_row[category], size)
            split_info -= fraction * np.log2(fraction)
        if len(_NOMINAL_SCORE_MEMO) >= _MEMO_CAP:
            _NOMINAL_SCORE_MEMO.clear()
        _NOMINAL_SCORE_MEMO[key] = (weighted, split_info)
        return weighted, split_info

    def _numeric_split(
        self,
        sorted_values: np.ndarray,
        distinct_mask: np.ndarray,
        cumulative: np.ndarray,
        n: int,
        parent_entropy: float,
    ) -> Optional[Tuple[float, float, float, Dict[int, np.ndarray]]]:
        """Score one presorted numeric column from its cumulative histogram.

        ``cumulative[i]`` holds the class counts of the first ``i + 1`` rows
        in value order; every candidate threshold is one row gather away.
        """
        distinct = sorted_values[distinct_mask]
        if distinct.size < 2:
            return None
        # Candidate thresholds: midpoints between consecutive distinct values.
        candidates = (distinct[:-1] + distinct[1:]) / 2.0
        if candidates.size > 32:
            # Subsample candidate thresholds for speed on long numeric columns.
            candidates = candidates[:: max(1, candidates.size // 32)]

        total_counts = cumulative[-1]
        positions = np.searchsorted(sorted_values, candidates, side="right")
        interior = (positions > 0) & (positions < n)
        if not interior.any():
            return None
        positions = positions[interior]
        candidates = candidates[interior]

        xlx = self._xlog2x
        left_counts = cumulative[positions - 1]
        right_counts = total_counts - left_counts
        # n*H identity per side; weighted = (sum_side size*log2(size)
        #                                    - sum_cell c*log2(c)) / n.
        side_term = xlx[positions] + xlx[n - positions]
        cell_term = xlx[left_counts].sum(axis=1) + xlx[right_counts].sum(axis=1)
        weighted = (side_term - cell_term) / n
        best_at = int(weighted.argmin())
        weighted_best = float(weighted[best_at])
        tied = np.nonzero(
            weighted <= weighted_best + _TIE_TOL * max(1.0, abs(weighted_best))
        )[0]
        if tied.size > 1:
            # Re-rank near-tied thresholds with the reference formula so the
            # chosen threshold matches the original first-strict-less scan.
            exact = np.empty(tied.size)
            for j, at in enumerate(tied):
                left_size = int(positions[at])
                fraction_left = left_size / n
                fraction_right = 1.0 - fraction_left
                value = fraction_left * self._exact_entropy(
                    left_counts[at], left_size
                )
                value += fraction_right * self._exact_entropy(
                    right_counts[at], n - left_size
                )
                exact[j] = value
            best_at = int(tied[int(exact.argmin())])
        information = parent_entropy - float(weighted[best_at])
        split_info = xlx[n] / n - float(side_term[best_at]) / n
        histogram = {0: left_counts[best_at], 1: right_counts[best_at]}
        return information, split_info, float(candidates[best_at]), histogram

    # -- prediction -------------------------------------------------------------------

    def _route(
        self,
        node: _Node,
        X: np.ndarray,
        idx: np.ndarray,
        visit: Callable[[_Node, np.ndarray], None],
    ) -> None:
        """Push the rows ``idx`` down the tree, calling ``visit`` per leaf.

        Rows whose branch has no child (an unseen category) stop at the
        current node, exactly like a per-row walk would.
        """
        if idx.size == 0:
            return
        if node.is_leaf:
            visit(node, idx)
            return
        attribute = self._attributes[node.attribute_index]
        column = X[idx, node.attribute_index]
        if attribute.is_nominal:
            branches = column.astype(np.int64)
        else:
            # `~(v <= t)` (not `v > t`) so NaN rows take branch 1, agreeing
            # with the per-row walk and the fit-time partitioning.
            branches = (~(column <= node.threshold)).astype(np.int64)
        unrouted = np.ones(idx.size, dtype=bool)
        for branch, child in node.children.items():
            mask = branches == branch
            if mask.any():
                self._route(child, X, idx[mask], visit)
                unrouted &= ~mask
        if unrouted.any():
            visit(node, idx[unrouted])

    # Below this many rows a plain per-row walk beats the mask-based routing
    # (the numpy calls cost more than the dict lookups).  Either path stops at
    # the same node per row, so the outputs are identical.
    _SMALL_BATCH = 32

    def _leaf_for_row(self, row: np.ndarray) -> _Node:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            column = node.attribute_index
            if self._attributes[column].is_nominal:
                branch = int(row[column])
            else:
                branch = 0 if row[column] <= node.threshold else 1
            child = node.children.get(branch)
            if child is None:
                break  # unseen branch: stop at current node's majority
            node = child
        return node

    def predict(self, dataset: MLDataset) -> np.ndarray:
        self._check_fitted()
        if (
            dataset.attributes is not self._attributes
            and dataset.attributes != self._attributes
        ):
            raise DatasetError("dataset schema differs from the one used to fit")
        assert self._root is not None
        n = len(dataset)
        out = np.empty(n, dtype=np.int64)
        if n <= self._SMALL_BATCH:
            for i, row in enumerate(dataset.X):
                out[i] = self._leaf_for_row(row).majority_class
            return out

        def visit(node: _Node, idx: np.ndarray) -> None:
            out[idx] = node.majority_class

        self._route(self._root, dataset.X, np.arange(n), visit)
        return out

    def predict_proba(self, dataset: MLDataset) -> np.ndarray:
        """Leaf class distributions normalised to probabilities."""
        self._check_fitted()
        assert self._root is not None
        n = len(dataset)
        out = np.zeros((n, self._n_classes), dtype=np.float64)
        if n <= self._SMALL_BATCH:
            for i, row in enumerate(dataset.X):
                node = self._leaf_for_row(row)
                distribution = node.class_distribution.astype(np.float64)
                total = distribution.sum()
                out[i] = distribution / total if total else 1.0 / self._n_classes
            return out

        def visit(node: _Node, idx: np.ndarray) -> None:
            distribution = node.class_distribution.astype(np.float64)
            total = distribution.sum()
            out[idx] = distribution / total if total else 1.0 / self._n_classes

        self._route(self._root, dataset.X, np.arange(n), visit)
        return out

    # -- introspection -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Depth of the fitted tree."""
        self._check_fitted()
        assert self._root is not None
        return self._root.depth()

    @property
    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        self._check_fitted()
        assert self._root is not None
        return self._root.count_nodes()
