"""C4.5-style decision tree (the stand-in for Weka's J48).

The tree supports mixed schemas: nominal attributes produce multiway splits
(one child per category), numeric attributes produce binary threshold splits.
Split selection uses gain ratio, as in C4.5/J48.  A light-weight
minimum-instances / maximum-depth stopping rule plus optional reduced-error
style collapse (merging children that all predict the parent majority) keeps
trees from overfitting the small day-vector datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import Attribute, MLDataset

__all__ = ["DecisionTreeClassifier"]


def _entropy(labels: np.ndarray, n_classes: int) -> float:
    if labels.size == 0:
        return 0.0
    counts = np.bincount(labels, minlength=n_classes).astype(np.float64)
    probs = counts[counts > 0] / labels.size
    return float(-(probs * np.log2(probs)).sum())


@dataclass
class _Node:
    """Internal tree node; leaves have ``attribute_index is None``."""

    majority_class: int
    class_distribution: np.ndarray
    attribute_index: Optional[int] = None
    threshold: Optional[float] = None  # numeric splits only
    children: Dict[int, "_Node"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.attribute_index is None

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def count_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + sum(child.count_nodes() for child in self.children.values())


class DecisionTreeClassifier(Classifier):
    """Gain-ratio decision tree with multiway nominal splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (0 means unlimited).
    min_samples_split:
        Do not split nodes with fewer instances than this.
    min_gain:
        Minimum information gain required to accept a split.
    max_features:
        If positive, consider only this many randomly chosen attributes at
        each split (used by the random forest); 0 considers all attributes.
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 0,
        min_samples_split: int = 2,
        min_gain: float = 1e-7,
        max_features: int = 0,
        random_state: int = 0,
    ) -> None:
        super().__init__()
        if min_samples_split < 2:
            raise DatasetError("min_samples_split must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_gain = float(min_gain)
        self.max_features = int(max_features)
        self.random_state = int(random_state)
        self._root: Optional[_Node] = None
        self._attributes: tuple = ()
        self._n_classes = 0

    # -- fitting ---------------------------------------------------------------------

    def fit(self, dataset: MLDataset) -> "DecisionTreeClassifier":
        if len(dataset) == 0:
            raise DatasetError("cannot fit a tree on an empty dataset")
        self._attributes = dataset.attributes
        self._n_classes = dataset.n_classes
        self._class_names = dataset.class_names
        self._rng = np.random.default_rng(self.random_state)
        self._root = self._build(dataset.X, dataset.y, depth=1)
        self._fitted = True
        return self

    def _candidate_columns(self, n_columns: int) -> np.ndarray:
        if self.max_features and self.max_features < n_columns:
            return self._rng.choice(n_columns, size=self.max_features, replace=False)
        return np.arange(n_columns)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        distribution = np.bincount(y, minlength=self._n_classes)
        majority = int(np.argmax(distribution))
        node = _Node(majority_class=majority, class_distribution=distribution)

        if (
            len(np.unique(y)) == 1
            or y.size < self.min_samples_split
            or (self.max_depth and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(X, y)
        if best is None:
            return node
        gain, column, threshold, partitions = best
        if gain < self.min_gain:
            return node

        node.attribute_index = column
        node.threshold = threshold
        for branch, indices in partitions.items():
            if indices.size == 0:
                continue
            node.children[branch] = self._build(X[indices], y[indices], depth + 1)
        if not node.children:
            node.attribute_index = None
            node.threshold = None
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[float, int, Optional[float], Dict[int, np.ndarray]]]:
        parent_entropy = _entropy(y, self._n_classes)
        best: Optional[Tuple[float, int, Optional[float], Dict[int, np.ndarray]]] = None
        best_ratio = -np.inf

        for column in self._candidate_columns(X.shape[1]):
            attribute = self._attributes[column]
            values = X[:, column]
            if attribute.is_nominal:
                split = self._nominal_split(values, y, attribute)
            else:
                split = self._numeric_split(values, y)
            if split is None:
                continue
            gain, threshold, partitions, split_info = split
            information_gain = parent_entropy - gain
            if information_gain <= 0 or split_info <= 0:
                continue
            gain_ratio = information_gain / split_info
            if gain_ratio > best_ratio:
                best_ratio = gain_ratio
                best = (information_gain, int(column), threshold, partitions)
        return best

    def _nominal_split(
        self, values: np.ndarray, y: np.ndarray, attribute: Attribute
    ) -> Optional[Tuple[float, Optional[float], Dict[int, np.ndarray], float]]:
        codes = values.astype(np.int64)
        partitions: Dict[int, np.ndarray] = {}
        weighted_entropy = 0.0
        split_info = 0.0
        for category in range(attribute.n_categories):
            indices = np.nonzero(codes == category)[0]
            partitions[category] = indices
            if indices.size == 0:
                continue
            fraction = indices.size / y.size
            weighted_entropy += fraction * _entropy(y[indices], self._n_classes)
            split_info -= fraction * np.log2(fraction)
        non_empty = sum(1 for idx in partitions.values() if idx.size)
        if non_empty < 2:
            return None
        return weighted_entropy, None, partitions, split_info

    def _numeric_split(
        self, values: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[float, Optional[float], Dict[int, np.ndarray], float]]:
        order = np.argsort(values, kind="mergesort")
        sorted_values = values[order]
        distinct = np.unique(sorted_values)
        if distinct.size < 2:
            return None
        # Candidate thresholds: midpoints between consecutive distinct values.
        candidates = (distinct[:-1] + distinct[1:]) / 2.0
        if candidates.size > 32:
            # Subsample candidate thresholds for speed on long numeric columns.
            candidates = candidates[:: max(1, candidates.size // 32)]
        best: Optional[Tuple[float, Optional[float], Dict[int, np.ndarray], float]] = None
        best_entropy = np.inf
        for threshold in candidates:
            left = np.nonzero(values <= threshold)[0]
            right = np.nonzero(values > threshold)[0]
            if left.size == 0 or right.size == 0:
                continue
            fraction_left = left.size / y.size
            fraction_right = 1.0 - fraction_left
            weighted = fraction_left * _entropy(y[left], self._n_classes)
            weighted += fraction_right * _entropy(y[right], self._n_classes)
            if weighted < best_entropy:
                split_info = -(
                    fraction_left * np.log2(fraction_left)
                    + fraction_right * np.log2(fraction_right)
                )
                best_entropy = weighted
                best = (
                    weighted,
                    float(threshold),
                    {0: left, 1: right},
                    float(split_info),
                )
        return best

    # -- prediction -------------------------------------------------------------------

    def predict(self, dataset: MLDataset) -> np.ndarray:
        self._check_fitted()
        if dataset.attributes != self._attributes:
            raise DatasetError("dataset schema differs from the one used to fit")
        return np.asarray(
            [self._predict_row(row) for row in dataset.X], dtype=np.int64
        )

    def predict_proba(self, dataset: MLDataset) -> np.ndarray:
        """Leaf class distributions normalised to probabilities."""
        self._check_fitted()
        out = np.zeros((len(dataset), self._n_classes), dtype=np.float64)
        for i, row in enumerate(dataset.X):
            distribution = self._leaf_for_row(row).class_distribution.astype(np.float64)
            total = distribution.sum()
            out[i] = distribution / total if total else 1.0 / self._n_classes
        return out

    def _leaf_for_row(self, row: np.ndarray) -> _Node:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            column = node.attribute_index
            attribute = self._attributes[column]
            if attribute.is_nominal:
                branch = int(row[column])
            else:
                branch = 0 if row[column] <= node.threshold else 1
            child = node.children.get(branch)
            if child is None:
                break  # unseen branch: stop at current node's majority
            node = child
        return node

    def _predict_row(self, row: np.ndarray) -> int:
        return self._leaf_for_row(row).majority_class

    # -- introspection -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Depth of the fitted tree."""
        self._check_fitted()
        assert self._root is not None
        return self._root.depth()

    @property
    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        self._check_fitted()
        assert self._root is not None
        return self._root.count_nodes()
