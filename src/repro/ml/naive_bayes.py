"""Naive Bayes classifier for mixed nominal/numeric attributes.

This mirrors Weka's ``NaiveBayes``: nominal attributes use Laplace-smoothed
category frequencies per class; numeric attributes use per-class Gaussian
densities.  Naive Bayes is the classifier the paper highlights as benefiting
most from the symbolic (nominal) representation — it outperforms its own raw
numeric variant in Table 1.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset

__all__ = ["NaiveBayesClassifier"]

_MIN_STD = 1e-3
_LOG_EPS = 1e-12


class NaiveBayesClassifier(Classifier):
    """Gaussian / multinomial Naive Bayes (Weka-style).

    Parameters
    ----------
    laplace:
        Additive smoothing for nominal category counts.
    """

    def __init__(self, laplace: float = 1.0) -> None:
        super().__init__()
        if laplace < 0:
            raise DatasetError("laplace smoothing must be non-negative")
        self.laplace = float(laplace)
        self._priors: Optional[np.ndarray] = None
        self._nominal_log_likelihoods: List[Optional[np.ndarray]] = []
        self._gaussian_params: List[Optional[np.ndarray]] = []
        self._attributes: tuple = ()

    def fit(self, dataset: MLDataset) -> "NaiveBayesClassifier":
        n_classes = dataset.n_classes
        counts = dataset.class_counts().astype(np.float64)
        self._priors = np.log((counts + 1.0) / (counts.sum() + n_classes))
        self._attributes = dataset.attributes
        self._nominal_log_likelihoods = []
        self._gaussian_params = []
        # One member-index pass per class, shared by every numeric column
        # (the original recomputed the class mask per column per class).
        numeric_cols = dataset.numeric_columns
        class_members = (
            [np.nonzero(dataset.y == klass)[0] for klass in range(n_classes)]
            if numeric_cols.size else []
        )

        # Every nominal column's (class, category) contingency table comes
        # from one joint bincount over the code matrix, and the smoothing /
        # normalisation / log run once on the stacked tensor — the per-column
        # arithmetic is identical to processing each table separately.
        nominal_cols = dataset.nominal_columns
        nominal_tables: dict = {}
        if nominal_cols.size:
            n_cat = dataset.max_categories
            block = n_classes * n_cat
            codes = dataset.codes_matrix()
            keys = dataset.y * n_cat + codes
            keys += (np.arange(nominal_cols.size) * block)[:, np.newaxis]
            tensor = np.bincount(
                keys.ravel(), minlength=nominal_cols.size * block
            ).reshape(nominal_cols.size, n_classes, n_cat).astype(np.float64)
            widths = [dataset.attributes[col].n_categories for col in nominal_cols]
            if all(width == n_cat for width in widths):
                # Uniform alphabets: smooth/normalise/log the whole stack.
                tensor += self.laplace
                tensor /= tensor.sum(axis=2, keepdims=True)
                logs = np.log(tensor + _LOG_EPS)
                for row, col in enumerate(nominal_cols):
                    nominal_tables[int(col)] = logs[row]
            else:
                for row, col in enumerate(nominal_cols):
                    width = widths[row]
                    table = tensor[row, :, :width]
                    table += self.laplace
                    table /= table.sum(axis=1, keepdims=True)
                    nominal_tables[int(col)] = np.log(table + _LOG_EPS)

        for col, attribute in enumerate(dataset.attributes):
            if attribute.is_nominal:
                self._nominal_log_likelihoods.append(nominal_tables[col])
                self._gaussian_params.append(None)
            else:
                column = dataset.X[:, col]
                params = np.zeros((n_classes, 2), dtype=np.float64)
                overall_std = max(float(column.std()), _MIN_STD)
                for klass in range(n_classes):
                    members = column[class_members[klass]]
                    if members.size:
                        params[klass, 0] = float(members.mean())
                        params[klass, 1] = max(float(members.std()), _MIN_STD)
                    else:
                        params[klass, 0] = float(column.mean())
                        params[klass, 1] = overall_std
                self._gaussian_params.append(params)
                self._nominal_log_likelihoods.append(None)

        self._class_names = dataset.class_names
        self._fitted = True
        return self

    def _log_posterior(self, dataset: MLDataset) -> np.ndarray:
        self._check_fitted()
        if dataset.attributes != self._attributes:
            raise DatasetError("dataset schema differs from the one used to fit")
        n = len(dataset)
        scores = np.tile(self._priors, (n, 1))
        for col, attribute in enumerate(dataset.attributes):
            column = dataset.X[:, col]
            if attribute.is_nominal:
                table = self._nominal_log_likelihoods[col]
                scores += table[:, dataset.codes(col)].T
            else:
                params = self._gaussian_params[col]
                means = params[:, 0][np.newaxis, :]
                stds = params[:, 1][np.newaxis, :]
                x = column[:, np.newaxis]
                scores += (
                    -0.5 * np.log(2.0 * np.pi * stds**2)
                    - 0.5 * ((x - means) / stds) ** 2
                )
        return scores

    def predict_proba(self, dataset: MLDataset) -> np.ndarray:
        """Posterior class probabilities, one row per instance."""
        scores = self._log_posterior(dataset)
        scores -= scores.max(axis=1, keepdims=True)
        probabilities = np.exp(scores)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities

    def predict(self, dataset: MLDataset) -> np.ndarray:
        return np.argmax(self._log_posterior(dataset), axis=1)
