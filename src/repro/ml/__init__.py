"""From-scratch machine-learning substrate (Weka stand-in).

The paper runs Weka classifiers over ARFF exports of the symbolic and raw
data; in this offline reproduction the same roles are played by:

* :class:`NaiveBayesClassifier` — Weka ``NaiveBayes``.
* :class:`DecisionTreeClassifier` — Weka ``J48`` (C4.5).
* :class:`RandomForestClassifier` — Weka ``RandomForest``.
* :class:`LogisticRegressionClassifier` — Weka ``Logistic``.
* :class:`KernelSVR` / :class:`LinearSVR` — Weka SVM-for-regression.

plus the :class:`MLDataset` attribute/instance table, evaluation metrics and
the 10-fold cross-validation harness.
"""

from .arff import from_arff, read_arff, to_arff, write_arff
from .base import Classifier, Regressor
from .crossval import CrossValidationResult, cross_validate, stratified_folds
from .dataset import Attribute, MLDataset, train_test_split
from .forest import RandomForestClassifier
from .logistic import LogisticRegressionClassifier
from .metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    mean_absolute_error,
    mean_absolute_percentage_error,
    precision_recall_f1,
    root_mean_squared_error,
    weighted_f_measure,
)
from .naive_bayes import NaiveBayesClassifier
from .svr import KernelSVR, LinearSVR
from .tree import DecisionTreeClassifier

__all__ = [
    "Attribute",
    "ClassificationReport",
    "Classifier",
    "CrossValidationResult",
    "DecisionTreeClassifier",
    "KernelSVR",
    "LinearSVR",
    "LogisticRegressionClassifier",
    "MLDataset",
    "NaiveBayesClassifier",
    "RandomForestClassifier",
    "Regressor",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "cross_validate",
    "from_arff",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "precision_recall_f1",
    "read_arff",
    "root_mean_squared_error",
    "stratified_folds",
    "to_arff",
    "train_test_split",
    "weighted_f_measure",
    "write_arff",
]

#: Module-level factory functions (not lambdas) so they pickle by reference —
#: the fold-parallel cross-validation path ships them to worker processes.
def make_random_forest() -> RandomForestClassifier:
    """The Table 1 Random Forest configuration (25 trees, seed 1)."""
    return RandomForestClassifier(n_trees=25, random_state=1)


def make_j48() -> DecisionTreeClassifier:
    """The Table 1 J48 stand-in (gain-ratio tree, min split 4)."""
    return DecisionTreeClassifier(min_samples_split=4)


def make_naive_bayes() -> NaiveBayesClassifier:
    """The Table 1 Naive Bayes configuration."""
    return NaiveBayesClassifier()


def make_logistic() -> LogisticRegressionClassifier:
    """The Table 1 Logistic configuration."""
    return LogisticRegressionClassifier()


#: Mapping from the paper's classifier names to factory callables, used by the
#: experiment grid so Table 1 columns can be addressed by name.
CLASSIFIER_FACTORIES = {
    "random_forest": make_random_forest,
    "j48": make_j48,
    "naive_bayes": make_naive_bayes,
    "logistic": make_logistic,
}

__all__.append("CLASSIFIER_FACTORIES")
