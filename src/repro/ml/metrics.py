"""Evaluation metrics used by the paper's experiments.

Classification is scored with the *weighted F-measure* (the harmonic mean of
precision and recall per class, averaged with class-support weights), which
is what Weka reports and what the paper's Table 1 and Figures 5–7 plot.
Forecasting is scored with the mean absolute error (MAE) of Figures 8–9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import DatasetError

__all__ = [
    "confusion_matrix",
    "precision_recall_f1",
    "weighted_f_measure",
    "accuracy",
    "ClassificationReport",
    "classification_report",
    "mean_absolute_error",
    "root_mean_squared_error",
    "mean_absolute_percentage_error",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise DatasetError("cannot score empty predictions")


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = instances of class ``i`` predicted ``j``."""
    t = np.asarray(y_true, dtype=np.int64)
    p = np.asarray(y_pred, dtype=np.int64)
    _validate(t, p)
    k = n_classes or int(max(t.max(), p.max())) + 1
    return np.bincount(t * k + p, minlength=k * k).reshape(k, k)


def precision_recall_f1(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2.0 * precision * recall / denominator, 0.0)
    return {"precision": precision, "recall": recall, "f1": f1, "support": actual}


def weighted_f_measure(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: Optional[int] = None
) -> float:
    """Support-weighted mean of per-class F1 (Weka's "Weighted Avg. F-Measure")."""
    scores = precision_recall_f1(y_true, y_pred, n_classes)
    support = scores["support"]
    total = support.sum()
    if total == 0:
        return 0.0
    return float((scores["f1"] * support).sum() / total)


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of correct predictions."""
    t = np.asarray(y_true, dtype=np.int64)
    p = np.asarray(y_pred, dtype=np.int64)
    _validate(t, p)
    return float((t == p).mean())


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the classification metrics the experiments report."""

    f_measure: float
    accuracy: float
    per_class_f1: List[float]
    confusion: np.ndarray

    def __str__(self) -> str:
        return (
            f"F-measure={self.f_measure:.3f} accuracy={self.accuracy:.3f} "
            f"classes={len(self.per_class_f1)}"
        )


def classification_report(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: Optional[int] = None
) -> ClassificationReport:
    """Weighted F-measure, accuracy, per-class F1 and the confusion matrix."""
    scores = precision_recall_f1(y_true, y_pred, n_classes)
    return ClassificationReport(
        f_measure=weighted_f_measure(y_true, y_pred, n_classes),
        accuracy=accuracy(y_true, y_pred),
        per_class_f1=[float(v) for v in scores["f1"]],
        confusion=confusion_matrix(y_true, y_pred, n_classes),
    )


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """MAE, the forecasting metric of Figures 8–9."""
    t = np.asarray(y_true, dtype=np.float64)
    p = np.asarray(y_pred, dtype=np.float64)
    _validate(t, p)
    return float(np.mean(np.abs(t - p)))


def root_mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """RMSE (reported alongside MAE in the extended experiments)."""
    t = np.asarray(y_true, dtype=np.float64)
    p = np.asarray(y_pred, dtype=np.float64)
    _validate(t, p)
    return float(np.sqrt(np.mean((t - p) ** 2)))


def mean_absolute_percentage_error(
    y_true: Sequence[float], y_pred: Sequence[float], epsilon: float = 1e-9
) -> float:
    """MAPE with an epsilon guard against zero true values."""
    t = np.asarray(y_true, dtype=np.float64)
    p = np.asarray(y_pred, dtype=np.float64)
    _validate(t, p)
    return float(np.mean(np.abs(t - p) / np.maximum(np.abs(t), epsilon)))
