"""ARFF import/export for :class:`~repro.ml.dataset.MLDataset`.

The paper runs its classifiers through Weka, whose native input format is
ARFF.  This module lets the day vectors produced by
:mod:`repro.analytics.vectors` be exported to ARFF (so the reproduction's
inputs can be fed to real Weka for cross-checking) and read back.

Only the subset of ARFF the experiments need is supported: nominal and
numeric attributes, a nominal class attribute in the last position, and
dense data rows.  Sparse rows, string/date attributes and instance weights
are out of scope.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from ..errors import DatasetError
from .dataset import Attribute, MLDataset

__all__ = ["to_arff", "from_arff", "write_arff", "read_arff"]

_CLASS_ATTRIBUTE = "class"


def _quote(name: str) -> str:
    """Quote an identifier if it contains ARFF-significant characters."""
    if any(ch in name for ch in " ,{}%'\""):
        escaped = name.replace("'", "\\'")
        return f"'{escaped}'"
    return name


def to_arff(dataset: MLDataset, relation: str = "repro") -> str:
    """Render ``dataset`` as an ARFF document (class attribute last)."""
    lines: List[str] = [f"@relation {_quote(relation)}", ""]
    for attribute in dataset.attributes:
        if attribute.is_nominal:
            categories = ",".join(_quote(c) for c in attribute.categories)
            lines.append(f"@attribute {_quote(attribute.name)} {{{categories}}}")
        else:
            lines.append(f"@attribute {_quote(attribute.name)} numeric")
    classes = ",".join(_quote(c) for c in dataset.class_names)
    lines.append(f"@attribute {_quote(_CLASS_ATTRIBUTE)} {{{classes}}}")
    lines.append("")
    lines.append("@data")
    for row, label_index in zip(dataset.X, dataset.y):
        cells: List[str] = []
        for value, attribute in zip(row, dataset.attributes):
            if attribute.is_nominal:
                cells.append(_quote(attribute.categories[int(value)]))
            else:
                cells.append(repr(float(value)))
        cells.append(_quote(dataset.class_names[int(label_index)]))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def write_arff(dataset: MLDataset, path: Union[str, Path], relation: str = "repro") -> Path:
    """Write :func:`to_arff` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_arff(dataset, relation=relation))
    return path


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] == "'":
        return token[1:-1].replace("\\'", "'")
    return token


def _split_csv(line: str) -> List[str]:
    """Split a data row on commas, honouring single-quoted cells."""
    cells: List[str] = []
    current: List[str] = []
    in_quotes = False
    for ch in line:
        if ch == "'":
            in_quotes = not in_quotes
            current.append(ch)
        elif ch == "," and not in_quotes:
            cells.append("".join(current))
            current = []
        else:
            current.append(ch)
    cells.append("".join(current))
    return cells


def _parse_attribute(line: str) -> Tuple[str, Union[str, List[str]]]:
    body = line[len("@attribute"):].strip()
    if body.startswith("'"):
        end = body.index("'", 1)
        name = body[1:end]
        rest = body[end + 1:].strip()
    else:
        name, _, rest = body.partition(" ")
        rest = rest.strip()
    if rest.lower() in ("numeric", "real", "integer"):
        return name, "numeric"
    if rest.startswith("{") and rest.endswith("}"):
        categories = [_unquote(c) for c in _split_csv(rest[1:-1])]
        return name, categories
    raise DatasetError(f"unsupported ARFF attribute declaration: {line!r}")


def from_arff(text: str) -> MLDataset:
    """Parse an ARFF document produced by :func:`to_arff` (or equivalent)."""
    attributes: List[Tuple[str, Union[str, List[str]]]] = []
    data_lines: List[str] = []
    in_data = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if lowered.startswith("@relation"):
            continue
        if lowered.startswith("@attribute"):
            attributes.append(_parse_attribute(line))
            continue
        if lowered.startswith("@data"):
            in_data = True
            continue
        if in_data:
            data_lines.append(line)

    if not attributes:
        raise DatasetError("ARFF document declares no attributes")
    class_name, class_spec = attributes[-1]
    if class_spec == "numeric":
        raise DatasetError("the last (class) attribute must be nominal")
    feature_specs = attributes[:-1]

    schema: List[Attribute] = []
    for name, spec in feature_specs:
        if spec == "numeric":
            schema.append(Attribute.numeric(name))
        else:
            schema.append(Attribute.nominal(name, spec))

    rows: List[List[float]] = []
    labels: List[str] = []
    for line in data_lines:
        cells = [_unquote(c) for c in _split_csv(line)]
        if len(cells) != len(attributes):
            raise DatasetError(
                f"row has {len(cells)} cells but {len(attributes)} attributes: {line!r}"
            )
        row: List[float] = []
        for cell, attribute in zip(cells[:-1], schema):
            if attribute.is_nominal:
                row.append(float(attribute.index_of(cell)))
            else:
                row.append(float(cell))
        rows.append(row)
        labels.append(cells[-1])

    matrix = np.asarray(rows, dtype=np.float64) if rows else np.zeros((0, len(schema)))
    return MLDataset(schema, matrix, labels, class_names=class_spec)


def read_arff(path: Union[str, Path]) -> MLDataset:
    """Read an ARFF file from disk."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    return from_arff(path.read_text())
