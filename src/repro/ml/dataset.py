"""Attribute/instance tables for the from-scratch learners (Weka stand-in).

The paper feeds Weka ARFF files whose attributes are either *nominal* (the
symbols) or *numeric* (aggregated raw values).  :class:`MLDataset` plays the
same role here: a fixed schema of :class:`Attribute` objects plus a dense
float matrix where nominal values are stored as category indices.  All
classifiers in :mod:`repro.ml` consume this type, so the same pipeline code
runs on symbolic and raw data — one of the paper's selling points.

Beyond the raw matrix, a dataset lazily materialises *columnar caches* that
the vectorized learners share: per-column nominal code vectors, presorted
numeric columns (argsort index + rank arrays), the one-hot expansion and the
class histogram.  :meth:`MLDataset.subset` translates whatever caches exist
onto the child instead of recomputing them, so cross-validation folds and
random-forest bootstrap samples reuse one presort of the full table.  The
instance matrix is treated as immutable once constructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DatasetError

__all__ = ["Attribute", "MLDataset", "train_test_split"]

NOMINAL = "nominal"
NUMERIC = "numeric"


@dataclass(frozen=True)
class Attribute:
    """Schema of one column: a name, a kind and (for nominal) its categories."""

    name: str
    kind: str = NUMERIC
    categories: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (NOMINAL, NUMERIC):
            raise DatasetError(f"attribute kind must be nominal or numeric, got {self.kind!r}")
        if self.kind == NOMINAL and not self.categories:
            raise DatasetError(f"nominal attribute {self.name!r} needs categories")
        if self.kind == NUMERIC and self.categories:
            raise DatasetError(f"numeric attribute {self.name!r} cannot have categories")

    @property
    def is_nominal(self) -> bool:
        return self.kind == NOMINAL

    @property
    def n_categories(self) -> int:
        return len(self.categories)

    def index_of(self, category: str) -> int:
        """Category index of ``category`` (raises for unknown values)."""
        try:
            return self.categories.index(category)
        except ValueError:
            raise DatasetError(
                f"value {category!r} is not a category of attribute {self.name!r}"
            ) from None

    @staticmethod
    def nominal(name: str, categories: Sequence[str]) -> "Attribute":
        """Convenience constructor for a nominal attribute."""
        return Attribute(name=name, kind=NOMINAL, categories=tuple(categories))

    @staticmethod
    def numeric(name: str) -> "Attribute":
        """Convenience constructor for a numeric attribute."""
        return Attribute(name=name, kind=NUMERIC)


class MLDataset:
    """A labelled table of instances with a mixed nominal/numeric schema.

    Parameters
    ----------
    attributes:
        Column schema.
    X:
        ``(n_instances, n_attributes)`` float matrix.  Nominal columns hold
        category indices (0-based floats).
    y:
        Class labels, one per instance; stored as indices into
        ``class_names``.
    class_names:
        Ordered class labels.  When omitted they are derived from ``y``.
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        X: Union[Sequence[Sequence[float]], np.ndarray],
        y: Sequence,
        class_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim != 2:
            raise DatasetError("X must be a 2-D matrix")
        if matrix.shape[1] != len(self.attributes):
            raise DatasetError(
                f"X has {matrix.shape[1]} columns but {len(self.attributes)} attributes"
            )
        labels = list(y)
        if matrix.shape[0] != len(labels):
            raise DatasetError(
                f"X has {matrix.shape[0]} rows but {len(labels)} labels"
            )
        if class_names is None:
            names = sorted({str(label) for label in labels})
        else:
            names = [str(n) for n in class_names]
        self.class_names: Tuple[str, ...] = tuple(names)
        index = {name: i for i, name in enumerate(self.class_names)}
        try:
            self.y = np.asarray([index[str(label)] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise DatasetError(f"label {exc} not in class_names {self.class_names}") from None
        self.X = matrix
        self._init_caches()
        self._validate_nominal_ranges()

    def _init_caches(self) -> None:
        self._codes_T: Optional[np.ndarray] = None  # (n_nominal, n) codes
        self._orders_T: Optional[np.ndarray] = None  # (n_numeric, n) argsorts
        self._ranks_T: Optional[np.ndarray] = None  # inverse of _orders_T
        self._one_hot_cache: Optional[np.ndarray] = None
        self._class_counts_cache: Optional[np.ndarray] = None
        self._nominal_cols: Optional[np.ndarray] = None
        self._numeric_cols: Optional[np.ndarray] = None
        self._column_row: Optional[np.ndarray] = None
        self._max_categories: Optional[int] = None
        self._fold_memo: Dict[Tuple[int, int], object] = {}

    @classmethod
    def _from_parts(
        cls,
        attributes: Tuple[Attribute, ...],
        X: np.ndarray,
        y: np.ndarray,
        class_names: Tuple[str, ...],
    ) -> "MLDataset":
        """Internal fast constructor for rows already validated by a parent.

        Skips the label round-trip and nominal-range re-validation of
        ``__init__`` — safe only when ``X``/``y`` are drawn from an existing
        dataset with the same schema (subset, merge, shuffle).
        """
        dataset = cls.__new__(cls)
        dataset.attributes = attributes
        dataset.class_names = class_names
        dataset.X = X
        dataset.y = y
        dataset._init_caches()
        return dataset

    def _validate_nominal_ranges(self) -> None:
        for col, attribute in enumerate(self.attributes):
            if not attribute.is_nominal or self.X.shape[0] == 0:
                continue
            column = self.X[:, col]
            if np.any(column < 0) or np.any(column >= attribute.n_categories):
                raise DatasetError(
                    f"column {attribute.name!r} holds indices outside "
                    f"[0, {attribute.n_categories})"
                )
            if np.any(column != np.round(column)):
                raise DatasetError(
                    f"nominal column {attribute.name!r} holds non-integer codes"
                )

    # -- protocol -----------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def __repr__(self) -> str:
        return (
            f"MLDataset(instances={len(self)}, attributes={len(self.attributes)}, "
            f"classes={len(self.class_names)})"
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> np.ndarray:
        """Number of instances per class (aligned with ``class_names``)."""
        if self._class_counts_cache is None:
            self._class_counts_cache = np.bincount(self.y, minlength=self.n_classes)
        return self._class_counts_cache.copy()

    def label_of(self, index: int) -> str:
        """Class name of instance ``index``."""
        return self.class_names[int(self.y[index])]

    # -- columnar caches ----------------------------------------------------------

    def _column_split(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Nominal/numeric column index arrays plus a col -> cache-row map."""
        if self._nominal_cols is None:
            nominal = [c for c, a in enumerate(self.attributes) if a.is_nominal]
            numeric = [c for c, a in enumerate(self.attributes) if not a.is_nominal]
            self._nominal_cols = np.asarray(nominal, dtype=np.int64)
            self._numeric_cols = np.asarray(numeric, dtype=np.int64)
            row = np.zeros(len(self.attributes), dtype=np.int64)
            row[self._nominal_cols] = np.arange(len(nominal))
            row[self._numeric_cols] = np.arange(len(numeric))
            self._column_row = row
        return self._nominal_cols, self._numeric_cols, self._column_row

    @property
    def nominal_columns(self) -> np.ndarray:
        """Indices of the nominal attributes."""
        return self._column_split()[0]

    @property
    def numeric_columns(self) -> np.ndarray:
        """Indices of the numeric attributes."""
        return self._column_split()[1]

    @property
    def max_categories(self) -> int:
        """Largest nominal category count of the schema (0 if all numeric)."""
        if self._max_categories is None:
            self._max_categories = max(
                (a.n_categories for a in self.attributes if a.is_nominal), default=0
            )
        return self._max_categories

    def codes_matrix(self) -> np.ndarray:
        """``(n_nominal, n)`` integer code matrix, one row per nominal column."""
        if self._codes_T is None:
            nominal, _, _ = self._column_split()
            self._codes_T = self.X.T[nominal].astype(np.int64)
        return self._codes_T

    def orders_matrix(self) -> np.ndarray:
        """``(n_numeric, n)`` stable argsorts, one row per numeric column."""
        if self._orders_T is None:
            _, numeric, _ = self._column_split()
            self._orders_T = np.argsort(self.X.T[numeric], axis=1, kind="stable")
        return self._orders_T

    def _ranks_matrix(self) -> np.ndarray:
        """Inverse permutations of :meth:`orders_matrix` (row -> position)."""
        if self._ranks_T is None:
            orders = self.orders_matrix()
            ranks = np.empty_like(orders)
            width = np.arange(orders.shape[1], dtype=np.int64)
            for row in range(orders.shape[0]):
                ranks[row, orders[row]] = width
            self._ranks_T = ranks
        return self._ranks_T

    def codes(self, col: int) -> np.ndarray:
        """Integer category codes of nominal column ``col`` (cached)."""
        return self.codes_matrix()[self._column_row[col]]

    def sort_order(self, col: int) -> np.ndarray:
        """Stable argsort of column ``col`` (cached; the split-search presort)."""
        return self.orders_matrix()[self._column_row[col]]

    def warm_columnar_cache(self) -> None:
        """Materialise every per-column cache on this dataset.

        Cross-validation and bagging call this once on the full table;
        :meth:`subset` then *translates* the presorted orders and code
        matrices onto folds and bootstrap samples instead of re-sorting.
        """
        _ = self.max_categories
        if self.nominal_columns.size:
            self.codes_matrix()
        if self.numeric_columns.size:
            self._ranks_matrix()

    def cv_splits(self, n_folds: int, seed: int, factory):
        """Memoised cross-validation state keyed by ``(n_folds, seed)``.

        ``factory`` builds the (folds, train/test datasets) bundle on a
        miss; it is deterministic in the key, so evaluating several
        classifiers on this table shares one presort + subset translation.
        The memo is bounded so repeated CV over many seeds cannot pin an
        unbounded number of split copies.
        """
        key = (int(n_folds), int(seed))
        cached = self._fold_memo.get(key)
        if cached is None:
            if len(self._fold_memo) >= 4:
                self._fold_memo.clear()
            cached = factory()
            self._fold_memo[key] = cached
        return cached

    # -- manipulation ----------------------------------------------------------------

    def subset(self, indices: Union[Sequence[int], np.ndarray]) -> "MLDataset":
        """Dataset restricted to the given instance indices (order preserved).

        Columnar caches already materialised on the parent are translated to
        the child: nominal codes by gathering, numeric presorts by ranking
        the selected rows (stable, so duplicated bootstrap rows stay in a
        valid sorted order) — no re-sorting, no re-validation.
        """
        idx = np.asarray(indices, dtype=np.int64)
        child = MLDataset._from_parts(
            self.attributes, self.X[idx], self.y[idx], self.class_names
        )
        child._nominal_cols = self._nominal_cols
        child._numeric_cols = self._numeric_cols
        child._column_row = self._column_row
        child._max_categories = self._max_categories
        if self._codes_T is not None:
            child._codes_T = self._codes_T[:, idx]
        if self._orders_T is not None:
            child._orders_T = np.argsort(
                self._ranks_matrix()[:, idx], axis=1, kind="stable"
            )
        if self._one_hot_cache is not None:
            child._one_hot_cache = self._one_hot_cache[idx]
            child._one_hot_cache.setflags(write=False)
        return child

    def shuffled(self, rng: np.random.Generator) -> "MLDataset":
        """Random permutation of the instances."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def merge(self, other: "MLDataset") -> "MLDataset":
        """Concatenate two datasets sharing the same schema and classes."""
        if self.attributes != other.attributes:
            raise DatasetError("cannot merge datasets with different schemas")
        if self.class_names != other.class_names:
            raise DatasetError("cannot merge datasets with different class names")
        return MLDataset._from_parts(
            self.attributes,
            np.vstack([self.X, other.X]),
            np.concatenate([self.y, other.y]),
            self.class_names,
        )

    def one_hot(self) -> np.ndarray:
        """Expand nominal columns into one-hot indicators (for logistic/SVR).

        Numeric columns are passed through unchanged.  The expansion order is
        column-major: all indicators of attribute 0 first, and so on.  The
        result is cached (and row-sliced through :meth:`subset`); treat it as
        read-only.
        """
        if self._one_hot_cache is not None:
            return self._one_hot_cache
        blocks: List[np.ndarray] = []
        for col, attribute in enumerate(self.attributes):
            column = self.X[:, col]
            if attribute.is_nominal:
                block = np.zeros((len(self), attribute.n_categories), dtype=np.float64)
                block[np.arange(len(self)), self.codes(col)] = 1.0
                blocks.append(block)
            else:
                blocks.append(column.reshape(-1, 1))
        if not blocks:
            expanded = np.zeros((len(self), 0), dtype=np.float64)
        else:
            expanded = np.hstack(blocks)
        expanded.setflags(write=False)
        self._one_hot_cache = expanded
        return expanded


def train_test_split(
    dataset: MLDataset,
    test_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    stratified: bool = True,
) -> Tuple[MLDataset, MLDataset]:
    """Split into train and test subsets.

    Stratified splitting keeps the per-class proportions, which matters for
    the small per-house day counts of the REDD-like data.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    if n < 2:
        raise DatasetError("need at least two instances to split")

    if stratified:
        test_indices: List[int] = []
        for klass in range(dataset.n_classes):
            members = np.nonzero(dataset.y == klass)[0]
            members = rng.permutation(members)
            n_test = int(round(len(members) * test_fraction))
            test_indices.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_indices] = True
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True

    train = dataset.subset(np.nonzero(~test_mask)[0])
    test = dataset.subset(np.nonzero(test_mask)[0])
    return train, test
