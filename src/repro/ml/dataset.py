"""Attribute/instance tables for the from-scratch learners (Weka stand-in).

The paper feeds Weka ARFF files whose attributes are either *nominal* (the
symbols) or *numeric* (aggregated raw values).  :class:`MLDataset` plays the
same role here: a fixed schema of :class:`Attribute` objects plus a dense
float matrix where nominal values are stored as category indices.  All
classifiers in :mod:`repro.ml` consume this type, so the same pipeline code
runs on symbolic and raw data — one of the paper's selling points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DatasetError

__all__ = ["Attribute", "MLDataset", "train_test_split"]

NOMINAL = "nominal"
NUMERIC = "numeric"


@dataclass(frozen=True)
class Attribute:
    """Schema of one column: a name, a kind and (for nominal) its categories."""

    name: str
    kind: str = NUMERIC
    categories: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (NOMINAL, NUMERIC):
            raise DatasetError(f"attribute kind must be nominal or numeric, got {self.kind!r}")
        if self.kind == NOMINAL and not self.categories:
            raise DatasetError(f"nominal attribute {self.name!r} needs categories")
        if self.kind == NUMERIC and self.categories:
            raise DatasetError(f"numeric attribute {self.name!r} cannot have categories")

    @property
    def is_nominal(self) -> bool:
        return self.kind == NOMINAL

    @property
    def n_categories(self) -> int:
        return len(self.categories)

    def index_of(self, category: str) -> int:
        """Category index of ``category`` (raises for unknown values)."""
        try:
            return self.categories.index(category)
        except ValueError:
            raise DatasetError(
                f"value {category!r} is not a category of attribute {self.name!r}"
            ) from None

    @staticmethod
    def nominal(name: str, categories: Sequence[str]) -> "Attribute":
        """Convenience constructor for a nominal attribute."""
        return Attribute(name=name, kind=NOMINAL, categories=tuple(categories))

    @staticmethod
    def numeric(name: str) -> "Attribute":
        """Convenience constructor for a numeric attribute."""
        return Attribute(name=name, kind=NUMERIC)


class MLDataset:
    """A labelled table of instances with a mixed nominal/numeric schema.

    Parameters
    ----------
    attributes:
        Column schema.
    X:
        ``(n_instances, n_attributes)`` float matrix.  Nominal columns hold
        category indices (0-based floats).
    y:
        Class labels, one per instance; stored as indices into
        ``class_names``.
    class_names:
        Ordered class labels.  When omitted they are derived from ``y``.
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        X: Union[Sequence[Sequence[float]], np.ndarray],
        y: Sequence,
        class_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim != 2:
            raise DatasetError("X must be a 2-D matrix")
        if matrix.shape[1] != len(self.attributes):
            raise DatasetError(
                f"X has {matrix.shape[1]} columns but {len(self.attributes)} attributes"
            )
        labels = list(y)
        if matrix.shape[0] != len(labels):
            raise DatasetError(
                f"X has {matrix.shape[0]} rows but {len(labels)} labels"
            )
        if class_names is None:
            names = sorted({str(label) for label in labels})
        else:
            names = [str(n) for n in class_names]
        self.class_names: Tuple[str, ...] = tuple(names)
        index = {name: i for i, name in enumerate(self.class_names)}
        try:
            self.y = np.asarray([index[str(label)] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise DatasetError(f"label {exc} not in class_names {self.class_names}") from None
        self.X = matrix
        self._validate_nominal_ranges()

    def _validate_nominal_ranges(self) -> None:
        for col, attribute in enumerate(self.attributes):
            if not attribute.is_nominal or self.X.shape[0] == 0:
                continue
            column = self.X[:, col]
            if np.any(column < 0) or np.any(column >= attribute.n_categories):
                raise DatasetError(
                    f"column {attribute.name!r} holds indices outside "
                    f"[0, {attribute.n_categories})"
                )
            if np.any(column != np.round(column)):
                raise DatasetError(
                    f"nominal column {attribute.name!r} holds non-integer codes"
                )

    # -- protocol -----------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def __repr__(self) -> str:
        return (
            f"MLDataset(instances={len(self)}, attributes={len(self.attributes)}, "
            f"classes={len(self.class_names)})"
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> np.ndarray:
        """Number of instances per class (aligned with ``class_names``)."""
        return np.bincount(self.y, minlength=self.n_classes)

    def label_of(self, index: int) -> str:
        """Class name of instance ``index``."""
        return self.class_names[int(self.y[index])]

    # -- manipulation ----------------------------------------------------------------

    def subset(self, indices: Union[Sequence[int], np.ndarray]) -> "MLDataset":
        """Dataset restricted to the given instance indices (order preserved)."""
        idx = np.asarray(indices, dtype=np.int64)
        labels = [self.class_names[i] for i in self.y[idx]]
        return MLDataset(self.attributes, self.X[idx], labels, class_names=self.class_names)

    def shuffled(self, rng: np.random.Generator) -> "MLDataset":
        """Random permutation of the instances."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def merge(self, other: "MLDataset") -> "MLDataset":
        """Concatenate two datasets sharing the same schema and classes."""
        if self.attributes != other.attributes:
            raise DatasetError("cannot merge datasets with different schemas")
        if self.class_names != other.class_names:
            raise DatasetError("cannot merge datasets with different class names")
        labels = [self.class_names[i] for i in self.y] + [
            other.class_names[i] for i in other.y
        ]
        return MLDataset(
            self.attributes,
            np.vstack([self.X, other.X]),
            labels,
            class_names=self.class_names,
        )

    def one_hot(self) -> np.ndarray:
        """Expand nominal columns into one-hot indicators (for logistic/SVR).

        Numeric columns are passed through unchanged.  The expansion order is
        column-major: all indicators of attribute 0 first, and so on.
        """
        blocks: List[np.ndarray] = []
        for col, attribute in enumerate(self.attributes):
            column = self.X[:, col]
            if attribute.is_nominal:
                block = np.zeros((len(self), attribute.n_categories), dtype=np.float64)
                block[np.arange(len(self)), column.astype(np.int64)] = 1.0
                blocks.append(block)
            else:
                blocks.append(column.reshape(-1, 1))
        if not blocks:
            return np.zeros((len(self), 0), dtype=np.float64)
        return np.hstack(blocks)


def train_test_split(
    dataset: MLDataset,
    test_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    stratified: bool = True,
) -> Tuple[MLDataset, MLDataset]:
    """Split into train and test subsets.

    Stratified splitting keeps the per-class proportions, which matters for
    the small per-house day counts of the REDD-like data.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    if n < 2:
        raise DatasetError("need at least two instances to split")

    if stratified:
        test_indices: List[int] = []
        for klass in range(dataset.n_classes):
            members = np.nonzero(dataset.y == klass)[0]
            members = rng.permutation(members)
            n_test = int(round(len(members) * test_fraction))
            test_indices.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_indices] = True
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True

    train = dataset.subset(np.nonzero(~test_mask)[0])
    test = dataset.subset(np.nonzero(test_mask)[0])
    return train, test
