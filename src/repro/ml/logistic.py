"""Multinomial logistic regression (the stand-in for Weka's ``Logistic``).

Nominal attributes are one-hot encoded and numeric attributes standardised;
the model is trained with full-batch gradient descent plus L2 regularisation,
which is robust for the small, low-dimensional day-vector datasets the paper
uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset

__all__ = ["LogisticRegressionClassifier"]


def _softmax(scores: np.ndarray) -> np.ndarray:
    scores = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(scores)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(Classifier):
    """L2-regularised multinomial logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iterations:
        Number of full-batch iterations.
    regularization:
        L2 penalty weight (Weka's ridge parameter).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        regularization: float = 1e-3,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise DatasetError("learning_rate must be positive")
        if n_iterations < 1:
            raise DatasetError("n_iterations must be >= 1")
        if regularization < 0:
            raise DatasetError("regularization must be non-negative")
        self.learning_rate = float(learning_rate)
        self.n_iterations = int(n_iterations)
        self.regularization = float(regularization)
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._attributes: tuple = ()

    def _design_matrix(self, dataset: MLDataset, fit_scaler: bool) -> np.ndarray:
        features = dataset.one_hot()
        if fit_scaler:
            self._mean = features.mean(axis=0)
            scale = features.std(axis=0)
            scale[scale < 1e-9] = 1.0
            self._scale = scale
        features = (features - self._mean) / self._scale
        bias = np.ones((features.shape[0], 1), dtype=np.float64)
        return np.hstack([bias, features])

    def fit(self, dataset: MLDataset) -> "LogisticRegressionClassifier":
        if len(dataset) == 0:
            raise DatasetError("cannot fit logistic regression on an empty dataset")
        self._attributes = dataset.attributes
        self._class_names = dataset.class_names
        X = self._design_matrix(dataset, fit_scaler=True)
        n, d = X.shape
        k = dataset.n_classes
        targets = np.zeros((n, k), dtype=np.float64)
        targets[np.arange(n), dataset.y] = 1.0

        if d <= n:
            weights = np.zeros((d, k), dtype=np.float64)
            for _ in range(self.n_iterations):
                probabilities = _softmax(X @ weights)
                gradient = X.T @ (probabilities - targets) / n
                gradient += self.regularization * weights
                weights -= self.learning_rate * gradient
        else:
            # Wide designs (one-hot symbol vectors: d >> n): gradient descent
            # from W=0 keeps W in the row space of X, so iterate on the
            # representer coefficients A with the (n, n) Gram matrix instead
            # of the (d, k) weights.  W_t = X^T A_t throughout:
            #   W <- W(1 - lr*reg) - (lr/n) X^T D   ==   A <- A(1 - lr*reg)
            #                                            - (lr/n) D.
            # One O(n^2 k) product per iteration instead of O(n d k).
            gram = X @ X.T
            coefficients = np.zeros((n, k), dtype=np.float64)
            shrink = 1.0 - self.learning_rate * self.regularization
            step = self.learning_rate / n
            for _ in range(self.n_iterations):
                # In-place softmax (same operation order as _softmax).
                scores = gram @ coefficients
                scores -= scores.max(axis=1, keepdims=True)
                np.exp(scores, out=scores)
                scores /= scores.sum(axis=1, keepdims=True)
                scores -= targets
                coefficients *= shrink
                coefficients -= step * scores
            weights = X.T @ coefficients
        self._weights = weights
        self._fitted = True
        return self

    def predict_proba(self, dataset: MLDataset) -> np.ndarray:
        """Class probabilities."""
        self._check_fitted()
        if dataset.attributes != self._attributes:
            raise DatasetError("dataset schema differs from the one used to fit")
        X = self._design_matrix(dataset, fit_scaler=False)
        return _softmax(X @ self._weights)

    def predict(self, dataset: MLDataset) -> np.ndarray:
        return np.argmax(self.predict_proba(dataset), axis=1)
