"""k-fold cross-validation with timing (the paper's evaluation protocol).

The paper evaluates every classifier with 10-fold cross-validation and also
reports processing time (Figures 5–7 plot both).  :func:`cross_validate`
reproduces that protocol: stratified folds, per-fold fit/predict timing, and
pooled predictions so the weighted F-measure matches Weka's aggregation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset
from .metrics import classification_report, weighted_f_measure

__all__ = ["CrossValidationResult", "stratified_folds", "cross_validate"]


@dataclass
class CrossValidationResult:
    """Pooled predictions and timing over all folds."""

    f_measure: float
    accuracy: float
    fold_f_measures: List[float]
    fit_seconds: float
    predict_seconds: float
    n_folds: int

    @property
    def total_seconds(self) -> float:
        """Total processing time (fit + predict) over all folds."""
        return self.fit_seconds + self.predict_seconds

    def __str__(self) -> str:
        return (
            f"F-measure={self.f_measure:.3f} (±{np.std(self.fold_f_measures):.3f}) "
            f"time={self.total_seconds:.3f}s over {self.n_folds} folds"
        )


def stratified_folds(
    dataset: MLDataset, n_folds: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Return ``n_folds`` arrays of instance indices with balanced classes.

    Classes with fewer members than folds simply appear in fewer folds, which
    mirrors Weka's behaviour on tiny classes.
    """
    if n_folds < 2:
        raise DatasetError("n_folds must be >= 2")
    if len(dataset) < n_folds:
        raise DatasetError(
            f"cannot make {n_folds} folds from {len(dataset)} instances"
        )
    rng = rng or np.random.default_rng(0)
    # Concatenate per-class permutations, deal round-robin, then group the
    # instances by fold with a single stable argsort (ascending inside each
    # fold).  Identical assignments to the original per-instance loop.
    permuted = [
        rng.permutation(np.nonzero(dataset.y == klass)[0])
        for klass in range(dataset.n_classes)
    ]
    dealt = np.concatenate(permuted)
    fold_of = np.empty(len(dataset), dtype=np.int64)
    fold_of[dealt] = np.arange(len(dealt), dtype=np.int64) % n_folds
    grouped = np.argsort(fold_of, kind="stable")
    sizes = np.bincount(fold_of, minlength=n_folds)
    folds = np.split(grouped, np.cumsum(sizes)[:-1])
    return [fold for fold in folds if fold.size]


def _evaluate_fold(task) -> tuple:
    """Fit/score one fold (module-level so the parallel path can pickle it).

    Returns everything the caller needs to merge folds in order: the fold's
    true labels, predictions, weighted F-measure and fit/predict timings.
    """
    train, test, classifier_factory, n_classes = task
    classifier = classifier_factory()

    started = time.perf_counter()
    classifier.fit(train)
    fit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    predictions = classifier.predict(test)
    predict_seconds = time.perf_counter() - started

    return (
        test.y.tolist(),
        [int(p) for p in predictions],
        weighted_f_measure(test.y, predictions, n_classes=n_classes),
        fit_seconds,
        predict_seconds,
    )


def cross_validate(
    classifier_factory: Callable[[], Classifier],
    dataset: MLDataset,
    n_folds: int = 10,
    seed: int = 0,
    workers: int = 1,
) -> CrossValidationResult:
    """Stratified k-fold cross-validation with timing.

    ``classifier_factory`` must return a *fresh* classifier per call so folds
    never leak fitted state into each other.

    ``workers > 1`` evaluates the folds in a process pool (one fold per
    task); fold construction stays in the parent, fold results merge in fold
    order, and every score is bit-identical to the serial run — only the
    timing fields reflect where each fold actually ran.  The factory must
    then be picklable (the named factories in
    :data:`repro.ml.CLASSIFIER_FACTORIES` all are).
    """
    def build_splits():
        rng = np.random.default_rng(seed)
        folds = stratified_folds(dataset, n_folds, rng)
        all_indices = np.arange(len(dataset))
        # Presort/encode the full table once; every train/test fold below
        # inherits the columnar caches by translation (no per-fold
        # re-sorting).
        dataset.warm_columnar_cache()
        splits = []
        for fold in folds:
            test_mask = np.zeros(len(dataset), dtype=bool)
            test_mask[fold] = True
            splits.append(
                (dataset.subset(all_indices[~test_mask]),
                 dataset.subset(all_indices[test_mask]))
            )
        return folds, splits

    # Fold construction is deterministic in (n_folds, seed), so the split
    # datasets are memoised on the table: evaluating several classifiers on
    # the same day vectors (one Table 1 row) shares one presort + subset
    # translation instead of rebuilding the folds per cell.
    folds, splits = dataset.cv_splits(n_folds, seed, build_splits)

    tasks = [
        (train, test, classifier_factory, dataset.n_classes)
        for train, test in splits
    ]
    if workers == 1:
        outcomes = [_evaluate_fold(task) for task in tasks]
    else:
        from ..parallel.executor import ParallelExecutor

        with ParallelExecutor(workers) as executor:
            outcomes = executor.map(_evaluate_fold, tasks)

    pooled_true: List[int] = []
    pooled_pred: List[int] = []
    fold_scores: List[float] = []
    fit_seconds = 0.0
    predict_seconds = 0.0
    for fold_true, fold_pred, fold_f, fold_fit, fold_predict in outcomes:
        pooled_true.extend(fold_true)
        pooled_pred.extend(fold_pred)
        fold_scores.append(fold_f)
        fit_seconds += fold_fit
        predict_seconds += fold_predict

    report = classification_report(
        pooled_true, pooled_pred, n_classes=dataset.n_classes
    )
    return CrossValidationResult(
        f_measure=report.f_measure,
        accuracy=report.accuracy,
        fold_f_measures=fold_scores,
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        n_folds=len(folds),
    )
