"""k-fold cross-validation with timing (the paper's evaluation protocol).

The paper evaluates every classifier with 10-fold cross-validation and also
reports processing time (Figures 5–7 plot both).  :func:`cross_validate`
reproduces that protocol: stratified folds, per-fold fit/predict timing, and
pooled predictions so the weighted F-measure matches Weka's aggregation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset
from .metrics import classification_report, weighted_f_measure

__all__ = ["CrossValidationResult", "stratified_folds", "cross_validate"]


@dataclass
class CrossValidationResult:
    """Pooled predictions and timing over all folds."""

    f_measure: float
    accuracy: float
    fold_f_measures: List[float]
    fit_seconds: float
    predict_seconds: float
    n_folds: int

    @property
    def total_seconds(self) -> float:
        """Total processing time (fit + predict) over all folds."""
        return self.fit_seconds + self.predict_seconds

    def __str__(self) -> str:
        return (
            f"F-measure={self.f_measure:.3f} (±{np.std(self.fold_f_measures):.3f}) "
            f"time={self.total_seconds:.3f}s over {self.n_folds} folds"
        )


def stratified_folds(
    dataset: MLDataset, n_folds: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Return ``n_folds`` arrays of instance indices with balanced classes.

    Classes with fewer members than folds simply appear in fewer folds, which
    mirrors Weka's behaviour on tiny classes.
    """
    if n_folds < 2:
        raise DatasetError("n_folds must be >= 2")
    if len(dataset) < n_folds:
        raise DatasetError(
            f"cannot make {n_folds} folds from {len(dataset)} instances"
        )
    rng = rng or np.random.default_rng(0)
    folds: List[List[int]] = [[] for _ in range(n_folds)]
    cursor = 0
    for klass in range(dataset.n_classes):
        members = np.nonzero(dataset.y == klass)[0]
        members = rng.permutation(members)
        for index in members:
            folds[cursor % n_folds].append(int(index))
            cursor += 1
    return [np.asarray(sorted(fold), dtype=np.int64) for fold in folds if fold]


def cross_validate(
    classifier_factory: Callable[[], Classifier],
    dataset: MLDataset,
    n_folds: int = 10,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold cross-validation with timing.

    ``classifier_factory`` must return a *fresh* classifier per call so folds
    never leak fitted state into each other.
    """
    rng = np.random.default_rng(seed)
    folds = stratified_folds(dataset, n_folds, rng)
    all_indices = np.arange(len(dataset))

    pooled_true: List[int] = []
    pooled_pred: List[int] = []
    fold_scores: List[float] = []
    fit_seconds = 0.0
    predict_seconds = 0.0

    for fold in folds:
        test_mask = np.zeros(len(dataset), dtype=bool)
        test_mask[fold] = True
        train = dataset.subset(all_indices[~test_mask])
        test = dataset.subset(all_indices[test_mask])
        classifier = classifier_factory()

        started = time.perf_counter()
        classifier.fit(train)
        fit_seconds += time.perf_counter() - started

        started = time.perf_counter()
        predictions = classifier.predict(test)
        predict_seconds += time.perf_counter() - started

        pooled_true.extend(test.y.tolist())
        pooled_pred.extend(int(p) for p in predictions)
        fold_scores.append(
            weighted_f_measure(test.y, predictions, n_classes=dataset.n_classes)
        )

    report = classification_report(
        pooled_true, pooled_pred, n_classes=dataset.n_classes
    )
    return CrossValidationResult(
        f_measure=report.f_measure,
        accuracy=report.accuracy,
        fold_f_measures=fold_scores,
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        n_folds=len(folds),
    )
