"""Estimator interfaces shared by the from-scratch learners."""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from ..errors import NotFittedError
from .dataset import MLDataset

__all__ = ["Classifier", "Regressor"]


class Classifier(abc.ABC):
    """Interface of every classifier: ``fit`` on an :class:`MLDataset`,
    ``predict`` class indices, optionally ``predict_proba``."""

    def __init__(self) -> None:
        self._fitted = False
        self._class_names: tuple = ()

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def class_names(self) -> tuple:
        """Class labels seen during fitting."""
        return self._class_names

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")

    @abc.abstractmethod
    def fit(self, dataset: MLDataset) -> "Classifier":
        """Learn from ``dataset``; returns ``self``."""

    @abc.abstractmethod
    def predict(self, dataset: MLDataset) -> np.ndarray:
        """Predicted class indices for every instance of ``dataset``."""

    def predict_labels(self, dataset: MLDataset) -> List[str]:
        """Predicted class names."""
        self._check_fitted()
        return [self._class_names[int(i)] for i in self.predict(dataset)]


class Regressor(abc.ABC):
    """Interface of every regressor: plain NumPy feature matrices."""

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Learn from features ``X`` and targets ``y``; returns ``self``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for ``X``."""
