"""Support-vector regression (the raw-value forecasting baseline).

The paper forecasts real-valued residential load with Weka's SVM-for-
regression.  This module provides two regressors with the same role:

* :class:`LinearSVR` — ε-insensitive linear SVR trained with sub-gradient
  descent on the primal objective.
* :class:`KernelSVR` — ε-insensitive SVR with an RBF (or linear) kernel,
  trained with sub-gradient descent on the kernel expansion coefficients
  (representer-theorem parameterisation).  This is the default baseline used
  by the forecasting experiments.

Both standardise features and target internally, which matters because raw
load values span three orders of magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from .base import Regressor

__all__ = ["LinearSVR", "KernelSVR"]


def _standardize_fit(X: np.ndarray):
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale = np.where(scale < 1e-9, 1.0, scale)
    return mean, scale


class LinearSVR(Regressor):
    """Linear ε-insensitive support-vector regression (primal sub-gradient).

    Parameters
    ----------
    c:
        Inverse regularisation strength (larger = fit training data harder).
    epsilon:
        Width of the insensitive tube (in standardised target units).
    learning_rate, n_iterations:
        Optimisation hyper-parameters.
    """

    def __init__(
        self,
        c: float = 1.0,
        epsilon: float = 0.1,
        learning_rate: float = 0.01,
        n_iterations: int = 500,
    ) -> None:
        super().__init__()
        if c <= 0:
            raise DatasetError("c must be positive")
        if epsilon < 0:
            raise DatasetError("epsilon must be non-negative")
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.learning_rate = float(learning_rate)
        self.n_iterations = int(n_iterations)
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_scale = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVR":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise DatasetError("X must be (n, d) and y must be (n,)")
        if X.shape[0] == 0:
            raise DatasetError("cannot fit on an empty dataset")
        self._x_mean, self._x_scale = _standardize_fit(X)
        Xs = (X - self._x_mean) / self._x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale

        n, d = Xs.shape
        weights = np.zeros(d, dtype=np.float64)
        bias = 0.0
        for iteration in range(self.n_iterations):
            predictions = Xs @ weights + bias
            residuals = predictions - ys
            outside = np.abs(residuals) > self.epsilon
            # Sub-gradient of the epsilon-insensitive loss.
            signs = np.sign(residuals) * outside
            grad_w = weights / self.c + Xs.T @ signs / n
            grad_b = float(signs.mean())
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            weights -= step * grad_w
            bias -= step * grad_b
        self._weights = weights
        self._bias = bias
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        Xs = (X - self._x_mean) / self._x_scale
        ys = Xs @ self._weights + self._bias
        return ys * self._y_scale + self._y_mean


class KernelSVR(Regressor):
    """ε-insensitive SVR with an RBF or linear kernel.

    The predictor is ``f(x) = sum_i alpha_i K(x_i, x) + b`` and the alphas are
    optimised by sub-gradient descent on

    ``1/(2C) * alpha^T K alpha + mean_i loss_eps(f(x_i) - y_i)``.

    Parameters
    ----------
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF band-width; 0 selects ``1 / n_features``.
    """

    def __init__(
        self,
        c: float = 10.0,
        epsilon: float = 0.05,
        kernel: str = "rbf",
        gamma: float = 0.0,
        learning_rate: float = 0.05,
        n_iterations: int = 400,
    ) -> None:
        super().__init__()
        if kernel not in ("rbf", "linear"):
            raise DatasetError("kernel must be 'rbf' or 'linear'")
        if c <= 0:
            raise DatasetError("c must be positive")
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.kernel = kernel
        self.gamma = float(gamma)
        self.learning_rate = float(learning_rate)
        self.n_iterations = int(n_iterations)
        self._alphas: Optional[np.ndarray] = None
        self._bias = 0.0
        self._support: Optional[np.ndarray] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_scale = 1.0
        self._gamma_effective = 1.0

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        # RBF kernel via the squared-distance expansion.
        a2 = (A**2).sum(axis=1)[:, np.newaxis]
        b2 = (B**2).sum(axis=1)[np.newaxis, :]
        squared = a2 + b2 - 2.0 * (A @ B.T)
        np.clip(squared, 0.0, None, out=squared)
        return np.exp(-self._gamma_effective * squared)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelSVR":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise DatasetError("X must be (n, d) and y must be (n,)")
        if X.shape[0] == 0:
            raise DatasetError("cannot fit on an empty dataset")
        self._x_mean, self._x_scale = _standardize_fit(X)
        Xs = (X - self._x_mean) / self._x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale
        self._gamma_effective = self.gamma if self.gamma > 0 else 1.0 / max(X.shape[1], 1)

        n = Xs.shape[0]
        # The Gram matrix is computed once; every iteration below is pure
        # matrix algebra on it (no per-sample kernel evaluation), and the
        # K @ alphas product is shared between the prediction and the
        # regularisation gradient instead of being evaluated twice.
        K = self._kernel_matrix(Xs, Xs)
        alphas = np.zeros(n, dtype=np.float64)
        bias = 0.0
        for iteration in range(self.n_iterations):
            kernel_alphas = K @ alphas
            predictions = kernel_alphas + bias
            residuals = predictions - ys
            outside = np.abs(residuals) > self.epsilon
            signs = np.sign(residuals) * outside
            grad_alpha = kernel_alphas / self.c + K @ signs / n
            grad_b = float(signs.mean())
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            alphas -= step * grad_alpha
            bias -= step * grad_b
        self._alphas = alphas
        self._bias = bias
        self._support = Xs
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        Xs = (X - self._x_mean) / self._x_scale
        K = self._kernel_matrix(Xs, self._support)
        ys = K @ self._alphas + self._bias
        return ys * self._y_scale + self._y_mean
