"""Random Forest classifier (bagged gain-ratio trees, random feature subsets).

This is the stand-in for Weka's ``RandomForest``, the strongest classifier on
raw values in the paper's Table 1.  Each tree is trained on a bootstrap
sample and restricted to ``sqrt(n_attributes)`` randomly chosen attributes at
every split; prediction averages the trees' leaf distributions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import DatasetError
from .base import Classifier
from .dataset import MLDataset
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees with random feature subsets.

    Parameters
    ----------
    n_trees:
        Number of trees (Weka's default is 100; 25 keeps the reproduction
        grids fast while preserving the qualitative behaviour).
    max_depth:
        Per-tree depth limit (0 = unlimited).
    max_features:
        Attributes considered per split; 0 means ``round(sqrt(n_attributes))``.
    random_state:
        Seed controlling bootstraps and per-tree feature sampling.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 0,
        max_features: int = 0,
        min_samples_split: int = 2,
        random_state: int = 0,
    ) -> None:
        super().__init__()
        if n_trees < 1:
            raise DatasetError("n_trees must be >= 1")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.max_features = int(max_features)
        self.min_samples_split = int(min_samples_split)
        self.random_state = int(random_state)
        self._trees: List[DecisionTreeClassifier] = []
        self._n_classes = 0

    def fit(self, dataset: MLDataset) -> "RandomForestClassifier":
        if len(dataset) == 0:
            raise DatasetError("cannot fit a forest on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n = len(dataset)
        max_features = self.max_features or max(
            1, int(round(np.sqrt(dataset.n_attributes)))
        )
        self._trees = []
        self._n_classes = dataset.n_classes
        self._class_names = dataset.class_names
        # Presort/encode every column once; each bootstrap subset below maps
        # onto this shared presort by rank translation instead of re-sorting.
        dataset.warm_columnar_cache()
        for t in range(self.n_trees):
            bootstrap = rng.integers(0, n, size=n)
            sample = dataset.subset(bootstrap)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(sample)
            self._trees.append(tree)
        self._fitted = True
        return self

    def predict_proba(self, dataset: MLDataset) -> np.ndarray:
        """Average of the trees' leaf distributions."""
        self._check_fitted()
        votes = np.zeros((len(dataset), self._n_classes), dtype=np.float64)
        for tree in self._trees:
            votes += tree.predict_proba(dataset)
        votes /= len(self._trees)
        return votes

    def predict(self, dataset: MLDataset) -> np.ndarray:
        return np.argmax(self.predict_proba(dataset), axis=1)

    @property
    def trees(self) -> List[DecisionTreeClassifier]:
        """The fitted trees (read-only view)."""
        self._check_fitted()
        return list(self._trees)
