"""Piecewise Aggregate Approximation (PAA).

PAA is the dimensionality-reduction step underlying SAX: a series of length
``n`` is divided into ``segments`` equal-width frames and each frame is
replaced by its mean.  It plays the same role as the paper's *vertical
segmentation*, except that PAA is defined by the number of output frames
rather than by a wall-clock window.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..errors import SegmentationError
from ..core.timeseries import TimeSeries

__all__ = ["paa", "paa_series"]


def paa(values: Union[Sequence[float], np.ndarray], segments: int) -> np.ndarray:
    """Reduce ``values`` to ``segments`` frame means.

    When the length is not a multiple of ``segments``, fractional frame
    boundaries are handled by weighting samples proportionally to their
    overlap with each frame (the standard PAA formulation of Keogh et al.).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise SegmentationError("PAA expects a one-dimensional array")
    n = arr.shape[0]
    if segments < 1:
        raise SegmentationError("segments must be >= 1")
    if n == 0:
        raise SegmentationError("cannot apply PAA to an empty series")
    if segments >= n:
        return arr.copy()
    if n % segments == 0:
        return arr.reshape(segments, n // segments).mean(axis=1)

    # General case: distribute each sample's weight across the frames it
    # overlaps.  Each frame covers n/segments samples worth of "mass".
    output = np.zeros(segments, dtype=np.float64)
    frame_width = n / segments
    for i in range(segments):
        start = i * frame_width
        end = (i + 1) * frame_width
        first = int(np.floor(start))
        last = int(np.ceil(end))
        total = 0.0
        weight_sum = 0.0
        for j in range(first, min(last, n)):
            overlap = min(end, j + 1) - max(start, j)
            if overlap <= 0:
                continue
            total += arr[j] * overlap
            weight_sum += overlap
        output[i] = total / weight_sum if weight_sum else 0.0
    return output


def paa_series(series: TimeSeries, segments: int) -> TimeSeries:
    """PAA over a :class:`TimeSeries`; frame timestamps are frame starts."""
    reduced = paa(series.values, segments)
    if len(series) == 0 or segments < 1:
        return TimeSeries.empty(series.name)
    duration = series.duration if series.duration > 0 else float(len(series))
    start = float(series.timestamps[0])
    step = duration / len(reduced) if len(reduced) else 0.0
    timestamps = start + step * np.arange(len(reduced))
    return TimeSeries(timestamps, reduced, name=series.name)
