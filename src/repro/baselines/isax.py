"""iSAX — indexable SAX (Shieh & Keogh, KDD 2008).

iSAX represents each PAA frame as a *binary* SAX symbol whose cardinality
(number of bits) can differ per frame, which is what makes the representation
indexable: a coarse word covers many finer words, exactly like the paper's
variable-length binary symbols.  This module implements:

* :class:`ISAXWord` — per-frame ``(index, cardinality)`` pairs with promotion
  and containment.
* :class:`ISAXEncoder` — PAA + Gaussian-breakpoint quantisation at a given
  base cardinality.
* :func:`isax_mindist` — the lower-bounding distance between words of
  possibly different cardinalities.
* :class:`ISAXIndex` — a small iSAX tree index supporting insertion and
  approximate nearest-neighbour search, enough to exercise the indexing
  use-case the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SegmentationError
from ..core.alphabet import is_power_of_two
from ..core.timeseries import TimeSeries
from .paa import paa
from .sax import gaussian_breakpoints, znormalize

__all__ = ["ISAXSymbol", "ISAXWord", "ISAXEncoder", "isax_mindist", "ISAXIndex"]


@dataclass(frozen=True)
class ISAXSymbol:
    """One frame's symbol: subrange ``index`` at ``cardinality`` levels."""

    index: int
    cardinality: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.cardinality) or self.cardinality < 2:
            raise SegmentationError(
                f"cardinality must be a power of two >= 2, got {self.cardinality}"
            )
        if not 0 <= self.index < self.cardinality:
            raise SegmentationError(
                f"index {self.index} out of range for cardinality {self.cardinality}"
            )

    @property
    def bits(self) -> int:
        """Number of bits of this symbol."""
        return self.cardinality.bit_length() - 1

    @property
    def word(self) -> str:
        """Binary string form (MSB first)."""
        return format(self.index, f"0{self.bits}b")

    def promote(self, cardinality: int) -> "ISAXSymbol":
        """Express this symbol at a higher cardinality (low-edge refinement)."""
        if cardinality < self.cardinality:
            raise SegmentationError("promote() requires a larger cardinality")
        shift = cardinality.bit_length() - self.cardinality.bit_length()
        return ISAXSymbol(self.index << shift, cardinality)

    def demote(self, cardinality: int) -> "ISAXSymbol":
        """Express this symbol at a lower cardinality (truncate bits)."""
        if cardinality > self.cardinality:
            raise SegmentationError("demote() requires a smaller cardinality")
        shift = self.cardinality.bit_length() - cardinality.bit_length()
        return ISAXSymbol(self.index >> shift, cardinality)

    def contains(self, other: "ISAXSymbol") -> bool:
        """Whether this (coarser) symbol covers ``other``'s subrange."""
        if other.cardinality < self.cardinality:
            return False
        return other.demote(self.cardinality).index == self.index


@dataclass(frozen=True)
class ISAXWord:
    """A sequence of :class:`ISAXSymbol`, one per PAA frame."""

    symbols: Tuple[ISAXSymbol, ...]

    def __len__(self) -> int:
        return len(self.symbols)

    def __str__(self) -> str:
        return " ".join(f"{s.word}({s.cardinality})" for s in self.symbols)

    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return tuple(s.cardinality for s in self.symbols)

    def promote(self, cardinality: int) -> "ISAXWord":
        """Promote every frame to ``cardinality``."""
        return ISAXWord(tuple(s.promote(cardinality) for s in self.symbols))

    def demote(self, cardinality: int) -> "ISAXWord":
        """Demote every frame to ``cardinality``."""
        return ISAXWord(tuple(s.demote(cardinality) for s in self.symbols))

    def contains(self, other: "ISAXWord") -> bool:
        """Whether this word's region covers ``other`` frame-by-frame."""
        if len(self) != len(other):
            return False
        return all(a.contains(b) for a, b in zip(self.symbols, other.symbols))


class ISAXEncoder:
    """Encode series into iSAX words at a base cardinality.

    Parameters
    ----------
    segments:
        Number of PAA frames per word.
    cardinality:
        Base (maximum) cardinality of every frame; must be a power of two.
    normalize:
        Whether to z-normalise each series before encoding.
    """

    def __init__(
        self, segments: int = 8, cardinality: int = 16, normalize: bool = True
    ) -> None:
        if segments < 1:
            raise SegmentationError("segments must be >= 1")
        if not is_power_of_two(cardinality) or cardinality < 2:
            raise SegmentationError("cardinality must be a power of two >= 2")
        self.segments = int(segments)
        self.cardinality = int(cardinality)
        self.normalize = bool(normalize)
        self._breakpoints = np.asarray(gaussian_breakpoints(cardinality))

    def transform_values(self, values: Union[Sequence[float], np.ndarray]) -> ISAXWord:
        """Encode a plain array."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise SegmentationError("cannot iSAX-encode an empty series")
        if self.normalize:
            arr = znormalize(arr)
        frames = paa(arr, self.segments)
        indices = np.searchsorted(self._breakpoints, frames, side="left")
        return ISAXWord(
            tuple(ISAXSymbol(int(i), self.cardinality) for i in indices)
        )

    def transform(self, series: TimeSeries) -> ISAXWord:
        """Encode a :class:`TimeSeries`."""
        return self.transform_values(series.values)


def isax_mindist(a: ISAXWord, b: ISAXWord, original_length: int) -> float:
    """Lower-bounding distance between two iSAX words.

    Frames are compared at the *lower* of their two cardinalities, using that
    cardinality's Gaussian breakpoints, per the iSAX paper.
    """
    if len(a) != len(b):
        raise SegmentationError("iSAX words must have equal length")
    if len(a) == 0:
        return 0.0
    squared = 0.0
    for sa, sb in zip(a.symbols, b.symbols):
        cardinality = min(sa.cardinality, sb.cardinality)
        ia = sa.demote(cardinality).index
        ib = sb.demote(cardinality).index
        if abs(ia - ib) <= 1:
            continue
        beta = gaussian_breakpoints(cardinality)
        squared += (beta[max(ia, ib) - 1] - beta[min(ia, ib)]) ** 2
    scale = np.sqrt(original_length / len(a))
    return float(scale * np.sqrt(squared))


class _Node:
    """Internal iSAX tree node: either a leaf bucket or a split node."""

    __slots__ = ("word", "children", "entries", "capacity")

    def __init__(self, word: ISAXWord, capacity: int) -> None:
        self.word = word
        self.capacity = capacity
        self.children: Dict[ISAXWord, "_Node"] = {}
        self.entries: List[Tuple[ISAXWord, np.ndarray, object]] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class ISAXIndex:
    """A minimal iSAX tree for approximate similarity search.

    Series are inserted with a payload (e.g. a house/day identifier).  Leaves
    split by promoting one frame's cardinality when they exceed
    ``leaf_capacity``, like the original iSAX index.  ``approximate_search``
    walks the tree to the most specific covering node and returns the best
    entries by true Euclidean distance within that node.
    """

    def __init__(
        self,
        segments: int = 8,
        base_cardinality: int = 2,
        max_cardinality: int = 16,
        leaf_capacity: int = 16,
        normalize: bool = True,
    ) -> None:
        if base_cardinality > max_cardinality:
            raise SegmentationError("base_cardinality cannot exceed max_cardinality")
        self._encoder = ISAXEncoder(
            segments=segments, cardinality=max_cardinality, normalize=normalize
        )
        self.segments = segments
        self.base_cardinality = base_cardinality
        self.max_cardinality = max_cardinality
        self.leaf_capacity = leaf_capacity
        self._roots: Dict[ISAXWord, _Node] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, values: Union[Sequence[float], np.ndarray], payload: object = None) -> None:
        """Insert a series with an arbitrary payload."""
        arr = np.asarray(values, dtype=np.float64)
        word = self._encoder.transform_values(arr)
        root_key = word.demote(self.base_cardinality)
        node = self._roots.get(root_key)
        if node is None:
            node = _Node(root_key, self.leaf_capacity)
            self._roots[root_key] = node
        self._insert_into(node, word, arr, payload)
        self._size += 1

    def _insert_into(self, node: _Node, word: ISAXWord, values: np.ndarray, payload) -> None:
        while not node.is_leaf:
            child_key = self._child_key(node, word)
            child = node.children.get(child_key)
            if child is None:
                child = _Node(child_key, self.leaf_capacity)
                node.children[child_key] = child
            node = child
        node.entries.append((word, values, payload))
        if len(node.entries) > node.capacity:
            self._split(node)

    def _child_key(self, node: _Node, word: ISAXWord) -> ISAXWord:
        # Children refine the node's word by doubling each frame's
        # cardinality (capped at the maximum).
        target = tuple(
            min(s.cardinality * 2, self.max_cardinality) for s in node.word.symbols
        )
        return ISAXWord(
            tuple(
                frame.demote(card)
                for frame, card in zip(word.symbols, target)
            )
        )

    def _split(self, node: _Node) -> None:
        if all(s.cardinality >= self.max_cardinality for s in node.word.symbols):
            return  # cannot refine further; allow oversized leaf
        entries = node.entries
        node.entries = []
        for word, values, payload in entries:
            child_key = self._child_key(node, word)
            child = node.children.get(child_key)
            if child is None:
                child = _Node(child_key, self.leaf_capacity)
                node.children[child_key] = child
            child.entries.append((word, values, payload))

    def approximate_search(
        self, values: Union[Sequence[float], np.ndarray], k: int = 1
    ) -> List[Tuple[object, float]]:
        """Return up to ``k`` ``(payload, euclidean_distance)`` results."""
        arr = np.asarray(values, dtype=np.float64)
        if self._size == 0:
            return []
        word = self._encoder.transform_values(arr)
        root_key = word.demote(self.base_cardinality)
        node = self._roots.get(root_key)
        if node is None:
            # Fall back to scanning every root's subtree head.
            candidates = self._collect_all()
        else:
            while not node.is_leaf:
                child_key = self._child_key(node, word)
                child = node.children.get(child_key)
                if child is None:
                    break
                node = child
            candidates = self._collect(node)
            if not candidates:
                candidates = self._collect_all()
        query = znormalize(arr) if self._encoder.normalize else arr
        scored = []
        for entry_values, payload in candidates:
            reference = (
                znormalize(entry_values) if self._encoder.normalize else entry_values
            )
            if reference.shape != query.shape:
                continue
            scored.append((payload, float(np.linalg.norm(reference - query))))
        scored.sort(key=lambda item: item[1])
        return scored[:k]

    def _collect(self, node: _Node) -> List[Tuple[np.ndarray, object]]:
        out = [(values, payload) for _, values, payload in node.entries]
        for child in node.children.values():
            out.extend(self._collect(child))
        return out

    def _collect_all(self) -> List[Tuple[np.ndarray, object]]:
        out: List[Tuple[np.ndarray, object]] = []
        for root in self._roots.values():
            out.extend(self._collect(root))
        return out
