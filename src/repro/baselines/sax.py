"""SAX — Symbolic Aggregate approXimation (Lin, Keogh, Wei, Lonardi 2007).

SAX is the representation the paper positions itself against: it assumes the
(z-normalised) values are Gaussian, takes breakpoints from the standard
normal quantile table so every symbol is equiprobable *under that
assumption*, and runs offline with a fixed alphabet size.

The paper's *median* method generalises SAX's equiprobable breakpoints to the
empirical (log-normal) distribution without normalisation; implementing SAX
here lets the benchmarks compare both directly (including the Figure 3
argument that per-house z-normalisation erases the consumption level that
distinguishes big consumers from small ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy import stats as scipy_stats

from ..errors import SegmentationError
from ..core.timeseries import TimeSeries
from ..pipeline.stages import LookupStage
from .paa import paa

__all__ = ["gaussian_breakpoints", "znormalize", "SAXEncoder", "SAXWord", "mindist"]


def gaussian_breakpoints(alphabet_size: int) -> List[float]:
    """Standard-normal quantile breakpoints for ``alphabet_size`` symbols.

    These are the values tabulated in the SAX paper (e.g. ``[-0.43, 0.43]``
    for three symbols, ``[-0.67, 0.0, 0.67]`` for four).
    """
    if alphabet_size < 2:
        raise SegmentationError("alphabet size must be >= 2")
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return [float(b) for b in scipy_stats.norm.ppf(quantiles)]


def znormalize(values: Union[Sequence[float], np.ndarray], epsilon: float = 1e-8) -> np.ndarray:
    """Z-normalise values; near-constant series are mapped to all zeros."""
    arr = np.asarray(values, dtype=np.float64)
    std = arr.std()
    if std < epsilon:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std


@dataclass(frozen=True)
class SAXWord:
    """Result of encoding one series: symbol indices plus alphabet size."""

    indices: tuple
    alphabet_size: int

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def letters(self) -> str:
        """Conventional letter form (``a`` = lowest range)."""
        return "".join(chr(ord("a") + i) for i in self.indices)

    def __str__(self) -> str:
        return self.letters


class SAXEncoder:
    """Classic SAX: z-normalise, PAA, quantise with Gaussian breakpoints.

    Parameters
    ----------
    alphabet_size:
        Number of symbols (not restricted to powers of two).
    segments:
        Number of PAA frames; ``0`` keeps the original length (no PAA).
    normalize:
        Whether to z-normalise each series individually (SAX default).  The
        paper argues against this for smart-meter data; setting it to
        ``False`` yields "SAX breakpoints on raw data" for ablations.
    """

    def __init__(
        self, alphabet_size: int = 8, segments: int = 0, normalize: bool = True
    ) -> None:
        if alphabet_size < 2:
            raise SegmentationError("alphabet size must be >= 2")
        self.alphabet_size = int(alphabet_size)
        self.segments = int(segments)
        self.normalize = bool(normalize)
        self._breakpoints = np.asarray(gaussian_breakpoints(alphabet_size))
        # Quantisation is the same lookup stage the paper's encoder uses,
        # just with Gaussian breakpoints instead of a learned table.
        self._lookup = LookupStage(self._breakpoints)
        # Centre of every quantile range, precomputed for vectorized decode;
        # unbounded outer ranges reuse the nearest breakpoint +- 1.
        lows = np.concatenate([[self._breakpoints[0] - 1.0], self._breakpoints])
        highs = np.concatenate([self._breakpoints, [self._breakpoints[-1] + 1.0]])
        self._centres = (lows + highs) / 2.0

    @property
    def breakpoints(self) -> List[float]:
        """The Gaussian breakpoints in use."""
        return [float(b) for b in self._breakpoints]

    def transform_values(self, values: Union[Sequence[float], np.ndarray]) -> SAXWord:
        """Encode a plain array of values."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise SegmentationError("cannot SAX-encode an empty series")
        if self.normalize:
            arr = znormalize(arr)
        if self.segments:
            arr = paa(arr, self.segments)
        indices = self._lookup.run_batch(arr)
        return SAXWord(tuple(indices.tolist()), self.alphabet_size)

    def transform(self, series: TimeSeries) -> SAXWord:
        """Encode a :class:`TimeSeries`."""
        return self.transform_values(series.values)

    def reconstruct(self, word: SAXWord) -> np.ndarray:
        """Map each symbol back to the centre of its normal-quantile range.

        Unbounded outer ranges reuse the nearest breakpoint, mirroring the
        behaviour of the lookup-table reconstruction in ``repro.core``.
        """
        indices = np.asarray(word.indices, dtype=np.int64)
        return self._centres[indices]


def mindist(
    a: SAXWord, b: SAXWord, original_length: int, breakpoints: Optional[Sequence[float]] = None
) -> float:
    """The SAX lower-bounding distance MINDIST between two words.

    Both words must have the same length and alphabet size.
    ``original_length`` is the length of the raw series before PAA.
    """
    if len(a) != len(b):
        raise SegmentationError("SAX words must have equal length")
    if a.alphabet_size != b.alphabet_size:
        raise SegmentationError("SAX words must share an alphabet size")
    beta = np.asarray(
        breakpoints if breakpoints is not None else gaussian_breakpoints(a.alphabet_size)
    )

    def cell(i: int, j: int) -> float:
        if abs(i - j) <= 1:
            return 0.0
        return float(beta[max(i, j) - 1] - beta[min(i, j)])

    squared = sum(cell(i, j) ** 2 for i, j in zip(a.indices, b.indices))
    scale = np.sqrt(original_length / len(a)) if len(a) else 0.0
    return float(scale * np.sqrt(squared))
