"""Baseline time-series representations the paper compares against.

* :mod:`repro.baselines.paa` — Piecewise Aggregate Approximation.
* :mod:`repro.baselines.sax` — SAX with z-normalisation and Gaussian breakpoints.
* :mod:`repro.baselines.isax` — iSAX words, MINDIST and a small tree index.
"""

from .isax import ISAXEncoder, ISAXIndex, ISAXSymbol, ISAXWord, isax_mindist
from .paa import paa, paa_series
from .sax import SAXEncoder, SAXWord, gaussian_breakpoints, mindist, znormalize

__all__ = [
    "ISAXEncoder",
    "ISAXIndex",
    "ISAXSymbol",
    "ISAXWord",
    "SAXEncoder",
    "SAXWord",
    "gaussian_breakpoints",
    "isax_mindist",
    "mindist",
    "paa",
    "paa_series",
    "znormalize",
]
