"""The query server: threaded HTTP+JSON over mmap'd stores, built to shed.

``QueryServer`` wires the robustness pieces around the
:class:`~repro.query.QueryEngine`:

* **admission before work** — a :class:`~repro.serve.limiter.TokenBucket`
  and a bounded :class:`~repro.serve.admission.AdmissionGate` answer 429 /
  503 with ``Retry-After`` *before* a single store byte is touched;
* **deadlines into the scan** — ``deadline_ms`` (body or
  ``X-Deadline-Ms`` header) becomes a :class:`~repro.query.plan.Deadline`
  the plan driver checks between chunks and refine rounds, so expiry is a
  504 with partial-work accounting, not an overstayed request;
* **snapshot leases + hot reload** — every request leases an immutable
  engine snapshot; when a concurrent :class:`~repro.store.FleetIngestor`
  commits a new manifest generation, the *next* request sees it (reopened
  under the manager lock) while in-flight requests keep theirs, and
  retired snapshots close only when their last lease drops;
* **circuit breaker + degraded serving** — repeated
  :class:`~repro.errors.CorruptStoreError` trips the store's
  :class:`~repro.serve.breaker.CircuitBreaker`: the quarantine-aware
  snapshot keeps answering (``"degraded": true``) while a background
  ``scrub_store(repair=True)`` heals, and a timed half-open trial
  re-verifies before the flag clears;
* **idempotent appends** — ``POST /stores/<name>/append`` with an
  ``idempotency_key`` stores the key in the committed segment's manifest
  ``reason``, so a client retry after a crash (even SIGKILL) finds the
  key and returns the original result instead of appending twice.

Fault seams: handlers pass ``serve.handle`` (checkpoint) after admission
and write response bodies through ``faults.write(..., "serve.response")``,
so the fault matrix can inject slow handlers and mid-response disconnects.
An :class:`~repro.store.faults.InjectedCrash` there kills only that
connection — the server keeps serving, which is the point.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import (
    BadRequest,
    CorruptStoreError,
    DeadlineExceeded,
    Degraded,
    Overloaded,
    RateLimited,
    ReproError,
    StoreError,
    UnknownStore,
)
from ..obs import (
    enable_tracing,
    new_trace_id,
    recent_traces,
    registry as obs_registry,
    tracer as obs_tracer,
)
from ..query import Deadline, QueryConfig, QueryEngine
from ..store import faults
from ..store.faults import InjectedCrash
from . import protocol
from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .limiter import TokenBucket

__all__ = ["QueryServer", "ServerConfig", "StoreManager", "serve"]


class ServerConfig:
    """Tunables of one server instance (all have serve-sane defaults)."""

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 5.0,
        default_deadline_ms: Optional[float] = None,
        failure_threshold: int = 3,
        breaker_reset_s: float = 2.0,
        workers: int = 1,
        tracing: bool = True,
        trace_sink: Optional[str] = None,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_concurrent = int(max_concurrent)
        self.max_queue = int(max_queue)
        self.queue_timeout = float(queue_timeout)
        self.default_deadline_ms = default_deadline_ms
        self.failure_threshold = int(failure_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self.workers = int(workers)
        self.tracing = bool(tracing)
        self.trace_sink = trace_sink


class _Snapshot:
    """One immutable open of a store: leased by requests, closed when idle.

    ``generation`` is the manifest generation (segmented) or an
    ``(mtime_ns, size)`` stamp (single file) the open observed; the manager
    compares it against the directory to decide when to reload.
    """

    def __init__(self, engine: QueryEngine, generation, degraded: bool) -> None:
        self.engine = engine
        self.generation = generation
        self.degraded = degraded
        self._leases = 0
        self._retired = False
        self._lock = threading.Lock()

    def lease(self) -> "_Snapshot":
        with self._lock:
            self._leases += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._leases -= 1
            close_now = self._retired and self._leases == 0
        if close_now:
            self._close()

    def retire(self) -> None:
        with self._lock:
            self._retired = True
            close_now = self._leases == 0
        if close_now:
            self._close()

    def _close(self) -> None:
        try:
            self.engine.close()
        except Exception:
            pass


#: ``warnings.catch_warnings`` mutates process-global state; snapshot opens
#: (the only place the server records warnings) serialize on this.
_OPEN_LOCK = threading.Lock()


class _StoreHandle:
    """Per-exported-store state: snapshot, breaker, scrub, append lock."""

    def __init__(self, name: str, path: Path, config: ServerConfig) -> None:
        self.name = name
        self.path = path
        self.config = config
        self.breaker = CircuitBreaker(
            failure_threshold=config.failure_threshold,
            reset_timeout=config.breaker_reset_s,
        )
        self.lock = threading.Lock()
        self.append_lock = threading.Lock()
        self.snapshot: Optional[_Snapshot] = None
        self.reloads_total = 0
        self._scrub_lock = threading.Lock()
        self._scrubbing = False

    # -- generation watch --------------------------------------------------------

    def _disk_generation(self):
        """What is committed on disk right now (cheap: a dir listing/stat)."""
        if self.path.is_dir():
            from ..store.segments import _manifest_paths

            manifests = _manifest_paths(self.path)
            return max(gen for gen, _ in manifests) if manifests else -1
        stat = self.path.stat()
        return (stat.st_mtime_ns, stat.st_size)

    # -- snapshot lifecycle ------------------------------------------------------

    def lease(self) -> _Snapshot:
        """The current snapshot, reloaded first if the store moved on disk.

        In-flight requests keep the snapshot they leased; the retired one
        closes when its last lease drops.
        """
        with self.lock:
            try:
                disk = self._disk_generation()
            except OSError as exc:
                raise StoreError(f"cannot stat {self.path}: {exc}")
            snapshot = self.snapshot
            if snapshot is not None and snapshot.generation == disk:
                if snapshot.degraded and self.breaker.allow_trial():
                    # The trial is granted *once* (half-open hands out a
                    # single probe); pass it through instead of asking the
                    # breaker a second time in ``_reopen``.
                    snapshot = self._reopen(retiring=snapshot, trial=True)
                return snapshot.lease()
            snapshot = self._reopen(retiring=snapshot)
            return snapshot.lease()

    def _reopen(self, retiring: Optional[_Snapshot],
                trial: Optional[bool] = None) -> _Snapshot:
        """Open a fresh snapshot (strict when the breaker allows a trial)."""
        import warnings as warnings_mod

        strict_ok = self.breaker.allow_trial() if trial is None else trial
        degraded = False
        with _OPEN_LOCK:
            with warnings_mod.catch_warnings(record=True) as caught:
                warnings_mod.simplefilter("always")
                if strict_ok:
                    try:
                        engine = self._open_engine(strict=True)
                        self.breaker.record_success()
                    except (CorruptStoreError, OSError):
                        # OSError covers the scrub race: a segment already
                        # moved to quarantine/ but the healed manifest not
                        # yet committed — the non-strict open skips it.
                        self.breaker.record_failure()
                        engine = self._open_engine(strict=False)
                        degraded = True
                else:
                    engine = self._open_engine(strict=False)
                    degraded = True
            # Quarantines/rollbacks during a non-strict open are integrity
            # signals too — and mark the snapshot degraded even before the
            # breaker trips.
            from ..errors import StoreIntegrityWarning

            integrity = [
                w for w in caught
                if isinstance(w.message, StoreIntegrityWarning)
                and getattr(w.message, "reason", "") != "stale-index"
            ]
        if integrity:
            degraded = True
            for _ in integrity:
                self.breaker.record_failure()
        if degraded:
            self.start_scrub()
        snapshot = _Snapshot(
            engine, self._disk_generation(), degraded=degraded
        )
        if retiring is not None:
            retiring.retire()
            self.reloads_total += 1
        self.snapshot = snapshot
        return snapshot

    def _open_engine(self, strict: bool) -> QueryEngine:
        if self.path.is_dir():
            from ..store.segments import SegmentedStore

            if strict:
                # Probe strictly (raises on any quarantine/rollback), then
                # route through QueryEngine.open for the sidecar handling.
                probe = SegmentedStore.open(self.path, strict=True)
                probe.close()
            engine = QueryEngine.open(self.path)
            if strict and getattr(engine.store, "quarantined", None):
                engine.close()
                raise CorruptStoreError(
                    f"{self.path.name} still quarantines segments",
                    path=self.path, check="column_crc", hint="bit-rot",
                )
            return engine
        return QueryEngine.open(self.path)

    def drop_snapshot(self) -> None:
        """Force the next lease to reopen (after a mid-query failure)."""
        with self.lock:
            if self.snapshot is not None:
                self.snapshot.retire()
                self.snapshot = None

    # -- healing -----------------------------------------------------------------

    def start_scrub(self) -> None:
        """Kick one background ``scrub_store(repair=True)``; idempotent."""
        if not self.path.is_dir():
            return
        with self._scrub_lock:
            if self._scrubbing:
                return
            self._scrubbing = True

        def _scrub() -> None:
            from ..store.segments import scrub_store

            try:
                scrub_store(self.path, repair=True)
            except Exception:
                pass
            finally:
                self._scrubbing = False

        thread = threading.Thread(
            target=_scrub, name=f"scrub-{self.name}", daemon=True
        )
        thread.start()

    def on_query_corruption(self) -> None:
        """A query hit corrupt bytes: count it, drop the snapshot, heal."""
        self.breaker.record_failure()
        self.drop_snapshot()
        self.start_scrub()


class StoreManager:
    """Name → :class:`_StoreHandle` registry the handler threads share."""

    def __init__(
        self,
        stores: Dict[str, Union[str, Path]],
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.handles: Dict[str, _StoreHandle] = {}
        for name, path in stores.items():
            path = Path(path)
            if not path.exists():
                raise StoreError(f"no such store: {path}")
            self.handles[name] = _StoreHandle(name, path, self.config)

    def handle(self, name: str) -> _StoreHandle:
        try:
            return self.handles[name]
        except KeyError:
            known = ", ".join(sorted(self.handles)) or "(none)"
            raise UnknownStore(
                f"no store named {name!r} (serving: {known})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self.handles)


class _Metrics:
    """Serve-layer counters, backed by the process :mod:`repro.obs` registry.

    The short names ``GET /metrics`` has always reported are kept; each one
    is an alias for a ``serve.*`` counter in the registry, so the JSON view,
    the Prometheus exposition and every other registry consumer read the
    same numbers.
    """

    _COUNTERS = (
        ("requests_total", "HTTP requests received"),
        ("errors_total", "Requests answered with 5xx or 429"),
        ("rate_limited_total", "Requests rejected by the token bucket"),
        ("shed_total", "Requests shed by admission control"),
        ("deadline_expired_total", "Requests that outran their deadline"),
        ("degraded_responses_total", "Answers served from degraded snapshots"),
        ("appends_total", "Segments appended via POST .../append"),
        ("append_duplicates_total", "Idempotent append retries deduplicated"),
    )

    def __init__(self) -> None:
        reg = obs_registry()
        self._by_name = {
            name: reg.counter(f"serve.{name}", help_text)
            for name, help_text in self._COUNTERS
        }

    def bump(self, counter: str, by: int = 1) -> None:
        self._by_name[counter].inc(by)

    def snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._by_name.items()}


class _Handler(BaseHTTPRequestHandler):
    """One request; all state lives on ``self.server`` (the QueryServer)."""

    protocol_version = "HTTP/1.1"
    #: Set by QueryServer subclassing machinery.
    manager: StoreManager
    gate: AdmissionGate
    bucket: TokenBucket
    metrics: _Metrics
    server_config: ServerConfig

    # Silence the default stderr access log; tests capture stderr.
    def log_message(self, format: str, *args) -> None:
        pass

    # -- plumbing ----------------------------------------------------------------

    def _send(self, status: int, body: Dict,
              retry_after: Optional[float] = None) -> None:
        if getattr(self, "_defer_send", False):
            # The request span is still open: park the response so it goes
            # out only after the span finishes, closing the window where a
            # client could see its reply but not its trace.
            self._deferred = (status, body, retry_after)
            return
        payload = protocol.dumps(body)
        self._write_response(status, payload, "application/json", retry_after)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        self._write_response(status, text.encode("utf-8"), content_type, None)

    def _write_response(self, status: int, payload: bytes, content_type: str,
                        retry_after: Optional[float]) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{retry_after:.3f}")
            trace_id = getattr(self, "_trace_id", None)
            if trace_id:
                self.send_header("X-Repro-Trace-Id", trace_id)
            self.end_headers()
            faults.write(self.wfile, payload, "serve.response")
        except InjectedCrash:
            # Simulated mid-response disconnect: drop this connection hard
            # (the client sees a truncated body) but keep the server alive.
            self.close_connection = True
            try:
                self.wfile.flush()
            except Exception:
                pass
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _send_error(self, error: BaseException) -> None:
        status = protocol.status_of(error)
        retry_after = getattr(error, "retry_after", None)
        if status >= 500 or status == 429:
            self.metrics.bump("errors_total")
        self._send(status, protocol.error_body(error), retry_after)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > protocol.MAX_BODY_BYTES:
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{protocol.MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _deadline(self, body: Dict) -> Optional[Deadline]:
        ms = body.get("deadline_ms")
        if ms is None:
            header = self.headers.get("X-Deadline-Ms")
            ms = float(header) if header else None
        if ms is None:
            ms = self.server_config.default_deadline_ms
        if ms is None:
            return None
        try:
            ms = float(ms)
        except (TypeError, ValueError):
            raise BadRequest(f"deadline_ms must be a number, got {ms!r}")
        if ms <= 0:
            raise BadRequest(f"deadline_ms must be > 0, got {ms}")
        return Deadline.from_ms(ms)

    # -- routing -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        try:
            path, _, query = self.path.partition("?")
            path = path.rstrip("/")
            if path == "/healthz":
                self._send(200, {"ok": True})
                return
            self.metrics.bump("requests_total")
            if path == "/metrics":
                accept = self.headers.get("Accept") or ""
                if "format=prometheus" in query or "text/plain" in accept:
                    self._send_text(200, obs_registry().to_prometheus())
                else:
                    self._send(200, self._metrics_body())
                return
            if path == "/traces/recent":
                n = 16
                for part in query.split("&"):
                    if part.startswith("n="):
                        try:
                            n = max(1, min(int(part[2:]), 256))
                        except ValueError:
                            pass
                self._send(200, {"traces": recent_traces(n)})
                return
            if path == "/stores":
                self._send(200, {"stores": self.manager.names()})
                return
            if path.startswith("/stores/"):
                name = path[len("/stores/"):]
                if "/" not in name:
                    self._store_info(name)
                    return
            raise UnknownStore(f"no such endpoint: {self.path}")
        except ReproError as error:
            self._send_error(error)
        except Exception as error:  # noqa: BLE001 — the never-crash contract
            self._send_error(error)

    def do_POST(self) -> None:  # noqa: N802
        started = time.perf_counter()
        op = "unknown"
        try:
            self.metrics.bump("requests_total")
            path = self.path.split("?", 1)[0].rstrip("/")
            if not path.startswith("/stores/"):
                raise UnknownStore(f"no such endpoint: {self.path}")
            rest = path[len("/stores/"):]
            if "/" not in rest:
                raise UnknownStore(f"no such endpoint: {self.path}")
            name, op = rest.split("/", 1)
            # Trace continuity: a client-sent X-Repro-Trace-Id becomes this
            # request's trace id (and is echoed back); with tracing on and
            # no header, the server mints one so /traces/recent correlates.
            trace = obs_tracer()
            self._trace_id = self.headers.get("X-Repro-Trace-Id") or (
                new_trace_id() if trace.enabled else None
            )
            ok, retry_after = self.bucket.acquire()
            if not ok:
                self.metrics.bump("rate_limited_total")
                raise RateLimited(
                    "request rate exceeded; retry later",
                    retry_after=retry_after,
                )
            raw = self._read_body()
            try:
                with self.gate.admit():
                    body = protocol.parse_body(raw)
                    # The deadline clock starts before the handler seam, so
                    # an injected slow handler spends real request budget.
                    deadline = self._deadline(body)
                    faults.checkpoint("serve.handle")
                    self._deferred = None
                    self._defer_send = True
                    try:
                        with trace.span(
                            f"serve.{op}", _trace_id=self._trace_id,
                            store=name, op=op,
                        ):
                            self._dispatch(name, op, body, deadline)
                    finally:
                        self._defer_send = False
                    if self._deferred is not None:
                        self._send(*self._deferred)
            except Overloaded:
                self.metrics.bump("shed_total")
                raise
        except DeadlineExceeded as error:
            self.metrics.bump("deadline_expired_total")
            self._send_error(error)
        except ReproError as error:
            self._send_error(error)
        except InjectedCrash:
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 — the never-crash contract
            self._send_error(error)
        finally:
            obs_registry().histogram(
                "serve.request_seconds", "Request latency per endpoint",
                op=op,
            ).observe(time.perf_counter() - started)

    # -- endpoints ---------------------------------------------------------------

    def _store_info(self, name: str) -> None:
        handle = self.manager.handle(name)
        snapshot = handle.lease()
        try:
            generation = (
                snapshot.engine.store.generation
                if hasattr(snapshot.engine.store, "generation") else None
            )
            body = protocol.store_info_body(
                snapshot.engine.store, name, generation
            )
            body["degraded"] = snapshot.degraded
            body["breaker"] = handle.breaker.snapshot()
            self._send(200, body)
        finally:
            snapshot.release()

    def _metrics_body(self) -> Dict:
        body = {
            "metrics": self.metrics.snapshot(),
            "admission": self.gate.snapshot(),
            "stores": {},
            # The full registry view: every counter/gauge/histogram in the
            # process, dotted names, p50/p95/p99 derived from the buckets.
            "registry": obs_registry().to_json(),
        }
        for name, handle in self.manager.handles.items():
            body["stores"][name] = {
                "breaker": handle.breaker.snapshot(),
                "reloads_total": handle.reloads_total,
            }
        return body

    def _dispatch(self, name: str, op: str, body: Dict,
                  deadline: Optional[Deadline]) -> None:
        handle = self.manager.handle(name)
        if op == "append":
            self._append(handle, body)
            return
        snapshot = handle.lease()
        try:
            try:
                result = self._run_query(snapshot.engine, op, body, deadline)
            except CorruptStoreError as error:
                # Mid-query integrity failure: heal in the background,
                # retry once against the reopened (quarantine-aware)
                # snapshot so the caller gets a degraded answer instead of
                # an error.
                snapshot.release()
                snapshot = None
                handle.on_query_corruption()
                snapshot = handle.lease()
                try:
                    result = self._run_query(
                        snapshot.engine, op, body, deadline
                    )
                except CorruptStoreError:
                    handle.breaker.record_failure()
                    raise Degraded(
                        f"store {handle.name!r} cannot be served even "
                        f"degraded: {error}",
                        retry_after=handle.config.breaker_reset_s,
                    )
            result["degraded"] = snapshot.degraded
            if snapshot.degraded:
                self.metrics.bump("degraded_responses_total")
            self._send(200, result)
        finally:
            if snapshot is not None:
                snapshot.release()

    def _run_query(self, engine: QueryEngine, op: str, body: Dict,
                   deadline: Optional[Deadline]) -> Dict:
        workers = self.server_config.workers
        if op == "knn":
            queries = protocol.parse_queries(body)
            config = QueryConfig(
                k=int(body.get("k", 5)),
                use_index=bool(body.get("use_index", True)),
                refine_chunk=int(body.get("refine_chunk", 16)),
                workers=workers,
            )
            result = engine.knn(
                queries, config,
                exclude_ids=body.get("exclude_ids", ()) or (),
                deadline=deadline,
            )
            return protocol.knn_body(result)
        if op == "match":
            pattern = body.get("pattern")
            if not isinstance(pattern, str) or not pattern:
                raise BadRequest("request body needs a 'pattern' string")
            matches = engine.match(
                pattern, meters=protocol.parse_meters(body),
                workers=workers, deadline=deadline,
            )
            return protocol.match_body(matches)
        if op == "agg":
            report = engine.aggregate(
                meters=protocol.parse_meters(body),
                level=body.get("level"),
                per_day=bool(body.get("per_day", False)),
                workers=workers, deadline=deadline,
            )
            return protocol.agg_body(report)
        if op == "anomaly":
            report = engine.anomaly(
                meters=protocol.parse_meters(body),
                workers=workers, deadline=deadline,
            )
            return protocol.anomaly_body(report)
        if op == "drift":
            report = engine.drift(
                meters=protocol.parse_meters(body), deadline=deadline,
            )
            return protocol.drift_body(report)
        if op == "private_agg":
            report = engine.private_aggregate(
                meters=protocol.parse_meters(body),
                level=body.get("level"),
                k_anon=int(body.get("k_anon", 5)),
                epsilon=body.get("epsilon"),
                seed=int(body.get("seed", 0)),
                workers=workers, deadline=deadline,
            )
            return protocol.private_agg_body(report)
        raise UnknownStore(f"no such operation: {op!r}")

    def _append(self, handle: _StoreHandle, body: Dict) -> None:
        if not handle.path.is_dir():
            raise BadRequest(
                f"store {handle.name!r} is a single file; only segmented "
                f"stores accept appends"
            )
        indices = body.get("indices")
        if indices is None:
            raise BadRequest("append body needs an 'indices' matrix")
        try:
            matrix = np.asarray(indices, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"'indices' is not an integer matrix: {exc}")
        reason = str(body.get("reason", "append"))
        key = body.get("idempotency_key")
        if key is not None:
            reason = f"{reason}:key={key}"
        from ..store.segments import SegmentedStore, append_segment

        with handle.append_lock:
            if key is not None:
                prior = self._find_append(handle.path, reason)
                if prior is not None:
                    self.metrics.bump("append_duplicates_total")
                    self._send(200, dict(prior, duplicate=True))
                    return
            record = append_segment(handle.path, matrix, reason=reason)
            self.metrics.bump("appends_total")
            with SegmentedStore.open(handle.path) as store:
                generation = store.generation
        self._send(200, {
            "segment": record.name,
            "windows": int(record.windows),
            "n_symbols": int(record.n_symbols),
            "generation": int(generation),
            "duplicate": False,
        })

    @staticmethod
    def _find_append(path: Path, reason: str) -> Optional[Dict]:
        """Locate a committed segment by its idempotency-bearing reason.

        The key rides in the manifest (durable, fsynced), so this survives
        a server SIGKILL between commit and response: the retry finds the
        segment and answers without appending again.
        """
        from ..store.segments import SegmentedStore

        with SegmentedStore.open(path) as store:
            for record in store.records:
                if record.reason == reason:
                    return {
                        "segment": record.name,
                        "windows": int(record.windows),
                        "n_symbols": int(record.n_symbols),
                        "generation": int(store.generation),
                    }
        return None


class QueryServer:
    """A running (or startable) threaded query server.

    ``QueryServer(stores, config).start()`` binds and serves on a daemon
    thread; ``shutdown()`` stops accepting and joins.  ``port`` is the
    bound port (useful with ``port=0`` in tests).
    """

    def __init__(
        self,
        stores: Dict[str, Union[str, Path]],
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or ServerConfig()
        self.manager = StoreManager(stores, self.config)
        if self.config.tracing:
            enable_tracing(sink=self.config.trace_sink)
        self.metrics = _Metrics()
        self.gate = AdmissionGate(
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )
        self.bucket = TokenBucket(self.config.rate, self.config.burst)

        handler = type("BoundHandler", (_Handler,), {
            "manager": self.manager,
            "gate": self.gate,
            "bucket": self.bucket,
            "metrics": self.metrics,
            "server_config": self.config,
        })
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QueryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    stores: Dict[str, Union[str, Path]],
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
) -> QueryServer:
    """Build and start a :class:`QueryServer` (returned running)."""
    return QueryServer(stores, config=config, host=host, port=port).start()
