"""Token-bucket rate limiting for the query service.

The classic shape (SNIPPETS.md snippet 1 sketches the same pattern): a
bucket refills at ``rate`` tokens/second up to ``burst``; each admitted
request withdraws one token.  An empty bucket answers *how long until the
next token* so the 429 can carry an honest ``Retry-After`` instead of a
guess.  Refill is computed lazily from elapsed time — no background thread
— and the clock is injectable so tests control time exactly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Tuple

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, capacity ``burst``.

    ``rate=None`` disables limiting (every ``acquire`` succeeds) so the
    server can run unlimited without a second code path.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        self.rate = None if rate is None else float(rate)
        self.burst = (
            max(1, int(burst if burst is not None else (rate or 1)))
        )
        self._clock = clock
        self._tokens = float(self.burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        if self.rate is not None:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate
            )

    def acquire(self) -> Tuple[bool, float]:
        """Try to withdraw one token.

        Returns ``(True, 0.0)`` on success, else ``(False, retry_after)``
        where ``retry_after`` is the seconds until a token will exist.
        """
        if self.rate is None:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate

    def available(self) -> float:
        """Current token count (refilled to now); for tests and metrics."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            self._refill(self._clock())
            return self._tokens
