"""``ServeClient``: the retrying, backoff-disciplined HTTP client.

The client-side half of the availability contract.  A fleet of naive
retry-loops *amplifies* an outage (every failure turns into N extra
requests at the worst moment); this client bounds that amplification three
ways:

* **exponential backoff with full jitter** — sleep
  ``uniform(0, min(cap, base * 2**attempt))`` between tries, the spread
  that de-synchronises a thundering herd (the AWS architecture-blog
  result);
* **Retry-After wins** — a server that says *when* to come back is obeyed
  (the sleep is at least the server's hint);
* **a retry budget** — retries spend from a token budget that only
  successful requests replenish (Finagle's scheme): when more than
  ``budget_ratio`` of recent traffic is retries, :class:`RetryBudgetExceeded`
  surfaces instead of another wave.

Appends carry **idempotency keys** (auto-generated UUIDs unless given), so
a retry after an ambiguous failure — the response never arrived, the server
may or may not have committed — cannot duplicate the append: the server
finds the key in its manifest and replays the original answer.

Everything is injectable (``clock``, ``sleep``, ``rng``) so the retry
schedule is unit-testable without real time passing.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    Degraded,
    Overloaded,
    RateLimited,
    ReproError,
    RetryBudgetExceeded,
    ServeError,
    UnknownStore,
)
from ..obs import current_trace_id

__all__ = ["RetryBudget", "RetryPolicy", "ServeClient", "ServeResponse"]

#: Wire code → exception class, the inverse of the server's taxonomy.
_CODE_TO_ERROR = {
    "serve.rate-limited": RateLimited,
    "serve.overloaded": Overloaded,
    "serve.degraded-unavailable": Degraded,
    "serve.unknown-store": UnknownStore,
    "serve.bad-request": BadRequest,
}


class RetryBudget:
    """Finagle-style retry budget: successes deposit, retries withdraw.

    ``budget_ratio`` is the sustainable retries-per-request ratio; the
    ``reserve`` floor lets a cold client retry at all.  Thread-safety is
    not needed — one client, one thread (the server handles concurrency).
    """

    def __init__(self, budget_ratio: float = 0.2, reserve: float = 3.0,
                 cap: float = 50.0) -> None:
        self.budget_ratio = float(budget_ratio)
        self.cap = float(cap)
        self._balance = float(reserve)

    def deposit(self) -> None:
        self._balance = min(self.cap, self._balance + self.budget_ratio)

    def try_withdraw(self) -> bool:
        if self._balance >= 1.0:
            self._balance -= 1.0
            return True
        return False

    @property
    def balance(self) -> float:
        return self._balance


class RetryPolicy:
    """Backoff schedule + retry classification for one client."""

    def __init__(
        self,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if int(max_attempts) < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.rng = rng if rng is not None else random.Random()

    def sleep_for(self, attempt: int,
                  retry_after: Optional[float] = None) -> float:
        """Full-jitter backoff, floored at the server's ``Retry-After``."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        sleep = self.rng.uniform(0.0, ceiling)
        if retry_after is not None:
            sleep = max(sleep, float(retry_after))
        return sleep

    @staticmethod
    def retryable(error: BaseException) -> bool:
        """Overload, degradation-unavailable and transport errors retry;
        client bugs (400/404) and deadline expiry do not."""
        if isinstance(error, (RateLimited, Overloaded, Degraded)):
            return True
        if isinstance(error, (BadRequest, UnknownStore, DeadlineExceeded)):
            return False
        if isinstance(error, ServeError):
            return True
        if isinstance(error, ReproError):
            return False
        # Transport-level: connection refused/reset, truncated body
        # (``IncompleteRead``/``BadStatusLine`` are HTTPException, not
        # OSError), or a body cut mid-JSON (ValueError).
        return isinstance(error, (
            OSError, urllib.error.URLError,
            http.client.HTTPException, ValueError,
        ))


class ServeResponse(dict):
    """A response body; ``.degraded`` mirrors the server's flag."""

    @property
    def degraded(self) -> bool:
        return bool(self.get("degraded", False))


class ServeClient:
    """HTTP client for a :class:`~repro.serve.server.QueryServer`.

    ``client.knn(...)`` etc. mirror the :class:`~repro.query.QueryEngine`
    call shapes and return the decoded JSON body (floats round-trip
    bit-identically through JSON, so ``distances`` match the library path
    exactly).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
        budget: Optional[RetryBudget] = None,
        sleep: Callable[[float], None] = time.sleep,
        trace_id: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.policy = policy if policy is not None else RetryPolicy()
        self.budget = budget if budget is not None else RetryBudget()
        self._sleep = sleep
        #: Pinned trace id sent with every request; when ``None``, the
        #: ambient trace id (an open span on this thread) is used instead,
        #: so a traced caller's id propagates through the HTTP hop.
        self.trace_id = trace_id
        #: The trace id the server echoed (or minted) on the last response.
        self.last_trace_id: Optional[str] = None
        #: Lifetime counters, mostly for the tests and the quickstart.
        self.retries_total = 0
        self.requests_total = 0

    # -- transport ---------------------------------------------------------------

    def _once(self, method: str, path: str,
              body: Optional[Dict] = None) -> ServeResponse:
        url = f"{self.base_url}{path}"
        payload = None
        headers = {"Content-Type": "application/json"}
        trace_id = self.trace_id or current_trace_id()
        if trace_id:
            headers["X-Repro-Trace-Id"] = trace_id
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url, data=payload, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                echoed = rsp.headers.get("X-Repro-Trace-Id")
                if echoed:
                    self.last_trace_id = echoed
                return ServeResponse(json.loads(rsp.read().decode("utf-8")))
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from None

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> BaseException:
        """An HTTP error status back into its taxonomy exception."""
        retry_after = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        try:
            envelope = json.loads(exc.read().decode("utf-8"))
            info = envelope.get("error", {})
            code = info.get("code", "")
            message = info.get("message", str(exc))
            if retry_after is None and "retry_after" in info:
                retry_after = float(info["retry_after"])
        except Exception:
            code, message = "", f"HTTP {exc.code}: {exc.reason}"
            info = {}
        if code == "query.deadline-exceeded":
            return DeadlineExceeded(
                message,
                budget_ms=info.get("budget_ms"),
                elapsed_ms=info.get("elapsed_ms"),
                completed=info.get("completed"),
                total=info.get("total"),
            )
        cls = _CODE_TO_ERROR.get(code)
        if cls is not None:
            return cls(message, retry_after=retry_after)
        error = ServeError(message, retry_after=retry_after)
        if code:
            error.code = code
        error.status = exc.code
        return error

    def _call(self, method: str, path: str,
              body: Optional[Dict] = None) -> ServeResponse:
        """One logical request: attempts, backoff, budget, Retry-After."""
        self.requests_total += 1
        last: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            if attempt > 0:
                if not self.budget.try_withdraw():
                    raise RetryBudgetExceeded(
                        f"retry budget exhausted after {attempt} attempts "
                        f"({path}); backing off",
                        attempts=attempt, last_error=last,
                    )
                self.retries_total += 1
                self._sleep(self.policy.sleep_for(
                    attempt - 1, getattr(last, "retry_after", None)
                ))
            try:
                result = self._once(method, path, body)
                self.budget.deposit()
                return result
            except BaseException as error:  # noqa: BLE001 — classified below
                if not self.policy.retryable(error):
                    raise
                last = error
        assert last is not None
        raise last

    # -- endpoints ---------------------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self._call("GET", "/healthz")

    def stores(self) -> List[str]:
        return list(self._call("GET", "/stores").get("stores", []))

    def store_info(self, store: str) -> ServeResponse:
        return self._call("GET", f"/stores/{store}")

    def metrics(self) -> ServeResponse:
        return self._call("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The server's Prometheus text exposition (``/metrics``)."""
        import urllib.request as _request

        request = _request.Request(
            f"{self.base_url}/metrics?format=prometheus", method="GET"
        )
        with _request.urlopen(request, timeout=self.timeout) as rsp:
            return rsp.read().decode("utf-8")

    def traces_recent(self, n: int = 16) -> List[Dict]:
        """Recent finished trace trees from the server's ring buffer."""
        return list(
            self._call("GET", f"/traces/recent?n={int(n)}").get("traces", [])
        )

    def knn(
        self,
        store: str,
        queries,
        k: int = 5,
        use_index: bool = True,
        refine_chunk: int = 16,
        exclude_ids: Sequence = (),
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {
            "queries": _listify(queries),
            "k": int(k),
            "use_index": bool(use_index),
            "refine_chunk": int(refine_chunk),
        }
        if exclude_ids:
            body["exclude_ids"] = list(exclude_ids)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/knn", body)

    def match(self, store: str, pattern: str,
              meters: Optional[Sequence] = None,
              deadline_ms: Optional[float] = None) -> ServeResponse:
        body: Dict[str, Any] = {"pattern": pattern}
        if meters is not None:
            body["meters"] = list(meters)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/match", body)

    def agg(self, store: str, meters: Optional[Sequence] = None,
            level: Optional[int] = None, per_day: bool = False,
            deadline_ms: Optional[float] = None) -> ServeResponse:
        body: Dict[str, Any] = {"per_day": bool(per_day)}
        if meters is not None:
            body["meters"] = list(meters)
        if level is not None:
            body["level"] = int(level)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/agg", body)

    def anomaly(self, store: str, meters: Optional[Sequence] = None,
                deadline_ms: Optional[float] = None) -> ServeResponse:
        body: Dict[str, Any] = {}
        if meters is not None:
            body["meters"] = list(meters)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/anomaly", body)

    def drift(self, store: str, meters: Optional[Sequence] = None,
              deadline_ms: Optional[float] = None) -> ServeResponse:
        body: Dict[str, Any] = {}
        if meters is not None:
            body["meters"] = list(meters)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/drift", body)

    def private_agg(self, store: str, meters: Optional[Sequence] = None,
                    level: Optional[int] = None, k_anon: int = 5,
                    epsilon: Optional[float] = None, seed: int = 0,
                    deadline_ms: Optional[float] = None) -> ServeResponse:
        body: Dict[str, Any] = {"k_anon": int(k_anon), "seed": int(seed)}
        if meters is not None:
            body["meters"] = list(meters)
        if level is not None:
            body["level"] = int(level)
        if epsilon is not None:
            body["epsilon"] = float(epsilon)
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        return self._call("POST", f"/stores/{store}/private_agg", body)

    def append(self, store: str, indices, reason: str = "append",
               idempotency_key: Optional[str] = None) -> ServeResponse:
        """Append a segment; safe to retry (key auto-generated if absent)."""
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        body = {
            "indices": _listify(indices),
            "reason": reason,
            "idempotency_key": idempotency_key,
        }
        return self._call("POST", f"/stores/{store}/append", body)


def _listify(value) -> Any:
    """Arrays → nested lists; lists pass through (json can't take ndarray)."""
    tolist = getattr(value, "tolist", None)
    return tolist() if callable(tolist) else value
