"""The wire contract of the query service: JSON bodies, both directions.

One module owns every translation between library objects and wire JSON so
the server, the client and the tests agree by construction:

* result serializers (``knn_body``, ``match_body``, ...) turn the engine's
  report objects into plain-JSON dicts.  Floats pass through ``json`` with
  ``repr`` round-tripping, so a value decoded from a response is
  bit-identical to the library result — the parity tests pin this.
* :func:`error_body` renders any :class:`~repro.errors.ReproError` into the
  structured error envelope ``{"error": {"code", "message", ...}}``.  The
  ``code`` values are the stable taxonomy of :mod:`repro.errors`; clients
  branch on them, never on message prose.
* :func:`parse_queries` and friends validate request bodies, raising
  :class:`~repro.errors.BadRequest` (HTTP 400) on malformed input instead
  of leaking a ``TypeError`` as a 500.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ReproError,
    ServeError,
)

__all__ = [
    "agg_body",
    "anomaly_body",
    "drift_body",
    "dumps",
    "error_body",
    "knn_body",
    "match_body",
    "parse_body",
    "parse_queries",
    "private_agg_body",
    "status_of",
    "store_info_body",
]

#: Largest accepted request body: queries are batches of float vectors, not
#: bulk uploads; anything bigger is a client bug or abuse.
MAX_BODY_BYTES = 64 * 1024 * 1024


def dumps(payload: Dict[str, Any]) -> bytes:
    """Canonical response encoding (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body to a dict, 400 on anything malformed."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}")
    if not isinstance(body, dict):
        raise BadRequest(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def parse_queries(body: Dict[str, Any]) -> np.ndarray:
    """The ``queries`` field as a float64 array, 400 on bad shape/values."""
    queries = body.get("queries")
    if queries is None:
        raise BadRequest("request body needs a 'queries' field")
    try:
        arr = np.asarray(queries, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"'queries' is not numeric: {exc}")
    if arr.ndim not in (1, 2) or arr.size == 0:
        raise BadRequest(
            f"'queries' must be one vector or a batch of vectors, "
            f"got shape {arr.shape}"
        )
    return arr


def status_of(error: BaseException) -> int:
    """The HTTP status an exception maps to."""
    if isinstance(error, ServeError):
        return error.status
    if isinstance(error, DeadlineExceeded):
        return 504
    if isinstance(error, ReproError):
        return 400 if error.code.endswith(".invalid") else 500
    return 500


def error_body(error: BaseException, retry_after: Optional[float] = None) -> Dict:
    """The structured error envelope for ``error``.

    ``retry_after`` (seconds) is echoed inside the body *and* belongs in the
    ``Retry-After`` header — the server sets both from the same value so a
    client that only reads bodies still sees the hint.
    """
    code = getattr(error, "code", "internal")
    payload: Dict[str, Any] = {
        "code": code,
        "message": str(error),
    }
    if retry_after is None:
        retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    if isinstance(error, DeadlineExceeded):
        payload["budget_ms"] = error.budget_ms
        payload["elapsed_ms"] = error.elapsed_ms
        payload["completed"] = error.completed
        payload["total"] = error.total
    return {"error": payload}


# -- result serializers ----------------------------------------------------------


def knn_body(result) -> Dict[str, Any]:
    """Serialize a :class:`~repro.query.engine.KNNResult`."""
    return {
        "positions": result.positions.tolist(),
        "ids": [[_plain(i) for i in row] for row in result.ids],
        "distances": result.distances.tolist(),
        "stats": {
            "n_queries": result.stats.n_queries,
            "n_candidates": result.stats.n_candidates,
            "refined": result.stats.refined,
            "index_used": result.stats.index_used,
        },
    }


def match_body(matches) -> Dict[str, Any]:
    """Serialize a :class:`~repro.query.patterns.PatternMatches`."""
    return {
        "pattern": matches.pattern,
        "spans": {
            str(meter): [[int(a), int(b)] for a, b in spans]
            for meter, spans in matches.spans.items()
        },
        "columns_scanned": int(matches.columns_scanned),
        "columns_skipped": int(matches.columns_skipped),
        "runs_scanned": int(matches.runs_scanned),
        "windows_total": int(matches.windows_total),
        "total_matches": int(matches.total_matches),
    }


def agg_body(report) -> Dict[str, Any]:
    """Serialize an :class:`~repro.query.aggregate.AggregateReport`."""
    body = {
        "ids": [_plain(i) for i in report.ids],
        "level": int(report.level),
        "symbol_counts": report.symbol_counts.tolist(),
        "peak_level": report.peak_level.tolist(),
        "duty_cycle": report.duty_cycle.tolist(),
        "run_count": report.run_count.tolist(),
        "mean_run_length": report.mean_run_length.tolist(),
    }
    if report.daily_peak is not None:
        body["daily_peak"] = report.daily_peak.tolist()
    return body


def anomaly_body(report) -> Dict[str, Any]:
    """Serialize an :class:`~repro.query.ops.AnomalyReport`."""
    return {
        "ids": [_plain(i) for i in report.ids],
        "scores": report.scores.tolist(),
        "transitions": report.transitions.tolist(),
        "model": report.model.tolist(),
    }


def drift_body(report) -> Dict[str, Any]:
    """Serialize a :class:`~repro.query.ops.DriftReport`."""
    return {
        "ids": [_plain(i) for i in report.ids],
        "distances": report.distances.tolist(),
        "reference": report.reference,
        "columns_decoded": int(report.columns_decoded),
    }


def private_agg_body(report) -> Dict[str, Any]:
    """Serialize a :class:`~repro.query.ops.PrivateAggregateReport`."""
    return {
        "n_meters": int(report.n_meters),
        "level": int(report.level),
        "k_anon": int(report.k_anon),
        "epsilon": None if report.epsilon is None else float(report.epsilon),
        "symbol_counts": report.symbol_counts.tolist(),
        "suppressed": report.suppressed.tolist(),
        "duty_cycle": float(report.duty_cycle),
        "band_profile": report.band_profile.tolist(),
    }


def store_info_body(store, name: str, generation: Optional[int]) -> Dict:
    """The ``/stores/<name>`` description (store-info over the wire)."""
    body: Dict[str, Any] = {
        "name": name,
        "path": str(store.path),
        "n_meters": int(store.n_meters),
        "n_symbols": int(store.n_symbols),
        "alphabet_size": int(store.alphabet_size),
        "layout": store.layout,
    }
    if generation is not None:
        body["generation"] = int(generation)
    quarantined = getattr(store, "quarantined", None)
    if quarantined is not None:
        body["n_segments"] = int(store.n_segments)
        body["quarantined"] = [
            {"segment": seg, "reason": why} for seg, why in quarantined
        ]
    return body


def _plain(value) -> Any:
    """Meter ids as JSON scalars (numpy ints ride in id lists)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def parse_meters(body: Dict[str, Any]) -> Optional[List]:
    """The optional ``meters`` field (None = whole fleet)."""
    meters = body.get("meters")
    if meters is None:
        return None
    if not isinstance(meters, list):
        raise BadRequest(
            f"'meters' must be a list, got {type(meters).__name__}"
        )
    return meters
