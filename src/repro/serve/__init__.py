"""``repro.serve``: a fault-tolerant query service over symbol stores.

Stdlib-only (``http.server`` + ``socketserver`` threading) HTTP+JSON
serving of the :class:`~repro.query.QueryEngine` workloads — kNN, pattern
match, aggregation, anomaly, drift, private aggregates, store info and
segment appends — with robustness as the design center:

:mod:`repro.serve.limiter`
    Token-bucket rate limiting (429 + honest ``Retry-After``).

:mod:`repro.serve.admission`
    Bounded concurrency + bounded queue: overload sheds fast with a
    structured 503 instead of queuing unboundedly.

:mod:`repro.serve.breaker`
    Per-store circuit breaker: repeated integrity failures flip to
    degraded (quarantine-aware, ``"degraded": true``) serving while a
    background scrub heals; a half-open trial re-verifies before the flag
    clears.

:mod:`repro.serve.server`
    :class:`QueryServer` / :func:`serve`: the threaded server, snapshot
    leases with hot manifest-generation reload, per-request deadlines
    propagated into the scan (504 with partial-work accounting), and
    idempotency-keyed appends that survive SIGKILL.

:mod:`repro.serve.client`
    :class:`ServeClient`: exponential backoff with full jitter, retry
    budgets, ``Retry-After`` obedience, idempotency keys.

:mod:`repro.serve.protocol`
    The wire contract: result serializers (bit-identical float round-trip)
    and the ``{"error": {"code", ...}}`` envelope over the stable
    :mod:`repro.errors` taxonomy.
"""

from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .client import RetryBudget, RetryPolicy, ServeClient, ServeResponse
from .limiter import TokenBucket
from .server import QueryServer, ServerConfig, StoreManager, serve

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "QueryServer",
    "RetryBudget",
    "RetryPolicy",
    "ServeClient",
    "ServeResponse",
    "ServerConfig",
    "StoreManager",
    "TokenBucket",
    "serve",
]
