"""Per-store circuit breaker: repeated integrity failures trip to degraded.

The serving failure this guards against: a segment starts failing checksum
verification mid-serve (bit-rot, torn append).  Without a breaker every
request pays the doomed read and surfaces an error; with one, after
``failure_threshold`` integrity failures the store flips to **degraded**
serving — the quarantine-aware snapshot (damaged segments skipped) answers
with ``"degraded": true`` while a background scrub repairs the directory.
After ``reset_timeout`` seconds a half-open trial re-opens the store
strictly; success closes the breaker and clears the flag.

States follow the classic machine:

``closed``      healthy; failures increment a consecutive counter.
``open``        tripped; serve degraded, no strict opens until the timeout.
``half-open``   one trial strict open allowed; success → closed,
                failure → open again (timer restarts).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(failure_threshold) < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        #: Lifetime counters for ``/metrics``.
        self.trips_total = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (time-advanced)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
        return self._state

    def allow_trial(self) -> bool:
        """May this request attempt the strict (non-degraded) path?

        ``closed`` → yes.  ``open`` → no.  ``half-open`` → yes, once: the
        state moves back to ``open`` immediately so concurrent requests do
        not stampede the trial; :meth:`record_success` closes it.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open":
                self._state = "open"
                self._opened_at = self._clock()
                return True
            return False

    def record_failure(self) -> bool:
        """Count one integrity failure; returns True when this trips it."""
        with self._lock:
            self._failures += 1
            if self._state == "closed" and (
                self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.trips_total += 1
                return True
            if self._state != "closed":
                # A failed half-open trial lands here: re-arm the timer.
                self._state = "open"
                self._opened_at = self._clock()
            return False

    def record_success(self) -> None:
        """A strict-path success: close the breaker, forget the streak."""
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "trips_total": self.trips_total,
            }
