"""Bounded admission: at most N requests executing, at most M waiting.

The availability argument: an unbounded queue converts overload into
unbounded latency — every queued request eventually gets an answer nobody
is still waiting for.  A *bounded* queue converts overload into fast,
structured :class:`~repro.errors.Overloaded` (503) responses the client's
backoff absorbs, and the server's concurrency never exceeds
``max_concurrent`` so admitted requests keep their latency.

``AdmissionGate`` is a condition-variable turnstile, not an actual queue of
work items: a request thread either starts executing, waits (bounded in
count and time) for a slot, or is shed immediately.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Optional

from ..errors import Overloaded

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Two-bound turnstile: ``max_concurrent`` running, ``max_queue`` waiting.

    ``queue_timeout`` bounds how long a waiter holds on before it is shed
    anyway — a slot that never frees (wedged handler) must not grow a
    silent convoy.  Use as ``with gate.admit(): handle()``.
    """

    def __init__(
        self,
        max_concurrent: int,
        max_queue: int = 0,
        queue_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(max_concurrent) < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.max_concurrent = int(max_concurrent)
        self.max_queue = max(0, int(max_queue))
        self.queue_timeout = float(queue_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self.active = 0
        self.waiting = 0
        #: Lifetime counters for ``/metrics``.
        self.admitted_total = 0
        self.shed_total = 0

    @contextmanager
    def admit(self):
        """Hold one execution slot; raise :class:`Overloaded` when shed."""
        self._acquire()
        try:
            yield self
        finally:
            self._release()

    def _acquire(self) -> None:
        with self._lock:
            if self.active < self.max_concurrent:
                self.active += 1
                self.admitted_total += 1
                return
            if self.waiting >= self.max_queue:
                self.shed_total += 1
                raise Overloaded(
                    f"server at capacity ({self.active} running, "
                    f"{self.waiting} queued); retry later",
                    retry_after=self._retry_after(),
                )
            self.waiting += 1
            deadline = self._clock() + self.queue_timeout
            try:
                while self.active >= self.max_concurrent:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._slot_freed.wait(remaining):
                        # Timed out in the queue: shed rather than convoy.
                        self.shed_total += 1
                        raise Overloaded(
                            f"queued {self.queue_timeout:.1f}s without a "
                            f"free slot; retry later",
                            retry_after=self._retry_after(),
                        )
                self.active += 1
                self.admitted_total += 1
            finally:
                self.waiting -= 1

    def _release(self) -> None:
        with self._lock:
            self.active -= 1
            self._slot_freed.notify()

    def _retry_after(self) -> float:
        """An honest hint: roughly one queue-drain's worth of seconds."""
        depth = self.active + self.waiting
        return max(0.05, min(self.queue_timeout, 0.1 * depth))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active": self.active,
                "waiting": self.waiting,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }
