"""repro — reproduction of "Symbolic Representation of Smart Meter Data" (EDBT 2013).

The package is organised as:

``repro.core``
    The paper's contribution: vertical/horizontal segmentation, lookup
    tables, batch and online symbolic encoders, multi-resolution operations
    and the compression model.

``repro.baselines``
    PAA, SAX and iSAX, the representations the paper positions itself against.

``repro.datasets``
    Synthetic substitutes for the REDD, Smart* and Irish CER datasets.

``repro.ml``
    From-scratch classifiers/regressors standing in for Weka (Naive Bayes,
    decision tree, random forest, logistic regression, SVR) plus metrics and
    cross-validation.

``repro.analytics``
    The paper's two applications: household classification (customer
    segmentation) and symbolic load forecasting, plus privacy measures.

``repro.pipeline``
    The unified vectorized encoding engine: composable stages, the
    batch/streaming :class:`Pipeline` and the fleet-scale
    :class:`FleetEncoder` that batch and online encoders delegate to.

``repro.parallel``
    Deterministic multi-core execution: grid cells, cross-validation folds
    and fleet meter shards over a process pool with bit-identical outputs.

``repro.store``
    Out-of-core bit-packed symbol storage: the columnar, memory-mapped
    ``.rsym`` store that persists encoded fleets and day-vector tables at
    the paper's ``ceil(log2(k))`` bits per symbol, as real bytes.

``repro.experiments``
    Reproduction harness for every table and figure of the evaluation.
"""

from . import (
    analytics,
    baselines,
    core,
    datasets,
    experiments,
    ml,
    parallel,
    pipeline,
    store,
)
from .core import (
    BinaryAlphabet,
    LookupTable,
    OnlineEncoder,
    Symbol,
    SymbolicEncoder,
    SymbolicSeries,
    TimeSeries,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BinaryAlphabet",
    "LookupTable",
    "OnlineEncoder",
    "ReproError",
    "Symbol",
    "SymbolicEncoder",
    "SymbolicSeries",
    "TimeSeries",
    "__version__",
    "analytics",
    "baselines",
    "core",
    "datasets",
    "experiments",
    "ml",
    "parallel",
    "pipeline",
    "store",
]
