"""Horizontal segmentation: value quantisation into symbols (Definition 3).

Horizontal segmentation turns a real-valued time series into a *symbolic*
time series using a :class:`~repro.core.lookup.LookupTable`.  The result is a
:class:`SymbolicSeries`, which keeps the timestamps so that the symbolic data
can still be sliced into days, fed to classifiers, or decoded back into an
(approximate) real-valued series.

Since the :mod:`repro.pipeline` refactor a :class:`SymbolicSeries` is backed
by an ``int64`` *index array* (the raw output of the pipeline's lookup
stage); :class:`~repro.core.alphabet.Symbol` objects are flyweights
materialised lazily only when a caller actually asks for them.  Slicing,
decoding, histograms and resolution changes therefore run as NumPy array
operations end-to-end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SegmentationError
from .alphabet import BinaryAlphabet, Symbol
from .lookup import LookupTable
from .timeseries import TimeSeries, SECONDS_PER_DAY

__all__ = ["SymbolicSeries", "horizontal_segment"]


class SymbolicSeries:
    """A time-ordered sequence of ``(timestamp, Symbol)`` pairs.

    Instances are produced by :func:`horizontal_segment` or by
    :class:`repro.core.encoder.SymbolicEncoder`; they remember the lookup
    table that produced them so they can decode themselves.  Internally the
    symbols are stored as a read-only index array; use
    :meth:`from_indices` to build a series straight from pipeline output
    without materialising any :class:`Symbol` objects.
    """

    __slots__ = ("_timestamps", "_indices", "_symbol_cache", "_table", "name")

    def __init__(
        self,
        timestamps: Sequence[float],
        symbols: Sequence[Symbol],
        table: LookupTable,
        name: str = "",
    ) -> None:
        depth = table.alphabet.depth
        for sym in symbols:
            if sym.depth != depth:
                raise SegmentationError(
                    f"symbol {sym.word!r} has depth {sym.depth}, expected {depth}"
                )
        indices = np.fromiter(
            (sym.index for sym in symbols), dtype=np.int64, count=len(symbols)
        )
        self._init_from_indices(timestamps, indices, table, name)
        self._symbol_cache = tuple(symbols)

    # -- fast construction -----------------------------------------------------

    @classmethod
    def from_indices(
        cls,
        timestamps: Sequence[float],
        indices: Union[Sequence[int], np.ndarray],
        table: LookupTable,
        name: str = "",
        copy: bool = True,
    ) -> "SymbolicSeries":
        """Build a series directly from a symbol-index array (pipeline output).

        This is the vectorized constructor: indices are range-checked as one
        array comparison and no :class:`Symbol` objects are created until
        :attr:`symbols` (or iteration) is first used.  The series freezes its
        index array; by default an aliased writable input is copied so the
        caller's own buffer stays writable — pass ``copy=False`` to hand the
        array over when it will not be reused.
        """
        series = cls.__new__(cls)
        arr = np.asarray(indices, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= table.size):
            raise SegmentationError(
                f"symbol indices out of range for alphabet of size {table.size}"
            )
        if copy and arr is indices and arr.flags.writeable:
            # Don't freeze the caller's own (aliased) buffer in place.
            arr = arr.copy()
        series._init_from_indices(timestamps, arr, table, name)
        series._symbol_cache = None
        return series

    def _init_from_indices(
        self,
        timestamps: Sequence[float],
        indices: np.ndarray,
        table: LookupTable,
        name: str,
    ) -> None:
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.shape[0] != indices.shape[0]:
            raise SegmentationError(
                f"length mismatch: {ts.shape[0]} timestamps vs "
                f"{indices.shape[0]} symbols"
            )
        if ts.shape[0] > 1 and np.any(np.diff(ts) < 0):
            raise SegmentationError("timestamps must be non-decreasing")
        ts.setflags(write=False)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        indices.setflags(write=False)
        self._timestamps = ts
        self._indices = indices
        self._table = table
        self.name = name

    def _slice(self, timestamps: np.ndarray, indices: np.ndarray) -> "SymbolicSeries":
        """Internal trusted constructor for already-validated subsets."""
        series = SymbolicSeries.__new__(SymbolicSeries)
        series._init_from_indices(timestamps, indices, self._table, self.name)
        series._symbol_cache = None
        return series

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._indices.shape[0])

    def __iter__(self) -> Iterator[Tuple[float, Symbol]]:
        return iter(zip(self._timestamps, self.symbols))

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return self._slice(self._timestamps[index], self._indices[index])
        return (
            float(self._timestamps[index]),
            self._table.alphabet.symbol(int(self._indices[index])),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicSeries):
            return NotImplemented
        return (
            self.alphabet.depth == other.alphabet.depth
            and np.array_equal(self._timestamps, other._timestamps)
            and np.array_equal(self._indices, other._indices)
        )

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"SymbolicSeries(len={len(self)}, k={self._table.size}{label})"

    # -- accessors --------------------------------------------------------------

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only timestamps (seconds)."""
        return self._timestamps

    @property
    def symbols(self) -> Tuple[Symbol, ...]:
        """The symbols in time order (flyweights, materialised lazily)."""
        if self._symbol_cache is None:
            self._symbol_cache = tuple(
                self._table.symbols_for_indices(self._indices)
            )
        return self._symbol_cache

    @property
    def words(self) -> List[str]:
        """The symbols as binary strings, e.g. ``['010', '110', ...]``."""
        word_array = np.empty(self._table.size, dtype=object)
        word_array[:] = self.alphabet.words
        return word_array[self._indices].tolist()

    @property
    def indices(self) -> np.ndarray:
        """The symbols as integer subrange indices (read-only array)."""
        return self._indices

    @property
    def table(self) -> LookupTable:
        """The lookup table used to produce this series."""
        return self._table

    @property
    def alphabet(self) -> BinaryAlphabet:
        """Shortcut for ``table.alphabet``."""
        return self._table.alphabet

    def to_string(self, separator: str = " ") -> str:
        """Join the binary words into one string (storage / hashing form)."""
        return separator.join(self.words)

    def size_in_bits(self) -> int:
        """Storage footprint: ``len(self) * bits_per_symbol``."""
        return len(self) * self.alphabet.bits_per_symbol

    # -- decoding --------------------------------------------------------------

    def decode(self) -> TimeSeries:
        """Reconstruct an approximate real-valued series (symbol -> value)."""
        values = self._table.values_for_indices(self._indices)
        return TimeSeries(self._timestamps, values, name=self.name)

    # -- resolution changes -------------------------------------------------------

    def demote(self, alphabet_size: int) -> "SymbolicSeries":
        """Re-express with a coarser alphabet (Section 4 flexibility).

        Because separators of the coarser table are a subset only in the
        uniform recursive construction, demotion here is purely symbolic:
        each word is truncated (an index right-shift), and the coarser table
        keeps every other separator of the current one.  This mirrors the
        paper's claim that "higher resolution symbols can easily be converted
        to lower resolution".
        """
        target = BinaryAlphabet(alphabet_size)
        if target.depth > self.alphabet.depth:
            raise SegmentationError("demote() requires a smaller alphabet size")
        step = 2 ** (self.alphabet.depth - target.depth)
        new_separators = self._table.separators[step - 1::step]
        new_table = LookupTable(target, new_separators)
        new_indices = self._indices >> (self.alphabet.depth - target.depth)
        return SymbolicSeries.from_indices(
            self._timestamps, new_indices, new_table, name=self.name, copy=False
        )

    # -- slicing helpers ------------------------------------------------------------

    def between(self, start: float, end: float) -> "SymbolicSeries":
        """Sub-series with ``start <= timestamp < end``."""
        mask = (self._timestamps >= start) & (self._timestamps < end)
        return self._slice(self._timestamps[mask], self._indices[mask])

    def split_days(self, day_length: float = SECONDS_PER_DAY) -> List["SymbolicSeries"]:
        """Split into day-long chunks aligned to the first timestamp."""
        if len(self) == 0:
            return []
        origin = float(self._timestamps[0])
        day_index = np.floor((self._timestamps - origin) / day_length).astype(int)
        out: List[SymbolicSeries] = []
        for day in range(int(day_index[-1]) + 1):
            mask = day_index == day
            if not np.any(mask):
                continue
            out.append(self._slice(self._timestamps[mask], self._indices[mask]))
        return out

    # -- statistics ------------------------------------------------------------------

    def symbol_counts(self) -> dict:
        """Histogram ``{word: count}`` over the alphabet (zero-filled)."""
        counts = np.bincount(self._indices, minlength=self._table.size)
        return {
            word: int(count) for word, count in zip(self.alphabet.words, counts)
        }

    def entropy(self) -> float:
        """Shannon entropy (bits) of the empirical symbol distribution.

        The paper argues the median method maximises this entropy; the
        ablation benchmarks verify it.
        """
        if len(self) == 0:
            return 0.0
        counts = np.bincount(self._indices, minlength=self._table.size).astype(
            np.float64
        )
        probs = counts[counts > 0] / counts.sum()
        return float(-(probs * np.log2(probs)).sum())


def horizontal_segment(
    series: TimeSeries, table: LookupTable, name: str = ""
) -> SymbolicSeries:
    """Apply Definition 3: map every value of ``series`` to its symbol.

    Delegates to the vectorized lookup (the pipeline's
    :class:`~repro.pipeline.stages.LookupStage` kernel): one
    ``np.searchsorted`` produces the index array and no per-value
    :class:`Symbol` objects are created.
    """
    indices = table.indices_for_values(series.values)
    return SymbolicSeries.from_indices(
        series.timestamps, indices, table, name=name or series.name, copy=False
    )
