"""Horizontal segmentation: value quantisation into symbols (Definition 3).

Horizontal segmentation turns a real-valued time series into a *symbolic*
time series using a :class:`~repro.core.lookup.LookupTable`.  The result is a
:class:`SymbolicSeries`, which keeps the timestamps so that the symbolic data
can still be sliced into days, fed to classifiers, or decoded back into an
(approximate) real-valued series.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..errors import SegmentationError
from .alphabet import BinaryAlphabet, Symbol
from .lookup import LookupTable
from .timeseries import TimeSeries, SECONDS_PER_DAY

__all__ = ["SymbolicSeries", "horizontal_segment"]


class SymbolicSeries:
    """A time-ordered sequence of ``(timestamp, Symbol)`` pairs.

    Instances are produced by :func:`horizontal_segment` or by
    :class:`repro.core.encoder.SymbolicEncoder`; they remember the lookup
    table that produced them so they can decode themselves.
    """

    __slots__ = ("_timestamps", "_symbols", "_table", "name")

    def __init__(
        self,
        timestamps: Sequence[float],
        symbols: Sequence[Symbol],
        table: LookupTable,
        name: str = "",
    ) -> None:
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.shape[0] != len(symbols):
            raise SegmentationError(
                f"length mismatch: {ts.shape[0]} timestamps vs {len(symbols)} symbols"
            )
        if ts.shape[0] > 1 and np.any(np.diff(ts) < 0):
            raise SegmentationError("timestamps must be non-decreasing")
        depth = table.alphabet.depth
        for sym in symbols:
            if sym.depth != depth:
                raise SegmentationError(
                    f"symbol {sym.word!r} has depth {sym.depth}, expected {depth}"
                )
        ts.setflags(write=False)
        self._timestamps = ts
        self._symbols: Tuple[Symbol, ...] = tuple(symbols)
        self._table = table
        self.name = name

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Tuple[float, Symbol]]:
        return iter(zip(self._timestamps, self._symbols))

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return SymbolicSeries(
                self._timestamps[index],
                self._symbols[index],
                self._table,
                name=self.name,
            )
        return (float(self._timestamps[index]), self._symbols[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicSeries):
            return NotImplemented
        return (
            np.array_equal(self._timestamps, other._timestamps)
            and self._symbols == other._symbols
        )

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"SymbolicSeries(len={len(self)}, k={self._table.size}{label})"

    # -- accessors --------------------------------------------------------------

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only timestamps (seconds)."""
        return self._timestamps

    @property
    def symbols(self) -> Tuple[Symbol, ...]:
        """The symbols in time order."""
        return self._symbols

    @property
    def words(self) -> List[str]:
        """The symbols as binary strings, e.g. ``['010', '110', ...]``."""
        return [s.word for s in self._symbols]

    @property
    def indices(self) -> np.ndarray:
        """The symbols as integer subrange indices (useful for ML features)."""
        return np.asarray([s.index for s in self._symbols], dtype=np.int64)

    @property
    def table(self) -> LookupTable:
        """The lookup table used to produce this series."""
        return self._table

    @property
    def alphabet(self) -> BinaryAlphabet:
        """Shortcut for ``table.alphabet``."""
        return self._table.alphabet

    def to_string(self, separator: str = " ") -> str:
        """Join the binary words into one string (storage / hashing form)."""
        return separator.join(self.words)

    def size_in_bits(self) -> int:
        """Storage footprint: ``len(self) * bits_per_symbol``."""
        return len(self) * self.alphabet.bits_per_symbol

    # -- decoding --------------------------------------------------------------

    def decode(self) -> TimeSeries:
        """Reconstruct an approximate real-valued series (symbol -> value)."""
        values = self._table.values_for_symbols(self._symbols)
        return TimeSeries(self._timestamps, values, name=self.name)

    # -- resolution changes -------------------------------------------------------

    def demote(self, alphabet_size: int) -> "SymbolicSeries":
        """Re-express with a coarser alphabet (Section 4 flexibility).

        Because separators of the coarser table are a subset only in the
        uniform recursive construction, demotion here is purely symbolic:
        each word is truncated, and the coarser table keeps every other
        separator of the current one.  This mirrors the paper's claim that
        "higher resolution symbols can easily be converted to lower
        resolution".
        """
        target = BinaryAlphabet(alphabet_size)
        if target.depth > self.alphabet.depth:
            raise SegmentationError("demote() requires a smaller alphabet size")
        step = 2 ** (self.alphabet.depth - target.depth)
        new_separators = self._table.separators[step - 1::step]
        new_table = LookupTable(target, new_separators)
        new_symbols = [s.demote(target.depth) for s in self._symbols]
        return SymbolicSeries(self._timestamps, new_symbols, new_table, name=self.name)

    # -- slicing helpers ------------------------------------------------------------

    def between(self, start: float, end: float) -> "SymbolicSeries":
        """Sub-series with ``start <= timestamp < end``."""
        mask = (self._timestamps >= start) & (self._timestamps < end)
        symbols = [s for s, keep in zip(self._symbols, mask) if keep]
        return SymbolicSeries(
            self._timestamps[mask], symbols, self._table, name=self.name
        )

    def split_days(self, day_length: float = SECONDS_PER_DAY) -> List["SymbolicSeries"]:
        """Split into day-long chunks aligned to the first timestamp."""
        if len(self) == 0:
            return []
        origin = float(self._timestamps[0])
        day_index = np.floor((self._timestamps - origin) / day_length).astype(int)
        out: List[SymbolicSeries] = []
        for day in range(int(day_index[-1]) + 1):
            mask = day_index == day
            if not np.any(mask):
                continue
            symbols = [s for s, keep in zip(self._symbols, mask) if keep]
            out.append(
                SymbolicSeries(
                    self._timestamps[mask], symbols, self._table, name=self.name
                )
            )
        return out

    # -- statistics ------------------------------------------------------------------

    def symbol_counts(self) -> dict:
        """Histogram ``{word: count}`` over the alphabet (zero-filled)."""
        counts = {word: 0 for word in self.alphabet.words}
        for sym in self._symbols:
            counts[sym.word] += 1
        return counts

    def entropy(self) -> float:
        """Shannon entropy (bits) of the empirical symbol distribution.

        The paper argues the median method maximises this entropy; the
        ablation benchmarks verify it.
        """
        if len(self) == 0:
            return 0.0
        counts = np.asarray(list(self.symbol_counts().values()), dtype=np.float64)
        probs = counts[counts > 0] / counts.sum()
        return float(-(probs * np.log2(probs)).sum())


def horizontal_segment(
    series: TimeSeries, table: LookupTable, name: str = ""
) -> SymbolicSeries:
    """Apply Definition 3: map every value of ``series`` to its symbol."""
    symbols = table.symbols_for_values(series.values)
    return SymbolicSeries(
        series.timestamps, symbols, table, name=name or series.name
    )
