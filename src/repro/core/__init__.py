"""Core symbolic-representation library (the paper's contribution).

The public surface of this subpackage is:

* :class:`TimeSeries` / :class:`TimePoint` — raw measurement container.
* :class:`BinaryAlphabet` / :class:`Symbol` — variable-length binary symbols.
* separator-learning strategies (``uniform``, ``median``, ``distinctmedian``).
* :class:`LookupTable` — value ↔ symbol mapping.
* vertical segmentation helpers and :class:`VerticalSegmenter`.
* :class:`SymbolicSeries` and :func:`horizontal_segment`.
* :class:`SymbolicEncoder` — the batch fit/encode/decode pipeline.
* :class:`OnlineEncoder` — the sensor-side streaming pipeline.
* multi-resolution helpers and the :class:`CompressionModel`.
"""

from .alphabet import BinaryAlphabet, Symbol, is_power_of_two
from .compression import CompressionModel, CompressionReport, MeasuredCompression
from .encoder import SymbolicEncoder
from .horizontal import SymbolicSeries, horizontal_segment
from .lookup import LookupTable
from .multiresolution import (
    align_resolutions,
    common_resolution,
    demote_series,
    series_distance,
    symbol_distance,
)
from .separators import (
    CustomSeparators,
    DistinctMedianSeparators,
    MedianSeparators,
    SeparatorMethod,
    UniformSeparators,
    available_methods,
    get_method,
)
from .stats import AccumulativeStatistics, accumulative_statistics, convergence_time
from .streaming import EncodedWindow, OnlineEncoder, RunningStatistics, TableUpdate
from .timeseries import SECONDS_PER_DAY, SECONDS_PER_HOUR, TimePoint, TimeSeries
from .vertical import (
    AGGREGATORS,
    VerticalSegmenter,
    get_aggregator,
    segment_by_count,
    segment_by_duration,
)

__all__ = [
    "AGGREGATORS",
    "AccumulativeStatistics",
    "BinaryAlphabet",
    "CompressionModel",
    "CompressionReport",
    "CustomSeparators",
    "DistinctMedianSeparators",
    "EncodedWindow",
    "LookupTable",
    "MeasuredCompression",
    "MedianSeparators",
    "OnlineEncoder",
    "RunningStatistics",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SeparatorMethod",
    "Symbol",
    "SymbolicEncoder",
    "SymbolicSeries",
    "TableUpdate",
    "TimePoint",
    "TimeSeries",
    "UniformSeparators",
    "VerticalSegmenter",
    "accumulative_statistics",
    "align_resolutions",
    "available_methods",
    "common_resolution",
    "convergence_time",
    "demote_series",
    "get_aggregator",
    "get_method",
    "horizontal_segment",
    "is_power_of_two",
    "segment_by_count",
    "segment_by_duration",
    "series_distance",
    "symbol_distance",
]
