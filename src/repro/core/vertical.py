"""Vertical segmentation: temporal aggregation (paper Definition 2).

Vertical segmentation reduces *numerosity*: ``n`` consecutive raw samples are
collapsed into one, using an aggregation function.  The paper uses the
average (Definition 2) and mentions sum, maximum and minimum as alternatives;
all of them are provided here, plus median, because they share the same
segmentation machinery.

Two entry points are provided:

* :func:`segment_by_count` — aggregate every ``n`` samples (the paper's
  ``VA(S, n)``), which assumes a regularly-sampled series.
* :func:`segment_by_duration` — aggregate every ``seconds`` of wall-clock
  time (e.g. 15 minutes / 1 hour), robust to gaps and irregular sampling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np

from ..errors import SegmentationError
from .timeseries import TimeSeries

__all__ = [
    "Aggregator",
    "AGGREGATORS",
    "get_aggregator",
    "segment_by_count",
    "segment_by_duration",
    "VerticalSegmenter",
]

#: An aggregation function mapping a non-empty 1-D array to a scalar.
Aggregator = Callable[[np.ndarray], float]

AGGREGATORS: Dict[str, Aggregator] = {
    "average": lambda a: float(a.mean()),
    "sum": lambda a: float(a.sum()),
    "max": lambda a: float(a.max()),
    "min": lambda a: float(a.min()),
    "median": lambda a: float(np.median(a)),
}

#: Aliases accepted by :func:`get_aggregator`.
_ALIASES = {"mean": "average", "avg": "average", "maximum": "max", "minimum": "min"}


def get_aggregator(name: Union[str, Aggregator]) -> Aggregator:
    """Resolve an aggregator by name, or pass a callable through unchanged."""
    if callable(name):
        return name
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return AGGREGATORS[key]
    except KeyError:
        raise SegmentationError(
            f"unknown aggregator {name!r}; available: {sorted(AGGREGATORS)}"
        ) from None


def segment_by_count(
    series: TimeSeries,
    n: int,
    aggregator: Union[str, Aggregator] = "average",
    keep_partial: bool = False,
) -> TimeSeries:
    """Aggregate every ``n`` consecutive samples into one (``VA(S, n)``).

    The timestamp of each aggregated sample is the timestamp of the *last*
    raw sample in its window (``t_{i*n}`` in Definition 2).  A trailing
    window with fewer than ``n`` samples is dropped unless ``keep_partial``.
    """
    if n < 1:
        raise SegmentationError(f"window size must be >= 1, got {n}")
    agg = get_aggregator(aggregator)
    if len(series) == 0:
        return TimeSeries.empty(series.name)
    if n == 1:
        return series

    values = series.values
    timestamps = series.timestamps
    full_windows = len(series) // n
    out_times: List[float] = []
    out_values: List[float] = []
    for w in range(full_windows):
        lo, hi = w * n, (w + 1) * n
        out_times.append(float(timestamps[hi - 1]))
        out_values.append(agg(values[lo:hi]))
    if keep_partial and full_windows * n < len(series):
        out_times.append(float(timestamps[-1]))
        out_values.append(agg(values[full_windows * n:]))
    return TimeSeries(out_times, out_values, name=series.name)


def segment_by_duration(
    series: TimeSeries,
    seconds: float,
    aggregator: Union[str, Aggregator] = "average",
    min_samples: int = 1,
    align_to_origin: bool = True,
) -> TimeSeries:
    """Aggregate every ``seconds`` of wall-clock time into one sample.

    Windows are aligned to multiples of ``seconds`` from the first timestamp
    (``align_to_origin=True``) or from absolute time zero.  Windows with
    fewer than ``min_samples`` raw samples are skipped, which is how gaps in
    the REDD-like data propagate to missing aggregated slots.  The timestamp
    of an aggregated sample is the *start* of its window, which keeps slots
    comparable across days when building day vectors.
    """
    if seconds <= 0:
        raise SegmentationError(f"window duration must be positive, got {seconds}")
    if min_samples < 1:
        raise SegmentationError("min_samples must be >= 1")
    agg = get_aggregator(aggregator)
    if len(series) == 0:
        return TimeSeries.empty(series.name)

    timestamps = series.timestamps
    values = series.values
    origin = float(timestamps[0]) if align_to_origin else 0.0
    window_index = np.floor((timestamps - origin) / seconds).astype(np.int64)

    out_times: List[float] = []
    out_values: List[float] = []
    # np.unique returns sorted window ids and the first occurrence index of
    # each; since timestamps are sorted, samples of one window are contiguous.
    unique_windows, starts = np.unique(window_index, return_index=True)
    boundaries = list(starts) + [len(series)]
    for w, lo, hi in zip(unique_windows, boundaries[:-1], boundaries[1:]):
        if hi - lo < min_samples:
            continue
        out_times.append(origin + float(w) * seconds)
        out_values.append(agg(values[lo:hi]))
    return TimeSeries(out_times, out_values, name=series.name)


class VerticalSegmenter:
    """Configured vertical segmentation, reusable across series.

    Exactly one of ``count`` and ``seconds`` must be provided.  This object
    form is what :class:`repro.core.encoder.SymbolicEncoder` composes with a
    lookup table.
    """

    def __init__(
        self,
        count: int = 0,
        seconds: float = 0.0,
        aggregator: Union[str, Aggregator] = "average",
        min_samples: int = 1,
    ) -> None:
        if bool(count) == bool(seconds):
            raise SegmentationError(
                "provide exactly one of count (samples) or seconds (duration)"
            )
        self._count = int(count)
        self._seconds = float(seconds)
        self._aggregator = get_aggregator(aggregator)
        self._min_samples = min_samples

    @property
    def window_seconds(self) -> float:
        """Window length in seconds (0.0 when configured by sample count)."""
        return self._seconds

    @property
    def window_count(self) -> int:
        """Window length in samples (0 when configured by duration)."""
        return self._count

    @property
    def aggregator(self) -> Aggregator:
        """The resolved aggregation callable."""
        return self._aggregator

    def segment(self, series: TimeSeries) -> TimeSeries:
        """Apply the configured vertical segmentation to ``series``."""
        if self._count:
            return segment_by_count(series, self._count, self._aggregator)
        return segment_by_duration(
            series, self._seconds, self._aggregator, min_samples=self._min_samples
        )

    def __call__(self, series: TimeSeries) -> TimeSeries:
        return self.segment(series)

    def __repr__(self) -> str:
        if self._count:
            return f"VerticalSegmenter(count={self._count})"
        return f"VerticalSegmenter(seconds={self._seconds})"
