"""Separator learning for horizontal segmentation (paper Section 2.2).

A lookup table needs ``k - 1`` separators ``beta_1 < ... < beta_{k-1}`` that
partition the real line into ``k`` subranges, one per symbol.  The paper
proposes three strategies to learn them from (historical) data:

``uniform``
    Divide ``[0, max]`` into ``k`` equally wide subranges.

``median``
    Use the ``k``-quantiles of the raw values so that every symbol represents
    the same *number of measurements* (maximum-entropy symbols).  This is the
    generalisation of the SAX breakpoints to non-Gaussian data.

``median of distinct values`` (*distinctmedian*)
    Use the ``k``-quantiles of the *set* of distinct values, which removes the
    bias introduced when one value (e.g. the standby level) dominates.

Each strategy is a :class:`SeparatorMethod`; :func:`get_method` resolves the
string names used throughout the paper and in experiment configurations.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Sequence, Type

import numpy as np

from ..errors import SegmentationError
from .timeseries import TimeSeries

__all__ = [
    "SeparatorMethod",
    "UniformSeparators",
    "MedianSeparators",
    "DistinctMedianSeparators",
    "CustomSeparators",
    "get_method",
    "available_methods",
]


def _as_values(data) -> np.ndarray:
    """Accept a TimeSeries, array or sequence and return a float array."""
    if isinstance(data, TimeSeries):
        values = data.values
    else:
        values = np.asarray(data, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise SegmentationError("cannot learn separators from an empty series")
    return values


class SeparatorMethod(abc.ABC):
    """Strategy interface: turn historical values into ``k - 1`` separators."""

    #: canonical name used in experiment configs and result tables
    name: str = ""

    @abc.abstractmethod
    def separators(self, data, k: int) -> List[float]:
        """Return the ``k - 1`` non-decreasing separators for alphabet size ``k``."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 2:
            raise SegmentationError(f"alphabet size must be >= 2, got {k}")


class UniformSeparators(SeparatorMethod):
    """Equal-width subranges over ``[0, max]`` (paper method (a))."""

    name = "uniform"

    def separators(self, data, k: int) -> List[float]:
        self._check_k(k)
        values = _as_values(data)
        maximum = float(values.max())
        if maximum <= 0:
            # A flat all-zero bootstrap window: degenerate but legal; every
            # separator collapses to zero so all data maps to the last symbol
            # range boundary behaviour of Definition 3.
            return [0.0] * (k - 1)
        width = maximum / k
        return [width * i for i in range(1, k)]


class MedianSeparators(SeparatorMethod):
    """Equal-frequency subranges: ``k``-quantiles of all values (method (b))."""

    name = "median"

    def separators(self, data, k: int) -> List[float]:
        self._check_k(k)
        values = _as_values(data)
        quantiles = np.arange(1, k) / k
        seps = np.quantile(values, quantiles, method="lower")
        return [float(s) for s in seps]


class DistinctMedianSeparators(SeparatorMethod):
    """``k``-quantiles of the *distinct* values (method (c), *distinctmedian*)."""

    name = "distinctmedian"

    def separators(self, data, k: int) -> List[float]:
        self._check_k(k)
        values = np.unique(_as_values(data))
        quantiles = np.arange(1, k) / k
        seps = np.quantile(values, quantiles, method="lower")
        return [float(s) for s in seps]


class CustomSeparators(SeparatorMethod):
    """Expert-provided separators (paper Section 3.2, low/high example).

    The paper notes that background knowledge can drive segmentation, e.g. a
    two-symbol low/high split at a domain threshold.  This method ignores the
    data and returns the user-provided boundaries, validating only their
    count and ordering.
    """

    name = "custom"

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = [float(b) for b in boundaries]
        if any(b2 < b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise SegmentationError("custom separators must be non-decreasing")
        self._boundaries = bounds

    def separators(self, data, k: int) -> List[float]:
        self._check_k(k)
        if len(self._boundaries) != k - 1:
            raise SegmentationError(
                f"expected {k - 1} separators for alphabet size {k}, "
                f"got {len(self._boundaries)}"
            )
        return list(self._boundaries)


_REGISTRY: Dict[str, Type[SeparatorMethod]] = {
    UniformSeparators.name: UniformSeparators,
    MedianSeparators.name: MedianSeparators,
    DistinctMedianSeparators.name: DistinctMedianSeparators,
}

#: Aliases accepted by :func:`get_method`.
_ALIASES: Dict[str, str] = {
    "distinct_median": "distinctmedian",
    "distinct-median": "distinctmedian",
    "median_of_distinct_values": "distinctmedian",
    "equalwidth": "uniform",
    "equal-width": "uniform",
    "equalfrequency": "median",
    "quantile": "median",
}


def available_methods() -> List[str]:
    """Names of the built-in separator-learning strategies."""
    return sorted(_REGISTRY)


def get_method(name: str) -> SeparatorMethod:
    """Instantiate a separator method from its (case-insensitive) name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise SegmentationError(
            f"unknown separator method {name!r}; available: {available_methods()}"
        ) from None
