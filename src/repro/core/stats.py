"""Accumulative statistics over a growing prefix of a series (paper Figure 4).

Figure 4 plots, for house 1 of REDD, the mean, median and median-of-distinct-
values computed over the first ``t`` seconds of data as ``t`` grows over
three days, showing that the statistics converge after roughly one day.
:func:`accumulative_statistics` reproduces that computation; it is also the
basis of the bootstrap-length ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import SegmentationError
from .timeseries import TimeSeries

__all__ = [
    "AccumulativeStatistics",
    "accumulative_statistics",
    "convergence_time",
]


@dataclass(frozen=True)
class AccumulativeStatistics:
    """Statistics of growing prefixes, evaluated every ``step`` seconds."""

    times: List[float]
    mean: List[float]
    median: List[float]
    distinctmedian: List[float]

    def as_dict(self) -> Dict[str, List[float]]:
        """Column-oriented dictionary (for table rendering / plotting)."""
        return {
            "time": list(self.times),
            "mean": list(self.mean),
            "median": list(self.median),
            "distinctmedian": list(self.distinctmedian),
        }

    def __len__(self) -> int:
        return len(self.times)


def accumulative_statistics(
    series: TimeSeries, step_seconds: float = 3600.0
) -> AccumulativeStatistics:
    """Mean/median/distinct-median of every growing prefix of ``series``.

    Prefixes are evaluated at multiples of ``step_seconds`` after the first
    timestamp.  Statistics of an empty prefix are reported as 0.
    """
    if step_seconds <= 0:
        raise SegmentationError("step_seconds must be positive")
    if len(series) == 0:
        return AccumulativeStatistics([], [], [], [])

    timestamps = series.timestamps
    values = series.values
    origin = float(timestamps[0])
    horizon = float(timestamps[-1])
    times: List[float] = []
    means: List[float] = []
    medians: List[float] = []
    dmedians: List[float] = []

    t = origin + step_seconds
    while t <= horizon + step_seconds:
        # Number of samples with timestamp < t; prefixes are cumulative so
        # searchsorted on the already-sorted timestamps is enough.
        n = int(np.searchsorted(timestamps, t, side="left"))
        prefix = values[:n]
        elapsed = t - origin
        times.append(elapsed)
        if prefix.size == 0:
            means.append(0.0)
            medians.append(0.0)
            dmedians.append(0.0)
        else:
            means.append(float(prefix.mean()))
            medians.append(float(np.median(prefix)))
            dmedians.append(float(np.median(np.unique(prefix))))
        t += step_seconds
    return AccumulativeStatistics(times, means, medians, dmedians)


def convergence_time(
    stats: AccumulativeStatistics,
    statistic: str = "median",
    tolerance: float = 0.05,
) -> float:
    """Earliest prefix length (seconds) after which ``statistic`` stays within
    ``tolerance`` (relative) of its final value.

    Returns ``inf`` when the statistic never settles.  The paper observes the
    REDD statistics "start to converge after day one"; the Figure 4 benchmark
    reports this number for the synthetic data.
    """
    series = getattr(stats, statistic, None)
    if series is None:
        raise SegmentationError(
            f"unknown statistic {statistic!r}; use mean, median or distinctmedian"
        )
    if not series:
        return float("inf")
    final = series[-1]
    if final == 0:
        return float("inf")
    for i, value in enumerate(series):
        remaining = series[i:]
        if all(abs(v - final) / abs(final) <= tolerance for v in remaining):
            return stats.times[i]
    return float("inf")
